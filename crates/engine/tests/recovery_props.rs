//! Crash-safety property tests: kill the engine at *every* WAL byte
//! offset (and under random bit flips) and require that recovery lands
//! on a consistent prefix of the mutation history whose query results —
//! envelopes on — match a reference engine that never crashed.
//!
//! The reference is exact: the durable mutation path and replay share
//! one application function, and the scripted workload is deterministic
//! (seeded k-means), so the state after recovering `r` records must
//! equal the state after running the first `r` script steps in memory.
//!
//! Case count for the flip tests honours `PROPTEST_CASES` (the crash-
//! matrix CI job raises it); the truncation sweep is exhaustive always.

use mpq_core::DeriveOptions;
use mpq_engine::{Engine, EngineError, Table};
use mpq_types::{AttrDomain, AttrId, Attribute, Dataset, Schema};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "mpq-recprop-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn proptest_cases() -> u32 {
    // The vendored proptest stub does not read the environment itself.
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(48)
}

fn tiny_table() -> Table {
    let schema = Schema::new(vec![
        Attribute::new("x", AttrDomain::binned(vec![2.0, 4.0]).unwrap()),
        Attribute::new("y", AttrDomain::binned(vec![3.0]).unwrap()),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    for i in 0..6u16 {
        ds.push_encoded(&[i % 3, i % 2]).unwrap();
    }
    Table::from_dataset("p", &ds)
}

type Step = Box<dyn Fn(&mut Engine) -> Result<(), EngineError>>;

/// The scripted workload: every durable mutation kind the WAL records.
/// Kept tiny on purpose — the truncation sweep opens the engine once
/// per WAL byte.
fn script() -> Vec<Step> {
    vec![
        Box::new(|e| e.create_table(tiny_table()).map(|_| ())),
        Box::new(|e| e.insert_rows("p", vec![vec![2, 1], vec![0, 0]])),
        Box::new(|e| e.create_index("p", &[AttrId(0)])),
        Box::new(|e| {
            e.execute_sql("CREATE MINING MODEL km ON p WITH 2 CLUSTERS USING kmeans")
                .map(|_| ())
        }),
        Box::new(|e| e.insert_rows("p", vec![vec![1, 1]])),
        Box::new(|e| {
            let stored = e
                .catalog()
                .model_by_name("km")
                .and_then(|id| e.catalog().model(id).stored.clone())
                .expect("km is durable");
            e.retrain_durable_model("km", stored, DeriveOptions::default())
        }),
        Box::new(|e| e.drop_index("p", &[AttrId(0)])),
    ]
}

/// Observable state summary: structural counts plus actual query
/// results with envelope rewriting on. Two engines with equal
/// fingerprints answer the workload identically.
fn fingerprint(e: &mut Engine) -> Vec<String> {
    let mut out = vec![
        format!("tables={}", e.catalog().n_tables()),
        format!("models={}", e.catalog().n_models()),
    ];
    if let Some(t) = e.catalog().table_by_name("p") {
        out.push(format!("rows={}", e.catalog().table(t).table.n_rows()));
        out.push(format!("ix={}", e.catalog().table(t).index_on(AttrId(0)).is_some()));
    }
    for q in [
        "SELECT * FROM p WHERE PREDICT(km) = 'cluster_0'",
        "SELECT * FROM p WHERE PREDICT(km) = 'cluster_1'",
    ] {
        match e.query(q) {
            Ok(o) => out.push(format!("{q} -> {:?}", o.rows)),
            Err(err) => out.push(format!("{q} -> err {err}")),
        }
    }
    out
}

struct Baseline {
    /// Raw bytes of the single WAL segment the scripted run produced.
    wal_bytes: Vec<u8>,
    /// Byte offset just past record `i` — truncating at `ends[i]` keeps
    /// exactly `i + 1` records.
    ends: Vec<usize>,
    /// `expected[k]` = fingerprint after running the first `k` steps.
    expected: Vec<Vec<String>>,
}

/// Walks the segment's length-prefixed frames (16-byte header, then
/// `[len][crc][payload]`) without validating CRCs — the test only needs
/// the boundaries the writer laid down.
fn frame_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut pos = 16;
    while pos + 8 <= bytes.len() {
        let len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if pos + 8 + len > bytes.len() {
            break;
        }
        pos += 8 + len;
        ends.push(pos);
    }
    ends
}

fn baseline() -> &'static Baseline {
    static B: OnceLock<Baseline> = OnceLock::new();
    B.get_or_init(|| {
        // The never-crashed run, recorded durably.
        let dir = temp_dir("baseline");
        let mut e = Engine::open(&dir).expect("open baseline");
        for step in script() {
            step(&mut e).expect("baseline step");
        }
        e.simulate_crash(); // leave the log exactly as written, no marker
        let seg: Vec<PathBuf> = std::fs::read_dir(&dir)
            .expect("read baseline dir")
            .map(|f| f.expect("dir entry").path())
            .filter(|p| p.extension().is_some_and(|x| x == "wal"))
            .collect();
        assert_eq!(seg.len(), 1, "no checkpoint -> exactly one segment");
        let wal_bytes = std::fs::read(&seg[0]).expect("read segment");
        let ends = frame_ends(&wal_bytes);
        assert_eq!(ends.len(), script().len(), "one record per step");
        std::fs::remove_dir_all(&dir).ok();

        // Reference fingerprints from in-memory engines (same mutation
        // code path, no disk).
        let steps = script();
        let mut expected = Vec::with_capacity(steps.len() + 1);
        for k in 0..=steps.len() {
            let mut mem = Engine::new(mpq_engine::Catalog::new());
            for step in &steps[..k] {
                step(&mut mem).expect("reference step");
            }
            expected.push(fingerprint(&mut mem));
        }
        Baseline { wal_bytes, ends, expected }
    })
}

/// Installs `bytes` as the only WAL segment in a fresh directory and
/// opens an engine on it. The segment keeps its original file name so
/// recovery's name/header cross-check passes.
fn open_with_segment(tag: &str, bytes: &[u8]) -> (Engine, PathBuf) {
    let dir = temp_dir(tag);
    std::fs::create_dir_all(&dir).expect("create crash dir");
    std::fs::write(dir.join("wal-00000000000000000001.wal"), bytes).expect("write segment");
    let e = Engine::open(&dir).expect("recovery must never error on content");
    (e, dir)
}

/// The tentpole property, exhaustively: for every prefix length of the
/// WAL — every possible torn-write crash point — recovery must come up
/// consistent, report exactly what it kept and dropped, and stay usable.
#[test]
fn crash_at_every_wal_offset_recovers_consistent_prefix() {
    let b = baseline();
    for cut in 0..=b.wal_bytes.len() {
        let r = b.ends.iter().take_while(|&&e| e <= cut).count();
        let (mut e, dir) = open_with_segment("cut", &b.wal_bytes[..cut]);
        let report = e.recovery_report().expect("durable engine").clone();
        assert_eq!(
            report.wal_records_replayed, r as u64,
            "cut at byte {cut}: complete frames must replay"
        );
        let torn = cut < 16 || b.ends.get(r.wrapping_sub(1)).copied().unwrap_or(16) != cut;
        assert_eq!(
            report.corruption.is_some(),
            torn && cut != 16,
            "cut at byte {cut}: corruption iff mid-frame (report: {report})"
        );
        assert_eq!(
            fingerprint(&mut e),
            b.expected[r],
            "cut at byte {cut}: state must equal the {r}-step reference"
        );
        // The survivor accepts new mutations: the log tail was truncated
        // back to the verified prefix.
        if r >= 1 {
            e.insert_rows("p", vec![vec![0, 1]]).expect("post-recovery insert");
        } else {
            e.create_table(tiny_table()).expect("post-recovery create");
        }
        e.simulate_crash();
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases()))]

    /// Random single-bit corruption anywhere in the log: recovery must
    /// still land on a consistent prefix (whichever length it decides
    /// it can trust) and report the damage.
    #[test]
    fn bit_flip_anywhere_recovers_consistent_prefix(
        pos in 0usize..baseline().wal_bytes.len(),
        bit in 0u32..8,
    ) {
        let b = baseline();
        let mut bytes = b.wal_bytes.clone();
        bytes[pos] ^= 1u8 << bit;
        let (mut e, dir) = open_with_segment("flip", &bytes);
        let report = e.recovery_report().expect("durable engine").clone();
        let r = report.wal_records_replayed as usize;
        prop_assert!(r <= b.ends.len(), "cannot replay more than was written");
        prop_assert!(
            report.corruption.is_some() || r == b.ends.len(),
            "a flip that loses records must be reported (flipped bit {bit} of byte {pos})"
        );
        prop_assert_eq!(
            fingerprint(&mut e),
            b.expected[r].clone(),
            "flip at byte {} bit {}: state must equal the {}-step reference",
            pos, bit, r
        );
        e.simulate_crash();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncation + a flip in the surviving prefix at once (a torn tail
    /// over an older latent corruption): still a consistent prefix.
    #[test]
    fn flip_plus_truncation_recovers_consistent_prefix(
        frac in 0.0f64..1.0,
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let b = baseline();
        let cut = 16 + ((b.wal_bytes.len() - 16) as f64 * frac) as usize;
        let mut bytes = b.wal_bytes[..cut].to_vec();
        if !bytes.is_empty() {
            let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
            bytes[pos] ^= 1u8 << bit;
        }
        let (mut e, dir) = open_with_segment("both", &bytes);
        let report = e.recovery_report().expect("durable engine").clone();
        let r = report.wal_records_replayed as usize;
        prop_assert!(r <= b.ends.len());
        prop_assert_eq!(fingerprint(&mut e), b.expected[r].clone());
        e.simulate_crash();
        std::fs::remove_dir_all(&dir).ok();
    }
}
