//! # mpq-server
//!
//! A multi-client TCP server for the mining-predicates engine.
//!
//! The engine crate executes SQL with mining predicates in-process;
//! this crate puts it on a socket. Three pieces:
//!
//! * [`protocol`] — the framed wire protocol: `len | crc32 | payload`
//!   frames (the WAL's framing discipline, applied to a socket),
//!   typed [`protocol::Request`]/[`protocol::Response`] messages, and
//!   codecs that rebuild the engine's own result/error types on the
//!   far side so wire results compare `==` against in-process ones.
//! * [`admission`] — a permit-based admission controller bounding
//!   concurrent query execution and queue depth, with typed
//!   `Busy`/`QueueTimeout` refusals.
//! * [`server`] — the accept loop, one thread + one
//!   [`mpq_engine::SessionState`] per connection (session-scoped `SET
//!   PARALLELISM` / `SET GUARD`), and a graceful shutdown that drains
//!   in-flight statements and checkpoints the engine.
//! * [`replication`] — the primary's WAL-shipping thread and the
//!   minimal peer client it speaks through; the engine replays the
//!   shipped frames on the standby.
//! * [`supervisor`] — failure detection and promotion: health-checks
//!   the primary, promotes the standby on sustained failure (the epoch
//!   fence makes a false positive safe), and repoints writers through
//!   their shared address handle.
//!
//! See `DESIGN.md` §9 for the protocol specification and the
//! admission state machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod notify;
pub mod protocol;
pub mod replication;
pub mod server;
pub mod supervisor;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionError, AdmissionStats};
pub use notify::{NotifyQueue, SubRegistry, DEFAULT_NOTIFY_QUEUE_CAP};
pub use protocol::{
    decode_frame, encode_frame, FrameError, Notification, Request, Response, ServerError,
    DEFAULT_MAX_FRAME_LEN, FRAME_HEADER_LEN, PROTO_VERSION, PROTO_VERSION_V3,
    PROTO_VERSION_V4, PROTO_VERSION_V5,
};
pub use replication::{start_shipper, PeerError, PeerState, ReplPeer, ShipperConfig, ShipperHandle};
pub use server::{DrainReport, Server, ServerConfig};
pub use supervisor::{start_supervisor, write_peer_file, SupervisorConfig, SupervisorHandle};
