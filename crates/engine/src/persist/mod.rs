//! Crash-safe catalog durability: write-ahead log, checksummed
//! snapshots, and recovery.
//!
//! The paper assumes mining models live inside a real DBMS catalog and
//! survive process death; this module gives the engine that property.
//! Design in one paragraph: every catalog mutation (`CREATE TABLE`,
//! `INSERT`, `CREATE MINING MODEL`, retrain, index DDL) is serialized as
//! a [`LogOp`], framed with a length + CRC32 and fsync'd to a WAL
//! segment *before* it is applied in memory ([`wal`]); a checkpoint
//! serializes the whole catalog to a temp file, fsyncs, and renames it
//! into place atomically, then starts a fresh WAL segment
//! ([`snapshot`]); [`Engine::open`](crate::Engine::open) loads the
//! newest snapshot that passes its checksum and replays the WAL prefix
//! up to the first torn or corrupt record ([`recovery`]), reporting what
//! was dropped through [`RecoveryReport`] /
//! [`Engine::health`](crate::Engine::health).
//!
//! Envelopes are *not* serialized: they are re-derived from the
//! recovered models at open time, which keeps the on-disk format small
//! and guarantees the recovered engine optimizes exactly like a fresh
//! one. Model versions restart at 1 after recovery (cached plans do not
//! survive a process anyway). Models registered as bare trait objects
//! with no serialized form ([`crate::Catalog::add_model`]) are
//! transient: checkpoints skip them and recovery does not restore them.

pub(crate) mod recovery;
pub mod replicate;
pub(crate) mod snapshot;
pub(crate) mod wal;

use crate::ddl::ProjectedModel;
use crate::EngineError;
use mpq_core::{BoundMode, DeriveOptions, EnvelopeProvider, SplitHeuristic};
use mpq_models::Classifier as _;
use mpq_pmml::PmmlModel;
use mpq_types::wire::{WireReader, WireWriter};
use mpq_types::{AttrDomain, AttrId, Attribute, Member, Schema};
use std::sync::Arc;
use std::time::Duration;

/// The durable, serialized form of a registered mining model.
///
/// Model *content* rides as PMML (the `mpq-pmml` crate), so anything the
/// engine can import it can also persist. A [`ProjectedModel`] (the SQL
/// DDL wrapper that hides the label column) stores its inner model's
/// document plus the label position — the label's domain is recoverable
/// because DDL defines the class names to *be* the label column's
/// members.
#[derive(Debug, Clone, PartialEq)]
pub enum StoredModel {
    /// A model applied to full table rows, as one PMML document.
    Plain {
        /// The PMML document.
        xml: String,
    },
    /// A [`ProjectedModel`]: the inner model's PMML document plus where
    /// the ignored label column sits in the full schema.
    Projected {
        /// Name of the label column.
        label_name: String,
        /// Index of the label column in the full schema.
        label_pos: u32,
        /// PMML document of the inner (feature-schema) model.
        inner_xml: String,
    },
}

const STORED_PLAIN: u8 = 0;
const STORED_PROJECTED: u8 = 1;

impl StoredModel {
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        match self {
            StoredModel::Plain { xml } => {
                w.put_u8(STORED_PLAIN);
                w.put_str(xml);
            }
            StoredModel::Projected { label_name, label_pos, inner_xml } => {
                w.put_u8(STORED_PROJECTED);
                w.put_str(label_name);
                w.put_u32(*label_pos);
                w.put_str(inner_xml);
            }
        }
    }

    pub(crate) fn decode(r: &mut WireReader<'_>) -> Result<StoredModel, EngineError> {
        Ok(match r.get_u8()? {
            STORED_PLAIN => StoredModel::Plain { xml: r.get_str()? },
            STORED_PROJECTED => StoredModel::Projected {
                label_name: r.get_str()?,
                label_pos: r.get_u32()?,
                inner_xml: r.get_str()?,
            },
            other => {
                return Err(EngineError::Corrupt {
                    detail: format!("unknown stored-model tag {other}"),
                })
            }
        })
    }

    /// Rebuilds the live model from its serialized form. Everything is
    /// revalidated: the XML through the PMML importer, the projected
    /// label position against the inner schema, and the reconstructed
    /// full schema through `Schema::new`.
    pub fn instantiate(
        &self,
    ) -> Result<Arc<dyn EnvelopeProvider + Send + Sync>, EngineError> {
        match self {
            StoredModel::Plain { xml } => {
                let model = mpq_pmml::import(xml)
                    .map_err(|e| EngineError::Corrupt { detail: e.to_string() })?;
                Ok(pmml_to_provider(model))
            }
            StoredModel::Projected { label_name, label_pos, inner_xml } => {
                let inner = mpq_pmml::import(inner_xml)
                    .map_err(|e| EngineError::Corrupt { detail: e.to_string() })?;
                let pos = *label_pos as usize;
                if pos > inner.schema().len() {
                    return Err(EngineError::Corrupt {
                        detail: format!(
                            "label position {pos} outside schema of {} features",
                            inner.schema().len()
                        ),
                    });
                }
                // DDL trains classification models with class names taken
                // from the label column's member list, so the label's
                // categorical domain is exactly the class-name list.
                let class_names: Vec<String> = {
                    let n = classifier_n_classes(&inner);
                    (0..n).map(|k| classifier_class_name(&inner, k).to_string()).collect()
                };
                if class_names.is_empty() {
                    return Err(EngineError::Corrupt {
                        detail: "projected model with no classes".to_string(),
                    });
                }
                let mut attrs = inner.schema().attrs().to_vec();
                attrs.insert(
                    pos,
                    Attribute::new(label_name.clone(), AttrDomain::categorical(class_names)),
                );
                let full_schema = Schema::new(attrs)
                    .map_err(|e| EngineError::Corrupt { detail: e.to_string() })?;
                let inner_arc = pmml_to_provider(inner);
                Ok(Arc::new(ProjectedModel::new(full_schema, AttrId(pos as u16), inner_arc)))
            }
        }
    }
}

fn classifier_n_classes(m: &PmmlModel) -> usize {
    match m {
        PmmlModel::Tree(x) => x.n_classes(),
        PmmlModel::NaiveBayes(x) => x.n_classes(),
        PmmlModel::KMeans(x) => x.n_classes(),
        PmmlModel::Gmm(x) => x.n_classes(),
        PmmlModel::Rules(x) => x.n_classes(),
    }
}

fn classifier_class_name(m: &PmmlModel, k: usize) -> &str {
    let c = mpq_types::ClassId(k as u16);
    match m {
        PmmlModel::Tree(x) => x.class_name(c),
        PmmlModel::NaiveBayes(x) => x.class_name(c),
        PmmlModel::KMeans(x) => x.class_name(c),
        PmmlModel::Gmm(x) => x.class_name(c),
        PmmlModel::Rules(x) => x.class_name(c),
    }
}

/// Unwraps an imported PMML document into the trait object the catalog
/// registers.
pub(crate) fn pmml_to_provider(m: PmmlModel) -> Arc<dyn EnvelopeProvider + Send + Sync> {
    match m {
        PmmlModel::Tree(x) => Arc::new(x),
        PmmlModel::NaiveBayes(x) => Arc::new(x),
        PmmlModel::KMeans(x) => Arc::new(x),
        PmmlModel::Gmm(x) => Arc::new(x),
        PmmlModel::Rules(x) => Arc::new(x),
    }
}

// ---------------------------------------------------------------------
// DeriveOptions codec
// ---------------------------------------------------------------------

pub(crate) fn put_derive_opts(w: &mut WireWriter, o: &DeriveOptions) {
    w.put_u8(match o.bound_mode {
        BoundMode::Basic => 0,
        BoundMode::PairwiseRatio => 1,
    });
    w.put_u8(match o.split_heuristic {
        SplitHeuristic::Entropy => 0,
        SplitHeuristic::RivalGap => 1,
    });
    w.put_u64(o.max_expansions as u64);
    w.put_u64(o.max_disjuncts as u64);
    w.put_bool(o.trace);
    w.put_bool(o.cluster_raw_sound);
    match o.time_budget {
        Some(d) => {
            w.put_bool(true);
            w.put_u64(d.as_nanos().min(u64::MAX as u128) as u64);
        }
        None => w.put_bool(false),
    }
}

pub(crate) fn get_derive_opts(r: &mut WireReader<'_>) -> Result<DeriveOptions, EngineError> {
    let bound_mode = match r.get_u8()? {
        0 => BoundMode::Basic,
        1 => BoundMode::PairwiseRatio,
        other => {
            return Err(EngineError::Corrupt { detail: format!("bad bound mode {other}") })
        }
    };
    let split_heuristic = match r.get_u8()? {
        0 => SplitHeuristic::Entropy,
        1 => SplitHeuristic::RivalGap,
        other => {
            return Err(EngineError::Corrupt {
                detail: format!("bad split heuristic {other}"),
            })
        }
    };
    let max_expansions = r.get_u64()? as usize;
    let max_disjuncts = r.get_u64()? as usize;
    let trace = r.get_bool()?;
    let cluster_raw_sound = r.get_bool()?;
    let time_budget =
        if r.get_bool()? { Some(Duration::from_nanos(r.get_u64()?)) } else { None };
    Ok(DeriveOptions {
        bound_mode,
        split_heuristic,
        max_expansions,
        max_disjuncts,
        trace,
        cluster_raw_sound,
        time_budget,
    })
}

// ---------------------------------------------------------------------
// Statement identity
// ---------------------------------------------------------------------

/// A client-generated identity for one mutating statement.
///
/// The `nonce` is drawn once per client session (random enough to not
/// collide across sessions); `seq` increments per statement within the
/// session. A retried statement carries the *same* id, which is how the
/// server and the WAL tell a retry apart from a new statement: the id
/// rides inside [`LogOp::Stamped`], so deduplication holds both against
/// live state and across crash recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatementId {
    /// Per-session random identity.
    pub nonce: u64,
    /// Position of the statement within the session (monotone).
    pub seq: u64,
}

impl std::fmt::Display for StatementId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}/{}", self.nonce, self.seq)
    }
}

// ---------------------------------------------------------------------
// Log operations
// ---------------------------------------------------------------------

/// One durable catalog mutation, as recorded in the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum LogOp {
    /// `CREATE TABLE` with its initial contents (column-major).
    CreateTable {
        /// Table name.
        name: String,
        /// Table schema.
        schema: Schema,
        /// Page geometry (rows per page).
        rows_per_page: u64,
        /// Cell data, one vector per column.
        columns: Vec<Vec<Member>>,
    },
    /// `INSERT` of encoded rows into an existing table.
    Insert {
        /// Target table name.
        table: String,
        /// Encoded rows.
        rows: Vec<Vec<Member>>,
    },
    /// Secondary index creation.
    CreateIndex {
        /// Target table name.
        table: String,
        /// Indexed columns (attribute ids).
        columns: Vec<u16>,
    },
    /// Secondary index drop.
    DropIndex {
        /// Target table name.
        table: String,
        /// Indexed columns (attribute ids).
        columns: Vec<u16>,
    },
    /// `CREATE MINING MODEL` — the trained model rides serialized, so
    /// replay re-registers the *same* content without retraining.
    CreateModel {
        /// Model name.
        name: String,
        /// Serialized trained model.
        stored: StoredModel,
        /// Envelope-derivation options to register it with.
        opts: DeriveOptions,
    },
    /// Retrain of an existing model with new content.
    Retrain {
        /// Model name.
        name: String,
        /// Serialized replacement model.
        stored: StoredModel,
        /// Envelope-derivation options.
        opts: DeriveOptions,
    },
    /// Graceful-shutdown marker: a no-op whose presence at the log tail
    /// tells the next open that the process exited cleanly.
    CleanShutdown,
    /// A mutation carrying its client [`StatementId`], so replay can
    /// deduplicate a retry that raced a crash. Applying a `Stamped` op
    /// whose id is already recorded is a no-op.
    Stamped {
        /// Client-assigned statement identity.
        id: StatementId,
        /// The mutation itself (never itself `Stamped`).
        inner: Box<LogOp>,
    },
    /// Raises the catalog's replication epoch. Written durably on
    /// standby promotion; a replication stream stamped with an older
    /// epoch is rejected, which fences a zombie primary.
    EpochBump {
        /// The new (strictly higher) epoch.
        epoch: u64,
    },
    /// `SUBSCRIBE`: registers a standing subscription. The verbatim
    /// query text rides in the log and is re-parsed against the
    /// replayed catalog, so recovery reproduces exactly the predicate
    /// the subscriber registered (tables and models it references were
    /// logged before it).
    Subscribe {
        /// The stable subscription id assigned at registration.
        id: u64,
        /// The inner query's verbatim SQL text.
        sql: String,
    },
    /// `UNSUBSCRIBE`: removes a standing subscription.
    Unsubscribe {
        /// The subscription id being removed.
        id: u64,
    },
}

const OP_CREATE_TABLE: u8 = 1;
const OP_INSERT: u8 = 2;
const OP_CREATE_INDEX: u8 = 3;
const OP_DROP_INDEX: u8 = 4;
const OP_CREATE_MODEL: u8 = 5;
const OP_RETRAIN: u8 = 6;
const OP_CLEAN_SHUTDOWN: u8 = 7;
const OP_STAMPED: u8 = 8;
const OP_EPOCH_BUMP: u8 = 9;
const OP_SUBSCRIBE: u8 = 10;
const OP_UNSUBSCRIBE: u8 = 11;

fn put_rows(w: &mut WireWriter, rows: &[Vec<Member>]) {
    w.put_u32(rows.len() as u32);
    for row in rows {
        w.put_u16s(row);
    }
}

fn get_rows(r: &mut WireReader<'_>) -> Result<Vec<Vec<Member>>, EngineError> {
    let n = r.get_u32()? as usize;
    if n > r.remaining() {
        return Err(EngineError::Corrupt { detail: "row count exceeds record".into() });
    }
    (0..n).map(|_| Ok(r.get_u16s()?)).collect()
}

impl LogOp {
    /// Serializes the op body (everything after the LSN).
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        match self {
            LogOp::CreateTable { name, schema, rows_per_page, columns } => {
                w.put_u8(OP_CREATE_TABLE);
                w.put_str(name);
                mpq_types::wire::put_schema(w, schema);
                w.put_u64(*rows_per_page);
                w.put_u32(columns.len() as u32);
                for col in columns {
                    w.put_u16s(col);
                }
            }
            LogOp::Insert { table, rows } => {
                w.put_u8(OP_INSERT);
                w.put_str(table);
                put_rows(w, rows);
            }
            LogOp::CreateIndex { table, columns } => {
                w.put_u8(OP_CREATE_INDEX);
                w.put_str(table);
                w.put_u16s(columns);
            }
            LogOp::DropIndex { table, columns } => {
                w.put_u8(OP_DROP_INDEX);
                w.put_str(table);
                w.put_u16s(columns);
            }
            LogOp::CreateModel { name, stored, opts } => {
                w.put_u8(OP_CREATE_MODEL);
                w.put_str(name);
                stored.encode(w);
                put_derive_opts(w, opts);
            }
            LogOp::Retrain { name, stored, opts } => {
                w.put_u8(OP_RETRAIN);
                w.put_str(name);
                stored.encode(w);
                put_derive_opts(w, opts);
            }
            LogOp::CleanShutdown => w.put_u8(OP_CLEAN_SHUTDOWN),
            LogOp::Stamped { id, inner } => {
                w.put_u8(OP_STAMPED);
                w.put_u64(id.nonce);
                w.put_u64(id.seq);
                inner.encode(w);
            }
            LogOp::EpochBump { epoch } => {
                w.put_u8(OP_EPOCH_BUMP);
                w.put_u64(*epoch);
            }
            LogOp::Subscribe { id, sql } => {
                w.put_u8(OP_SUBSCRIBE);
                w.put_u64(*id);
                w.put_str(sql);
            }
            LogOp::Unsubscribe { id } => {
                w.put_u8(OP_UNSUBSCRIBE);
                w.put_u64(*id);
            }
        }
    }

    /// Decodes one op body, validating tags and bounds.
    pub(crate) fn decode(r: &mut WireReader<'_>) -> Result<LogOp, EngineError> {
        Ok(match r.get_u8()? {
            OP_CREATE_TABLE => {
                let name = r.get_str()?;
                let schema = mpq_types::wire::get_schema(r)?;
                let rows_per_page = r.get_u64()?;
                let n_cols = r.get_u32()? as usize;
                if n_cols > r.remaining() {
                    return Err(EngineError::Corrupt {
                        detail: "column count exceeds record".into(),
                    });
                }
                let columns: Vec<Vec<Member>> =
                    (0..n_cols).map(|_| Ok(r.get_u16s()?)).collect::<Result<_, EngineError>>()?;
                LogOp::CreateTable { name, schema, rows_per_page, columns }
            }
            OP_INSERT => LogOp::Insert { table: r.get_str()?, rows: get_rows(r)? },
            OP_CREATE_INDEX => {
                LogOp::CreateIndex { table: r.get_str()?, columns: r.get_u16s()? }
            }
            OP_DROP_INDEX => LogOp::DropIndex { table: r.get_str()?, columns: r.get_u16s()? },
            OP_CREATE_MODEL => LogOp::CreateModel {
                name: r.get_str()?,
                stored: StoredModel::decode(r)?,
                opts: get_derive_opts(r)?,
            },
            OP_RETRAIN => LogOp::Retrain {
                name: r.get_str()?,
                stored: StoredModel::decode(r)?,
                opts: get_derive_opts(r)?,
            },
            OP_CLEAN_SHUTDOWN => LogOp::CleanShutdown,
            OP_STAMPED => {
                let id = StatementId { nonce: r.get_u64()?, seq: r.get_u64()? };
                let inner = LogOp::decode(r)?;
                if matches!(inner, LogOp::Stamped { .. }) {
                    return Err(EngineError::Corrupt {
                        detail: "nested stamped log op".into(),
                    });
                }
                LogOp::Stamped { id, inner: Box::new(inner) }
            }
            OP_EPOCH_BUMP => LogOp::EpochBump { epoch: r.get_u64()? },
            OP_SUBSCRIBE => LogOp::Subscribe { id: r.get_u64()?, sql: r.get_str()? },
            OP_UNSUBSCRIBE => LogOp::Unsubscribe { id: r.get_u64()? },
            other => {
                return Err(EngineError::Corrupt { detail: format!("unknown log op {other}") })
            }
        })
    }
}

// ---------------------------------------------------------------------
// Recovery report
// ---------------------------------------------------------------------

/// What [`crate::Engine::open`] found and recovered — surfaced through
/// [`crate::Engine::health`] and appended to `EXPLAIN` output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// LSN of the snapshot the state was loaded from (0 = none found).
    pub snapshot_lsn: u64,
    /// Snapshots that failed their checksum and were skipped in favour
    /// of an older generation.
    pub snapshots_skipped: usize,
    /// WAL records replayed on top of the snapshot (excluding shutdown
    /// markers).
    pub wal_records_replayed: u64,
    /// Well-formed records discarded because they sat *after* the first
    /// corrupt record (prefix semantics: nothing past a tear is trusted).
    pub records_dropped: u64,
    /// Bytes of WAL discarded at and after the corruption point.
    pub bytes_dropped: u64,
    /// Description of the first corruption encountered, if any.
    pub corruption: Option<String>,
    /// True when the log ended with a clean-shutdown marker (or the
    /// directory was freshly created).
    pub clean_shutdown: bool,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovery: snapshot lsn={}, wal records replayed={}, dropped={} ({} bytes){}{}",
            self.snapshot_lsn,
            self.wal_records_replayed,
            self.records_dropped,
            self.bytes_dropped,
            if self.clean_shutdown { ", clean shutdown" } else { "" },
            match &self.corruption {
                Some(c) => format!(", corruption: {c}"),
                None => String::new(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> Schema {
        Schema::new(vec![
            Attribute::new("x", AttrDomain::binned(vec![1.0, 2.0]).unwrap()),
            Attribute::new("f", AttrDomain::categorical(["a", "b"])),
        ])
        .unwrap()
    }

    #[test]
    fn ops_roundtrip() {
        let ops = vec![
            LogOp::CreateTable {
                name: "t".into(),
                schema: demo_schema(),
                rows_per_page: 128,
                columns: vec![vec![0, 1, 2], vec![1, 0, 1]],
            },
            LogOp::Insert { table: "t".into(), rows: vec![vec![2, 1], vec![0, 0]] },
            LogOp::CreateIndex { table: "t".into(), columns: vec![0, 1] },
            LogOp::DropIndex { table: "t".into(), columns: vec![1] },
            LogOp::CreateModel {
                name: "m".into(),
                stored: StoredModel::Plain { xml: "<PMML/>".into() },
                opts: DeriveOptions::default(),
            },
            LogOp::Retrain {
                name: "m".into(),
                stored: StoredModel::Projected {
                    label_name: "y".into(),
                    label_pos: 1,
                    inner_xml: "<PMML/>".into(),
                },
                opts: DeriveOptions {
                    time_budget: Some(Duration::from_millis(250)),
                    trace: true,
                    ..DeriveOptions::default()
                },
            },
            LogOp::CleanShutdown,
            LogOp::Stamped {
                id: StatementId { nonce: 0xdead_beef_0123, seq: 42 },
                inner: Box::new(LogOp::Insert {
                    table: "t".into(),
                    rows: vec![vec![1, 1]],
                }),
            },
            LogOp::EpochBump { epoch: 3 },
            LogOp::Subscribe {
                id: 12,
                sql: "SELECT * FROM t WHERE PREDICT(m) = 'a'".into(),
            },
            LogOp::Unsubscribe { id: 12 },
        ];
        for op in &ops {
            let mut w = WireWriter::new();
            op.encode(&mut w);
            let bytes = w.into_bytes();
            let back = LogOp::decode(&mut WireReader::new(&bytes)).unwrap();
            assert_eq!(&back, op);
            // Every strict prefix must fail cleanly, never panic.
            for cut in 0..bytes.len() {
                assert!(LogOp::decode(&mut WireReader::new(&bytes[..cut])).is_err());
            }
        }
    }

    #[test]
    fn derive_opts_roundtrip_all_variants() {
        for bm in [BoundMode::Basic, BoundMode::PairwiseRatio] {
            for sh in [SplitHeuristic::Entropy, SplitHeuristic::RivalGap] {
                for tb in [None, Some(Duration::from_secs(3))] {
                    let o = DeriveOptions {
                        bound_mode: bm,
                        split_heuristic: sh,
                        time_budget: tb,
                        max_expansions: 7,
                        max_disjuncts: 9,
                        trace: true,
                        cluster_raw_sound: true,
                    };
                    let mut w = WireWriter::new();
                    put_derive_opts(&mut w, &o);
                    let bytes = w.into_bytes();
                    let back = get_derive_opts(&mut WireReader::new(&bytes)).unwrap();
                    assert_eq!(back, o);
                }
            }
        }
    }

    #[test]
    fn bad_tags_are_corrupt_errors() {
        assert!(matches!(
            LogOp::decode(&mut WireReader::new(&[99])),
            Err(EngineError::Corrupt { .. })
        ));
        assert!(matches!(
            StoredModel::decode(&mut WireReader::new(&[7])),
            Err(EngineError::Corrupt { .. })
        ));
    }

    #[test]
    fn nested_stamped_is_corrupt() {
        let op = LogOp::Stamped {
            id: StatementId { nonce: 1, seq: 2 },
            inner: Box::new(LogOp::CleanShutdown),
        };
        let mut w = WireWriter::new();
        // Hand-build Stamped(Stamped(CleanShutdown)) — the encoder
        // cannot produce it, the decoder must still reject it.
        w.put_u8(8);
        w.put_u64(9);
        w.put_u64(9);
        op.encode(&mut w);
        let bytes = w.into_bytes();
        assert!(matches!(
            LogOp::decode(&mut WireReader::new(&bytes)),
            Err(EngineError::Corrupt { .. })
        ));
    }
}
