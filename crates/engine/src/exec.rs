//! Plan execution with honest cost accounting.
//!
//! Two executors share one cost model and one semantics:
//!
//! * the **serial** executor ([`execute_guarded`]) — runs either the
//!   vectorized engine (default) or, with
//!   [`ExecOptions::vectorized`]` = false`, the row-at-a-time reference
//!   interpreter every other path is differentially tested against;
//! * the **partition-parallel** executor ([`execute_opts`] with
//!   [`ExecOptions::parallelism`] > 1) — splits the scan into
//!   page-aligned morsels dispatched over a [`std::thread::scope`]
//!   worker pool, evaluates the residual (including black-box mining
//!   predicates) per morsel, and merges per-morsel metrics through
//!   shared atomics so budget breaches are detected cooperatively
//!   across workers.
//!
//! Both modes compile the residual once into a
//! [`CompiledPredicate`](crate::CompiledPredicate), prove pages empty
//! against the table's zone maps before reading them
//! ([`ExecMetrics::pages_skipped`] — skipped pages are *not* charged to
//! page budgets), and route model predictions through a bounded
//! [`MemoScorer`] keyed by the dictionary-encoded input tuple, so
//! `model_invocations` counts actual model applications (memo misses)
//! identically everywhere. On success all executors report
//! byte-identical row sets and identical `rows_examined` / page /
//! `model_invocations` totals (and therefore identical
//! [`GuardHeadroom`]); wall-clock fields are the only legitimate
//! divergence. `tests/parallel_oracle.rs` and
//! `tests/vectorized_oracle.rs` hold the differential property tests
//! backing that claim.
//!
//! Guard semantics under batching: the vectorized scan charges a page's
//! rows at once but reports a rows-budget breach with
//! `spent = limit + 1`, exactly where the row-at-a-time reference trips.
//! The only documented divergence is *classification* when two distinct
//! budgets would both trip inside one page (the reference trips whichever
//! its per-row check order hits first); single-budget breaches classify
//! identically at every degree of parallelism.

use crate::catalog::Catalog;
use crate::error::{panic_message, EngineError, GuardResource};
use crate::expr::Expr;
use crate::fault::FaultInjector;
use crate::guard::{GuardHeadroom, GuardState, QueryGuard};
use crate::optimizer::{AccessPath, Plan};
use crate::table::{RowId, Table};
use crate::vectorized::{
    BatchCtx, CalibClock, CompiledPredicate, FeedbackObservation, MemoScorer,
    CALIBRATION_ROWS, DEFAULT_MEMO_CAPACITY,
};
use mpq_types::Member;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Metrics observed while executing a plan — the quantities the paper's
/// experiments compare (pages touched drive the running-time reductions;
/// model invocations measure the black-box "extract and mine" overhead).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecMetrics {
    /// Heap pages read.
    pub heap_pages_read: u64,
    /// Index pages read (postings traffic).
    pub index_pages_read: u64,
    /// Heap pages proven empty by their zone maps and skipped without
    /// being read. Never counted against page budgets.
    pub pages_skipped: u64,
    /// Rows fetched and tested against the residual predicate.
    pub rows_examined: u64,
    /// Black-box model applications performed (scorer memo misses).
    pub model_invocations: u64,
    /// Model predictions answered from the scorer memo without running
    /// the model.
    pub memo_hits: u64,
    /// Mining-predicate rows decided `true` by a proxy cascade's unique
    /// argmax, without invoking the model or the memo.
    pub cascade_accepts: u64,
    /// Mining-predicate rows decided `false` by a proxy cascade's unique
    /// argmax, without invoking the model or the memo.
    pub cascade_rejects: u64,
    /// Rows that fell in a cascade's uncertainty band (tied or
    /// non-finite proxy scores) and were handed to the real scorer path.
    pub band_rows: u64,
    /// Wall-clock nanoseconds spent inside real model scoring calls
    /// (memo misses only). Excluded from determinism oracles.
    pub scorer_ns: u64,
    /// Rows in the result.
    pub output_rows: u64,
    /// Wall-clock execution time.
    pub elapsed: std::time::Duration,
    /// Budget headroom left when execution finished (all `None` when
    /// the query ran with an unlimited [`QueryGuard`]).
    pub guard: GuardHeadroom,
    /// True when an index fault forced the executor to abandon the
    /// chosen index path and fall back to a full scan with the complete
    /// residual predicate (same row set, more pages).
    pub index_fallback: bool,
    /// (Subscription, row) matches produced while this statement's
    /// inserted rows were tested against standing subscriptions. Always
    /// zero for SELECTs — queries do not match subscriptions.
    pub subs_matched: u64,
    /// (Subscription, row) candidacies the inverted subscription index
    /// pruned without evaluating the rewritten predicate. Always zero
    /// for SELECTs.
    pub subs_index_pruned: u64,
    /// And/Or child positions the adaptive mid-scan re-plan moved away
    /// from their compile-time order (0 when adaptive evaluation is off,
    /// when calibration saw no reason to reorder, or on the reference
    /// interpreter). Deterministic at every parallelism level.
    pub clauses_reordered: u64,
    /// Rows answered from a factored shared-subexpression result instead
    /// of re-evaluating the duplicated subtree (one count per row per
    /// shared occurrence). Deterministic at every parallelism level.
    pub factor_hits: u64,
    /// Entries in the table's selectivity feedback store after this
    /// statement's observations were folded in. Filled by the engine;
    /// bare executor calls leave it 0.
    pub feedback_entries: u64,
}

impl ExecMetrics {
    /// Total pages of any kind.
    pub fn total_pages(&self) -> u64 {
        self.heap_pages_read + self.index_pages_read
    }
}

/// Result of executing a plan: matching row ids plus metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Row ids satisfying the predicate, ascending.
    pub rows: Vec<RowId>,
    /// Observed metrics.
    pub metrics: ExecMetrics,
    /// Per-clause selectivities observed during calibration, keyed by
    /// structural clause fingerprint — the raw material for the
    /// optimizer's feedback store. Empty when adaptive evaluation was
    /// off or nothing was observed.
    pub feedback: Vec<FeedbackObservation>,
}

/// Tuning knobs for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads for partition-parallel execution. `1` (the
    /// default) runs the serial executor; higher values split the scan
    /// into page-aligned morsels over a scoped worker pool. Clamped to
    /// `1..=256`.
    pub parallelism: usize,
    /// Simulated I/O stall charged per page read. The engine's cost
    /// model is I/O-bound like the paper's environment, but the heaps
    /// here are CPU-resident — benchmarks set a per-page stall (e.g.
    /// the ~50µs of an NVMe random 8K read) so scan times track the
    /// page counts the cost model predicts and parallel scans overlap
    /// the stalls. `None` (the default, and what the engine uses for
    /// queries) charges nothing.
    pub io_stall: Option<Duration>,
    /// `true` (the default) evaluates residuals through the compiled
    /// column-at-a-time program; `false` selects the row-at-a-time
    /// reference interpreter. Both modes use zone-map pruning and the
    /// scorer memo, so on success their metrics are identical — the
    /// reference exists as the differential-testing baseline.
    pub vectorized: bool,
    /// Scorer memo capacity in cached `(model, tuple)` entries;
    /// `0` disables memoization (every prediction hits the model).
    pub memo_capacity: usize,
    /// `true` (the default) arms adaptive predicate evaluation: the
    /// compiled predicate observes per-node selectivity and work over
    /// the first `CALIBRATION_ROWS` scan positions, re-plans the And/Or
    /// evaluation order mid-scan (scalar-bearing children never move, so
    /// exactly the same rows reach every model scorer in the same
    /// order), factors shared scalar-free subexpressions across
    /// disjuncts, and reports per-clause observed selectivities for the
    /// optimizer's feedback store. `false` restores the fixed
    /// compile-time order exactly. Only meaningful with `vectorized`;
    /// the reference interpreter is always fixed-order.
    pub adaptive: bool,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            parallelism: 1,
            io_stall: None,
            vectorized: true,
            memo_capacity: DEFAULT_MEMO_CAPACITY,
            adaptive: true,
        }
    }
}

impl ExecOptions {
    /// Options running `n` workers (clamped to `1..=256`) with no
    /// simulated I/O.
    pub fn with_parallelism(n: usize) -> ExecOptions {
        ExecOptions { parallelism: n.clamp(1, 256), ..ExecOptions::default() }
    }
}

/// Executes `plan` against the catalog with no resource limits.
///
/// Equivalent to [`execute_guarded`] with [`QueryGuard::unlimited`]; an
/// unlimited guard can never trip, so this cannot fail.
pub fn execute(plan: &Plan, catalog: &Catalog) -> ExecResult {
    execute_guarded(plan, catalog, QueryGuard::unlimited())
        .expect("unlimited guard cannot trip")
}

/// Executes `plan` against the catalog under `guard`, serially.
///
/// The guard is checked cooperatively: per page scanned and per scalar
/// (mining) row evaluated. A breach aborts with
/// [`EngineError::BudgetExceeded`]; no partial row set is returned.
///
/// If the catalog's [`crate::FaultInjector`] has index-probe failure
/// armed, index plans degrade to a full scan evaluating the complete
/// residual predicate — the row set is identical (the residual is the
/// whole predicate; index seeks only pre-filter), only the page counts
/// grow. The fallback is flagged in [`ExecMetrics::index_fallback`].
pub fn execute_guarded(
    plan: &Plan,
    catalog: &Catalog,
    guard: QueryGuard,
) -> Result<ExecResult, EngineError> {
    execute_opts(plan, catalog, guard, &ExecOptions::default())
}

/// Executes `plan` under `guard` with explicit [`ExecOptions`] —
/// the entry point that selects between the serial and the
/// partition-parallel executor.
///
/// With `opts.parallelism > 1` and a parallelizable access path, the
/// scan is split into page-aligned morsels dispatched over scoped
/// worker threads. Semantics are identical to the serial executor: the
/// same row set (in the same ascending order), the same page / row /
/// model-invocation totals on success, and a typed
/// [`EngineError::BudgetExceeded`] carrying the same tripped resource
/// on a breach. A panic inside a worker (model code or an injected
/// scorer fault) cancels the remaining morsels and surfaces as
/// [`EngineError::Internal`] — it never aborts the process or poisons
/// engine state.
pub fn execute_opts(
    plan: &Plan,
    catalog: &Catalog,
    guard: QueryGuard,
    opts: &ExecOptions,
) -> Result<ExecResult, EngineError> {
    if opts.parallelism <= 1 || !plan.access.is_parallelizable() {
        execute_serial(plan, catalog, guard, opts)
    } else {
        execute_parallel(plan, catalog, guard, opts)
    }
}

/// Resolves the effective access path: injected index failures degrade
/// index plans to a full scan with the complete residual — sound
/// because `plan.residual` is the whole predicate. Returns the path and
/// whether the fallback fired.
fn effective_access<'p>(plan: &'p Plan, catalog: &Catalog) -> (&'p AccessPath, bool) {
    let fallback = catalog.faults().index_probe_failure_armed()
        && matches!(plan.access, AccessPath::IndexSeek(_) | AccessPath::IndexUnion(_));
    if fallback {
        (&AccessPath::FullScan, true)
    } else {
        (&plan.access, false)
    }
}

/// Sleeps `pages × stall` when a simulated I/O stall is configured.
fn stall_pages(stall: Option<Duration>, pages: u64) {
    if let Some(d) = stall {
        if pages > 0 {
            std::thread::sleep(d * pages.min(u32::MAX as u64) as u32);
        }
    }
}

/// Copies row `row`'s cells into `buf` (the reference interpreter's
/// tuple materialization).
fn fill_row(table: &Table, row: RowId, buf: &mut [Member]) {
    for (d, cell) in buf.iter_mut().enumerate() {
        *cell = table.cell(row, d);
    }
}

/// Copies the memo's counters into the metrics the guard checks.
fn sync_model_metrics(memo: &MemoScorer<'_>, m: &mut ExecMetrics) {
    m.model_invocations = memo.invocations();
    m.memo_hits = memo.hits();
    m.cascade_accepts = memo.cascade_accepts();
    m.cascade_rejects = memo.cascade_rejects();
    m.band_rows = memo.band_rows();
    m.scorer_ns = memo.scorer_ns();
}

/// The scorer memo for one execution of `plan`: cascade tables are
/// built (and verified) from the plan's cascade annotations.
fn memo_for_plan<'a>(plan: &Plan, catalog: &'a Catalog, opts: &ExecOptions) -> MemoScorer<'a> {
    let models: Vec<crate::expr::ModelId> = plan.cascades.iter().map(|(m, _)| *m).collect();
    MemoScorer::with_cascades(catalog, opts.memo_capacity, crate::compile::build_cascades(catalog, &models))
}

/// Charges `n` rows at once, tripping the rows budget at exactly the
/// point the row-at-a-time reference would: the first row past the
/// limit, reported as `spent = limit + 1`.
fn charge_rows_batched(
    gs: &GuardState,
    m: &mut ExecMetrics,
    n: u64,
) -> Result<(), EngineError> {
    if let Some(limit) = gs.guard().max_rows_examined {
        if m.rows_examined + n > limit {
            return Err(EngineError::BudgetExceeded {
                resource: GuardResource::RowsExamined,
                spent: limit + 1,
                limit,
            });
        }
    }
    m.rows_examined += n;
    Ok(())
}

fn execute_serial(
    plan: &Plan,
    catalog: &Catalog,
    guard: QueryGuard,
    opts: &ExecOptions,
) -> Result<ExecResult, EngineError> {
    let start = Instant::now();
    let gs = GuardState::new(guard);
    let inv_limit = guard.max_model_invocations;
    let entry = catalog.table(plan.table);
    let table = &entry.table;
    let io_stall = opts.io_stall;
    let faults = catalog.faults();
    let memo = memo_for_plan(plan, catalog, opts);
    let schema = table.schema();
    let adaptive = opts.adaptive && opts.vectorized;
    let compiled = CompiledPredicate::compile(&plan.residual, schema, adaptive);
    let compiled_skip =
        plan.skip_or.as_ref().map(|e| CompiledPredicate::compile(e, schema, adaptive));
    let residual = &plan.residual;
    let mut m = ExecMetrics::default();
    let mut out: Vec<RowId> = Vec::new();
    let mut sel: Vec<RowId> = Vec::new();

    let (access, index_fallback) = effective_access(plan, catalog);
    m.index_fallback = index_fallback;

    // After each row a `Scalar` (mining) leaf evaluates, check the
    // invocation budget and the deadline — the same cadence at which the
    // reference interpreter's per-row check can first observe them trip.
    let mut after_scalar = || -> Result<(), EngineError> {
        if let Some(limit) = inv_limit {
            let spent = memo.invocations();
            if spent > limit {
                return Err(EngineError::BudgetExceeded {
                    resource: GuardResource::ModelInvocations,
                    spent,
                    limit,
                });
            }
        }
        gs.check_deadline()
    };
    let factor_slots = compiled
        .factor_slots()
        .max(compiled_skip.as_ref().map_or(0, |c| c.factor_slots()));
    let mut ctx = BatchCtx {
        table,
        oracle: &memo,
        row_buf: vec![0u16; schema.len()],
        after_scalar_row: &mut after_scalar,
        factor_pass: vec![None; factor_slots],
        factor_hits: 0,
        cancel: None,
    };

    match access {
        AccessPath::ConstantScan => {}
        AccessPath::FullScan => {
            let rpp = table.rows_per_page();
            let n_rows = table.n_rows();
            // Calibration positions are row ids; zone-skipped pages
            // credit their row range so the clock still completes.
            let clock = CalibClock::new(CALIBRATION_ROWS.min(n_rows as u64));
            for page in 0..table.n_pages() {
                let first = (page * rpp) as RowId;
                let last = (page * rpp + rpp).min(n_rows) as RowId;
                if !compiled.page_may_match(table.page_zones(page)) {
                    m.pages_skipped += 1;
                    clock.credit_range(first as u64, last as u64);
                    continue;
                }
                if faults.scorer_panic_page() == Some(page) {
                    // Injected fault: a scorer blowing up while this
                    // page's rows are being evaluated.
                    panic!("injected fault: scorer panicked on heap page {page}");
                }
                m.heap_pages_read += 1;
                stall_pages(io_stall, 1);
                sync_model_metrics(&memo, &mut m);
                gs.check(&m)?;
                if opts.vectorized {
                    charge_rows_batched(&gs, &mut m, (last - first) as u64)?;
                    sel.clear();
                    sel.extend(first..last);
                    compiled.filter_batch_at(&mut sel, &mut ctx, first as u64, &clock)?;
                    out.extend_from_slice(&sel);
                    sync_model_metrics(&memo, &mut m);
                    gs.check(&m)?;
                } else {
                    for row in first..last {
                        fill_row(table, row, &mut ctx.row_buf);
                        m.rows_examined += 1;
                        let mut tree_inv = 0u64;
                        if residual.eval(&ctx.row_buf, &memo, &mut tree_inv) {
                            out.push(row);
                        }
                        sync_model_metrics(&memo, &mut m);
                        gs.check(&m)?;
                    }
                }
            }
        }
        AccessPath::IndexSeek(seek) => {
            let ix = &entry.indexes[seek.index];
            let rows = ix.probe(&seek.preds);
            m.index_pages_read = index_pages(rows.len(), table.rows_per_page());
            m.heap_pages_read = distinct_pages(&rows, table);
            gs.check(&m)?;
            stall_pages(io_stall, m.total_pages());
            if opts.vectorized {
                charge_rows_batched(&gs, &mut m, rows.len() as u64)?;
                // Calibration positions are fetch-list indexes here.
                let clock = CalibClock::new(CALIBRATION_ROWS.min(rows.len() as u64));
                sel.clear();
                sel.extend_from_slice(&rows);
                compiled.filter_batch_at(&mut sel, &mut ctx, 0, &clock)?;
                out.extend_from_slice(&sel);
                sync_model_metrics(&memo, &mut m);
                gs.check(&m)?;
            } else {
                for row in rows {
                    fill_row(table, row, &mut ctx.row_buf);
                    m.rows_examined += 1;
                    let mut tree_inv = 0u64;
                    if residual.eval(&ctx.row_buf, &memo, &mut tree_inv) {
                        out.push(row);
                    }
                    sync_model_metrics(&memo, &mut m);
                    gs.check(&m)?;
                }
            }
        }
        AccessPath::IndexUnion(seeks) => {
            // Tag each fetched row with whether *some* exact seek
            // produced it: those rows already satisfy the union's OR and
            // only need the `skip_or` residual (other conjuncts) — the
            // covering-index fast path that makes big-DNF envelopes
            // cheap to verify.
            let mut lists: Vec<(Vec<RowId>, bool)> = Vec::with_capacity(seeks.len());
            for seek in seeks {
                let ix = &entry.indexes[seek.index];
                let rows = ix.probe(&seek.preds);
                m.index_pages_read += index_pages(rows.len(), table.rows_per_page());
                gs.check(&m)?;
                lists.push((rows, seek.exact));
            }
            let union = merge_union(&lists, plan.skip_or.is_some());
            m.heap_pages_read =
                distinct_pages_sorted(union.iter().map(|(r, _)| *r), table);
            gs.check(&m)?;
            stall_pages(io_stall, m.total_pages());
            if opts.vectorized {
                // Maximal runs of rows sharing a residual choice batch
                // together; runs stay ascending, so output order holds.
                // Both residuals share one calibration clock; positions
                // are indexes into the merged union list.
                let clock = CalibClock::new(CALIBRATION_ROWS.min(union.len() as u64));
                let mut i = 0;
                while i < union.len() {
                    let flag = union[i].1;
                    let mut j = i + 1;
                    while j < union.len() && union[j].1 == flag {
                        j += 1;
                    }
                    charge_rows_batched(&gs, &mut m, (j - i) as u64)?;
                    sel.clear();
                    sel.extend(union[i..j].iter().map(|(r, _)| *r));
                    let pred = if flag {
                        compiled_skip.as_ref().unwrap_or(&compiled)
                    } else {
                        &compiled
                    };
                    pred.filter_batch_at(&mut sel, &mut ctx, i as u64, &clock)?;
                    out.extend_from_slice(&sel);
                    sync_model_metrics(&memo, &mut m);
                    gs.check(&m)?;
                    i = j;
                }
            } else {
                let skip_or = plan.skip_or.as_ref();
                for (row, use_skip) in union {
                    let pred = if use_skip { skip_or.unwrap_or(residual) } else { residual };
                    fill_row(table, row, &mut ctx.row_buf);
                    m.rows_examined += 1;
                    let mut tree_inv = 0u64;
                    if pred.eval(&ctx.row_buf, &memo, &mut tree_inv) {
                        out.push(row);
                    }
                    sync_model_metrics(&memo, &mut m);
                    gs.check(&m)?;
                }
            }
        }
    }

    // Final check covers paths that examined nothing (e.g. constant
    // scans past the deadline, or fully zone-pruned scans).
    sync_model_metrics(&memo, &mut m);
    gs.check(&m)?;
    m.clauses_reordered = compiled.reordered_clauses()
        + compiled_skip.as_ref().map_or(0, |c| c.reordered_clauses());
    m.factor_hits = ctx.factor_hits;
    let mut feedback = compiled.feedback();
    if let Some(c) = &compiled_skip {
        feedback.extend(c.feedback());
    }
    m.output_rows = out.len() as u64;
    m.elapsed = start.elapsed();
    m.guard = gs.headroom(&m);
    Ok(ExecResult { rows: out, metrics: m, feedback })
}

// ---------------------------------------------------------------------
// Partition-parallel executor
// ---------------------------------------------------------------------

/// Worker deadline-check interval, in rows (reference mode). Row / page
/// / invocation budgets are charged exactly through shared atomics; only
/// the wall-clock probe is amortized (a deadline breach is
/// timing-dependent either way). The vectorized path probes the
/// deadline per page and per scalar row instead.
const DEADLINE_CHECK_ROWS: u32 = 128;

/// One unit of dispatchable work.
enum Job<'a> {
    /// A page-aligned heap range (full scan).
    Scan(Range<RowId>),
    /// A slice of pre-fetched index rows starting at `offset` within the
    /// full fetch list (the adaptive calibration position); each row's
    /// flag selects the `skip_or` residual (exact-seek fast path) over
    /// the full one.
    Fetch { rows: &'a [(RowId, bool)], offset: u64 },
}

/// Budget and cancellation state shared by all workers of one query.
struct SharedProgress {
    guard: QueryGuard,
    /// Next job index to dispatch.
    next: AtomicUsize,
    rows: AtomicU64,
    /// Total pages charged so far (index pages pre-charged by the
    /// coordinator; heap pages charged progressively by scan workers).
    pages: AtomicU64,
    /// Heap pages proven empty by zone maps and skipped.
    skipped: AtomicU64,
    /// Factored shared-subexpression hits, flushed once per worker at
    /// exit (per-row additive, so the total is batching-independent).
    factor_hits: AtomicU64,
    /// Cooperative stop: set after a breach or panic; workers poll it
    /// per page / per scalar row, so no worker does more than one
    /// batch's work past a breach.
    cancel: AtomicBool,
    /// First error wins; later ones are dropped.
    failure: Mutex<Option<EngineError>>,
}

impl SharedProgress {
    fn new(guard: QueryGuard, pre_charged_pages: u64) -> SharedProgress {
        SharedProgress {
            guard,
            next: AtomicUsize::new(0),
            rows: AtomicU64::new(0),
            pages: AtomicU64::new(pre_charged_pages),
            skipped: AtomicU64::new(0),
            factor_hits: AtomicU64::new(0),
            cancel: AtomicBool::new(false),
            failure: Mutex::new(None),
        }
    }

    /// Records an error (first one wins) and cancels remaining work.
    fn fail(&self, err: EngineError) {
        let mut slot = self.failure.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(err);
        }
        self.cancel.store(true, Ordering::Relaxed);
    }

    fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    fn charge_rows(&self, n: u64) -> Result<(), EngineError> {
        if n == 0 {
            return Ok(());
        }
        let spent = self.rows.fetch_add(n, Ordering::Relaxed) + n;
        match self.guard.max_rows_examined {
            Some(limit) if spent > limit => Err(EngineError::BudgetExceeded {
                resource: GuardResource::RowsExamined,
                spent,
                limit,
            }),
            _ => Ok(()),
        }
    }

    fn charge_pages(&self, n: u64) -> Result<(), EngineError> {
        let spent = self.pages.fetch_add(n, Ordering::Relaxed) + n;
        match self.guard.max_pages {
            Some(limit) if spent > limit => Err(EngineError::BudgetExceeded {
                resource: GuardResource::PagesRead,
                spent,
                limit,
            }),
            _ => Ok(()),
        }
    }

    /// Checks the (memo-counted) invocation total against the budget.
    fn check_invocations(&self, spent: u64) -> Result<(), EngineError> {
        match self.guard.max_model_invocations {
            Some(limit) if spent > limit => Err(EngineError::BudgetExceeded {
                resource: GuardResource::ModelInvocations,
                spent,
                limit,
            }),
            _ => Ok(()),
        }
    }
}

fn execute_parallel(
    plan: &Plan,
    catalog: &Catalog,
    guard: QueryGuard,
    opts: &ExecOptions,
) -> Result<ExecResult, EngineError> {
    let start = Instant::now();
    let gs = GuardState::new(guard);
    let entry = catalog.table(plan.table);
    let table = &entry.table;
    let mut m = ExecMetrics::default();
    let io_stall = opts.io_stall;
    let memo = memo_for_plan(plan, catalog, opts);
    let schema = table.schema();
    let adaptive = opts.adaptive && opts.vectorized;
    let compiled = CompiledPredicate::compile(&plan.residual, schema, adaptive);
    let compiled_skip =
        plan.skip_or.as_ref().map(|e| CompiledPredicate::compile(e, schema, adaptive));

    let (access, index_fallback) = effective_access(plan, catalog);
    m.index_fallback = index_fallback;

    // Phase 1 (coordinator, serial): index probes and page accounting
    // for index paths — byte-identical to the serial executor, so page
    // budget breaches classify identically. Produces the job list.
    let mut fetched: Vec<(RowId, bool)> = Vec::new();
    let jobs: Vec<Job<'_>> = match access {
        AccessPath::ConstantScan => Vec::new(),
        AccessPath::FullScan => {
            table.morsels(opts.parallelism).into_iter().map(Job::Scan).collect()
        }
        AccessPath::IndexSeek(seek) => {
            let ix = &entry.indexes[seek.index];
            let rows = ix.probe(&seek.preds);
            m.index_pages_read = index_pages(rows.len(), table.rows_per_page());
            m.heap_pages_read = distinct_pages(&rows, table);
            gs.check(&m)?;
            stall_pages(io_stall, m.total_pages());
            fetched.extend(rows.into_iter().map(|r| (r, false)));
            chunk_jobs(&fetched, opts.parallelism)
        }
        AccessPath::IndexUnion(seeks) => {
            let mut lists: Vec<(Vec<RowId>, bool)> = Vec::with_capacity(seeks.len());
            for seek in seeks {
                let ix = &entry.indexes[seek.index];
                let rows = ix.probe(&seek.preds);
                m.index_pages_read += index_pages(rows.len(), table.rows_per_page());
                gs.check(&m)?;
                lists.push((rows, seek.exact));
            }
            // A row from an exact seek only needs `skip_or` — but only
            // when the plan actually carries one.
            fetched = merge_union(&lists, plan.skip_or.is_some());
            m.heap_pages_read =
                distinct_pages_sorted(fetched.iter().map(|(r, _)| *r), table);
            gs.check(&m)?;
            stall_pages(io_stall, m.total_pages());
            chunk_jobs(&fetched, opts.parallelism)
        }
    };

    // One calibration clock per execution: positions are row ids on a
    // full scan and fetch-list indexes on index paths. Workers claim
    // jobs in ascending index order, so the calibration positions (the
    // lowest ones) are always in flight first and a worker waiting for
    // the clock cannot starve it.
    let calib_total = match access {
        AccessPath::FullScan => CALIBRATION_ROWS.min(table.n_rows() as u64),
        AccessPath::ConstantScan => 0,
        AccessPath::IndexSeek(_) | AccessPath::IndexUnion(_) => {
            CALIBRATION_ROWS.min(fetched.len() as u64)
        }
    };
    let clock = CalibClock::new(calib_total);

    // Index pages (and index-path heap pages) were checked above;
    // pre-charge them so scan-phase page breaches see the true total.
    let shared = SharedProgress::new(guard, m.total_pages());
    let trivial_residual = matches!(plan.residual, Expr::Const(true));
    let workers = opts.parallelism.clamp(1, 256).min(jobs.len().max(1));
    let collected: Mutex<Vec<(usize, Vec<RowId>)>> = Mutex::new(Vec::new());
    let faults = catalog.faults();
    let wctx = WorkerCtx {
        jobs: &jobs,
        plan,
        table,
        memo: &memo,
        compiled: &compiled,
        compiled_skip: compiled_skip.as_ref(),
        shared: &shared,
        gs: &gs,
        io_stall,
        faults,
        vectorized: opts.vectorized,
        clock: &clock,
    };

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let outcome = catch_unwind(AssertUnwindSafe(|| run_worker(&wctx)));
                match outcome {
                    Ok(segments) => {
                        let mut all =
                            collected.lock().unwrap_or_else(|e| e.into_inner());
                        all.extend(segments);
                    }
                    Err(payload) => {
                        shared.fail(EngineError::Internal {
                            detail: panic_message(&*payload),
                        });
                    }
                }
            });
        }
    });

    if let Some(err) = shared.failure.lock().unwrap_or_else(|e| e.into_inner()).take() {
        return Err(err);
    }

    // Morsels are row-ordered and each worker's hits are ascending, so
    // sorting segments by job index reassembles the serial row order.
    let mut segments = collected.into_inner().unwrap_or_else(|e| e.into_inner());
    segments.sort_unstable_by_key(|(i, _)| *i);
    let mut out: Vec<RowId> = Vec::new();
    for (_, mut hits) in segments {
        out.append(&mut hits);
    }

    m.rows_examined = shared.rows.load(Ordering::Relaxed);
    m.pages_skipped = shared.skipped.load(Ordering::Relaxed);
    m.factor_hits = shared.factor_hits.load(Ordering::Relaxed);
    m.clauses_reordered = compiled.reordered_clauses()
        + compiled_skip.as_ref().map_or(0, |c| c.reordered_clauses());
    sync_model_metrics(&memo, &mut m);
    if matches!(access, AccessPath::FullScan) {
        m.heap_pages_read = table.n_pages() as u64 - m.pages_skipped;
    }
    // `trivial_residual` short-circuits nothing today, but asserting it
    // documents that even `WHERE TRUE` goes through the same charging.
    debug_assert!(!trivial_residual || out.len() as u64 == m.rows_examined);
    gs.check(&m)?;
    m.output_rows = out.len() as u64;
    m.elapsed = start.elapsed();
    m.guard = gs.headroom(&m);
    let mut feedback = compiled.feedback();
    if let Some(c) = &compiled_skip {
        feedback.extend(c.feedback());
    }
    Ok(ExecResult { rows: out, metrics: m, feedback })
}

/// Splits the pre-fetched row list into `4 × workers` contiguous
/// chunks (ascending row order is preserved across chunk boundaries),
/// each carrying its global offset in the fetch list.
fn chunk_jobs<'a>(fetched: &'a [(RowId, bool)], workers: usize) -> Vec<Job<'a>> {
    if fetched.is_empty() {
        return Vec::new();
    }
    let chunk = fetched.len().div_ceil(workers.max(1) * 4).max(1);
    fetched
        .chunks(chunk)
        .enumerate()
        .map(|(i, rows)| Job::Fetch { rows, offset: (i * chunk) as u64 })
        .collect()
}

/// Everything a scan worker needs, bundled so job helpers stay readable.
struct WorkerCtx<'a> {
    jobs: &'a [Job<'a>],
    plan: &'a Plan,
    table: &'a Table,
    memo: &'a MemoScorer<'a>,
    compiled: &'a CompiledPredicate,
    compiled_skip: Option<&'a CompiledPredicate>,
    shared: &'a SharedProgress,
    gs: &'a GuardState,
    io_stall: Option<Duration>,
    faults: &'a FaultInjector,
    vectorized: bool,
    clock: &'a CalibClock,
}

/// Sentinel error a worker returns when it observes cooperative
/// cancellation mid-batch (also raised by the compiled predicate's
/// calibration wait loop). It never surfaces: `fail` keeps the first
/// error, and cancellation is only ever set after a real failure (or
/// this same sentinel racing it) was recorded.
pub(crate) fn cancelled_sentinel() -> EngineError {
    EngineError::Internal { detail: "query cancelled".into() }
}

/// One worker: pulls jobs off the shared dispatcher until the list is
/// drained or the query is cancelled, returning `(job index, hits)`
/// segments. Budget breaches are recorded in `shared` and stop every
/// worker; panics are caught by the caller.
fn run_worker(w: &WorkerCtx<'_>) -> Vec<(usize, Vec<RowId>)> {
    let mut segments = Vec::new();
    let mut rows_since_deadline_check: u32 = 0;
    // Scalar (mining) rows hook the invocation budget, the deadline and
    // the cancellation flag — the per-row cadence breach classification
    // parity needs.
    let mut after_scalar = || -> Result<(), EngineError> {
        if w.shared.cancelled() {
            return Err(cancelled_sentinel());
        }
        w.shared.check_invocations(w.memo.invocations())?;
        w.gs.check_deadline()
    };
    let factor_slots = w
        .compiled
        .factor_slots()
        .max(w.compiled_skip.map_or(0, |c| c.factor_slots()));
    let mut ctx = BatchCtx {
        table: w.table,
        oracle: w.memo,
        row_buf: vec![0u16; w.table.schema().len()],
        after_scalar_row: &mut after_scalar,
        factor_pass: vec![None; factor_slots],
        factor_hits: 0,
        cancel: Some(&w.shared.cancel),
    };
    let mut sel: Vec<RowId> = Vec::with_capacity(w.table.rows_per_page());

    loop {
        if w.shared.cancelled() {
            break;
        }
        let i = w.shared.next.fetch_add(1, Ordering::Relaxed);
        if i >= w.jobs.len() {
            break;
        }
        if let Err(e) = w.gs.check_deadline() {
            w.shared.fail(e);
            break;
        }
        if w.faults.scorer_panic_morsel() == Some(i) {
            // Injected fault: a scorer blowing up inside this worker.
            // The catch_unwind wrapping `run_worker` converts it to
            // `EngineError::Internal`, like any real model panic.
            panic!("injected fault: scorer panicked in worker on morsel {i}");
        }

        let mut hits: Vec<RowId> = Vec::new();
        let result = match &w.jobs[i] {
            Job::Scan(range) => scan_job(
                w,
                range.clone(),
                &mut ctx,
                &mut sel,
                &mut hits,
                &mut rows_since_deadline_check,
            ),
            Job::Fetch { rows, offset } => fetch_job(
                w,
                rows,
                *offset,
                &mut ctx,
                &mut sel,
                &mut hits,
                &mut rows_since_deadline_check,
            ),
        };
        match result {
            Ok(()) => segments.push((i, hits)),
            Err(e) => {
                // Harmless for the cancellation sentinel: the slot
                // already holds the error that caused the cancel.
                w.shared.fail(e);
                break;
            }
        }
    }
    w.shared.factor_hits.fetch_add(ctx.factor_hits, Ordering::Relaxed);
    segments
}

/// Scans the pages of one page-aligned morsel.
fn scan_job<O: crate::expr::ModelOracle>(
    w: &WorkerCtx<'_>,
    range: Range<RowId>,
    ctx: &mut BatchCtx<'_, O>,
    sel: &mut Vec<RowId>,
    hits: &mut Vec<RowId>,
    deadline_ctr: &mut u32,
) -> Result<(), EngineError> {
    let table = w.table;
    let rpp = table.rows_per_page();
    debug_assert!(!range.is_empty() && (range.start as usize).is_multiple_of(rpp));
    let first_page = range.start as usize / rpp;
    let last_page = (range.end as usize - 1) / rpp;
    for page in first_page..=last_page {
        if w.shared.cancelled() {
            return Err(cancelled_sentinel());
        }
        let first = (page * rpp) as RowId;
        let last = ((page * rpp + rpp).min(table.n_rows()) as RowId).min(range.end);
        if !w.compiled.page_may_match(table.page_zones(page)) {
            w.shared.skipped.fetch_add(1, Ordering::Relaxed);
            w.clock.credit_range(first as u64, last as u64);
            continue;
        }
        if w.faults.scorer_panic_page() == Some(page) {
            panic!("injected fault: scorer panicked on heap page {page}");
        }
        stall_pages(w.io_stall, 1);
        w.shared.charge_pages(1)?;
        if w.vectorized {
            w.shared.charge_rows((last - first) as u64)?;
            sel.clear();
            sel.extend(first..last);
            w.compiled.filter_batch_at(sel, ctx, first as u64, w.clock)?;
            hits.extend_from_slice(sel);
            w.gs.check_deadline()?;
        } else {
            for row in first..last {
                if w.shared.cancelled() {
                    return Err(cancelled_sentinel());
                }
                eval_row_reference(w, row, &w.plan.residual, ctx, hits, deadline_ctr)?;
            }
        }
    }
    Ok(())
}

/// Evaluates one chunk of pre-fetched index rows.
fn fetch_job<O: crate::expr::ModelOracle>(
    w: &WorkerCtx<'_>,
    slice: &[(RowId, bool)],
    offset: u64,
    ctx: &mut BatchCtx<'_, O>,
    sel: &mut Vec<RowId>,
    hits: &mut Vec<RowId>,
    deadline_ctr: &mut u32,
) -> Result<(), EngineError> {
    if w.vectorized {
        // Maximal runs sharing a residual choice batch together.
        let mut i = 0;
        while i < slice.len() {
            if w.shared.cancelled() {
                return Err(cancelled_sentinel());
            }
            let flag = slice[i].1;
            let mut j = i + 1;
            while j < slice.len() && slice[j].1 == flag {
                j += 1;
            }
            w.shared.charge_rows((j - i) as u64)?;
            sel.clear();
            sel.extend(slice[i..j].iter().map(|(r, _)| *r));
            let pred = if flag { w.compiled_skip.unwrap_or(w.compiled) } else { w.compiled };
            pred.filter_batch_at(sel, ctx, offset + i as u64, w.clock)?;
            hits.extend_from_slice(sel);
            w.gs.check_deadline()?;
            i = j;
        }
    } else {
        let skip_or = w.plan.skip_or.as_ref();
        for &(row, use_skip) in slice {
            if w.shared.cancelled() {
                return Err(cancelled_sentinel());
            }
            // `use_skip` is only ever set when the plan carries a
            // `skip_or` residual (see the union merge).
            let pred = if use_skip {
                skip_or.unwrap_or(&w.plan.residual)
            } else {
                &w.plan.residual
            };
            eval_row_reference(w, row, pred, ctx, hits, deadline_ctr)?;
        }
    }
    Ok(())
}

/// Row-at-a-time reference evaluation of one row inside a worker.
fn eval_row_reference<O: crate::expr::ModelOracle>(
    w: &WorkerCtx<'_>,
    row: RowId,
    pred: &Expr,
    ctx: &mut BatchCtx<'_, O>,
    hits: &mut Vec<RowId>,
    deadline_ctr: &mut u32,
) -> Result<(), EngineError> {
    fill_row(w.table, row, &mut ctx.row_buf);
    let mut tree_inv = 0u64;
    let hit = pred.eval(&ctx.row_buf, ctx.oracle, &mut tree_inv);
    w.shared.charge_rows(1)?;
    w.shared.check_invocations(w.memo.invocations())?;
    if hit {
        hits.push(row);
    }
    *deadline_ctr += 1;
    if *deadline_ctr >= DEADLINE_CHECK_ROWS {
        *deadline_ctr = 0;
        w.gs.check_deadline()?;
    }
    Ok(())
}

fn index_pages(postings: usize, rows_per_page: usize) -> u64 {
    // Postings are dense u32s; a page holds ~4x as many entries as rows.
    (postings.div_ceil((rows_per_page * 4).max(1)).max(1)) as u64
}

/// K-way merges the (ascending) posting lists of a union's seeks into
/// one ascending, deduplicated `(row, use_skip)` list. Among duplicates
/// the exact-seek copy wins (its rows may take the `skip_or` fast path);
/// the flag is pre-resolved to `exact && has_skip` so both executors
/// pick residuals by the flag alone. Replaces the old
/// concatenate-sort-dedup with a single heap merge over sorted inputs.
fn merge_union(lists: &[(Vec<RowId>, bool)], has_skip: bool) -> Vec<(RowId, bool)> {
    let total: usize = lists.iter().map(|(rows, _)| rows.len()).sum();
    // Heap entries order by (row, !exact): the exact copy of a row pops
    // first, so dedup keeps it.
    let mut heap: BinaryHeap<Reverse<(RowId, bool, usize, usize)>> =
        BinaryHeap::with_capacity(lists.len());
    for (li, (rows, exact)) in lists.iter().enumerate() {
        debug_assert!(rows.windows(2).all(|p| p[0] <= p[1]), "probe lists are sorted");
        if let Some(&r) = rows.first() {
            heap.push(Reverse((r, !exact, li, 0)));
        }
    }
    let mut out: Vec<(RowId, bool)> = Vec::with_capacity(total);
    while let Some(Reverse((row, inexact, li, idx))) = heap.pop() {
        if out.last().map(|&(r, _)| r) != Some(row) {
            out.push((row, !inexact && has_skip));
        }
        let (rows, exact) = &lists[li];
        if idx + 1 < rows.len() {
            heap.push(Reverse((rows[idx + 1], !exact, li, idx + 1)));
        }
    }
    out
}

/// Distinct heap pages among sorted row ids: count page transitions in
/// one pass instead of hashing every row.
fn distinct_pages(rows: &[RowId], table: &Table) -> u64 {
    distinct_pages_sorted(rows.iter().copied(), table)
}

fn distinct_pages_sorted(rows: impl Iterator<Item = RowId>, table: &Table) -> u64 {
    let mut n = 0u64;
    let mut last = usize::MAX;
    let mut prev_row = 0 as RowId;
    for r in rows {
        debug_assert!(n == 0 || r >= prev_row, "rows must be sorted");
        prev_row = r;
        let p = table.page_of(r);
        if p != last {
            n += 1;
            last = p;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Atom, AtomPred};
    use crate::optimizer::{choose_plan, OptimizerOptions};
    use crate::table::Table;
    use mpq_types::{AttrDomain, AttrId, Attribute, Dataset, Schema};

    /// 100k rows; the rare member (0.1%) occupies the first 100 rows so
    /// its heap pages are genuinely few.
    fn catalog() -> Catalog {
        let schema = Schema::new(vec![Attribute::new(
            "a",
            AttrDomain::categorical(["rare", "common"]),
        )])
        .unwrap();
        let rows = (0..100_000).map(|i| vec![u16::from(i >= 100)]);
        let ds = Dataset::from_rows(schema, rows).unwrap();
        let mut cat = Catalog::new();
        let t = cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        cat.create_index(t, &[AttrId(0)]);
        cat
    }

    fn run(e: Expr, cat: &Catalog) -> ExecResult {
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, cat, &OptimizerOptions::default());
        execute(&plan, cat)
    }

    /// Plans with zone-map costing off — the rare-member predicates here
    /// otherwise cost so few covered pages that a pruned scan beats any
    /// index path, and these tests exist to exercise the index paths.
    fn plan_no_zone(e: Expr, cat: &Catalog) -> Plan {
        let schema = cat.table(0).table.schema().clone();
        let opts = OptimizerOptions { use_zone_maps: false, ..OptimizerOptions::default() };
        choose_plan(e, 0, &schema, cat, &opts)
    }

    #[test]
    fn full_scan_reads_all_pages_and_filters() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) }); // 99%
        let r = run(e, &cat);
        assert_eq!(r.rows.len(), 99_900);
        assert_eq!(r.metrics.rows_examined, 100_000);
        // Member 1 appears on every page, so nothing is prunable.
        assert_eq!(r.metrics.pages_skipped, 0);
        assert_eq!(r.metrics.heap_pages_read, cat.table(0).table.n_pages() as u64);
    }

    #[test]
    fn zone_maps_prune_clustered_scan() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }); // 0.1%, clustered
        let plan = Plan { access: AccessPath::FullScan, ..plan_no_zone(e, &cat) };
        let n_pages = cat.table(0).table.n_pages() as u64;
        let vectorized = execute(&plan, &cat);
        assert_eq!(vectorized.rows.len(), 100);
        assert_eq!(vectorized.metrics.heap_pages_read, 1, "only page 0 holds member 0");
        assert_eq!(vectorized.metrics.pages_skipped, n_pages - 1);
        // The reference interpreter prunes identically — metrics match
        // field-for-field apart from wall clock.
        let reference = execute_opts(
            &plan,
            &cat,
            QueryGuard::unlimited(),
            &ExecOptions { vectorized: false, ..ExecOptions::default() },
        )
        .unwrap();
        assert_eq!(vectorized.rows, reference.rows);
        assert_eq!(vectorized.metrics.heap_pages_read, reference.metrics.heap_pages_read);
        assert_eq!(vectorized.metrics.pages_skipped, reference.metrics.pages_skipped);
        assert_eq!(vectorized.metrics.rows_examined, reference.metrics.rows_examined);
    }

    #[test]
    fn index_seek_touches_few_pages() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }); // 1%
        let plan = plan_no_zone(e, &cat);
        let r = execute(&plan, &cat);
        assert_eq!(r.rows.len(), 100);
        assert_eq!(r.metrics.rows_examined, 100, "only matched rows fetched");
        assert!(
            r.metrics.heap_pages_read < cat.table(0).table.n_pages() as u64,
            "index fetch must touch fewer pages than a scan"
        );
        assert!(r.metrics.index_pages_read >= 1);
    }

    #[test]
    fn constant_scan_touches_nothing() {
        let cat = catalog();
        let r = run(Expr::Const(false), &cat);
        assert!(r.rows.is_empty());
        assert_eq!(r.metrics.total_pages(), 0);
        assert_eq!(r.metrics.rows_examined, 0);
    }

    #[test]
    fn index_union_dedupes_rows() {
        let cat = catalog();
        // a = rare OR a = rare (duplicate seeks) must not double-count.
        let e = Expr::Or(vec![
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }),
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }),
        ]);
        // Bypass normalize-dedup on purpose: hand the raw OR to the
        // optimizer.
        let plan = plan_no_zone(e, &cat);
        let r = execute(&plan, &cat);
        assert_eq!(r.rows.len(), 100);
        assert!(r.rows.windows(2).all(|w| w[0] < w[1]), "sorted, deduped row ids");
    }

    #[test]
    fn merge_union_keeps_exact_copy() {
        let cat = catalog();
        let t = &cat.table(0).table;
        let lists = vec![
            (vec![1, 4, 7, 9], false),
            (vec![0, 4, 9, 12], true),
            (vec![], true),
        ];
        let merged = merge_union(&lists, true);
        assert_eq!(
            merged,
            vec![(0, true), (1, false), (4, true), (7, false), (9, true), (12, true)]
        );
        // Without a skip_or residual the flag is always false.
        assert!(merge_union(&lists, false).iter().all(|&(_, f)| !f));
        // Distinct-page counting over the sorted merge agrees with a
        // brute-force count.
        let pages = distinct_pages_sorted(merged.iter().map(|&(r, _)| r), t);
        let brute: std::collections::BTreeSet<usize> =
            merged.iter().map(|&(r, _)| t.page_of(r)).collect();
        assert_eq!(pages, brute.len() as u64);
    }

    #[test]
    fn guard_trips_row_budget_without_partial_result() {
        use crate::error::GuardResource;
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) });
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        let plan = Plan { access: AccessPath::FullScan, ..plan };
        let guard = QueryGuard::default().with_max_rows_examined(10);
        match execute_guarded(&plan, &cat, guard) {
            Err(crate::EngineError::BudgetExceeded { resource, spent, limit }) => {
                assert_eq!(resource, GuardResource::RowsExamined);
                assert_eq!(limit, 10);
                assert_eq!(spent, 11, "detected on the first row past the limit");
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn guard_headroom_recorded_on_success() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) });
        let plan = plan_no_zone(e, &cat);
        let guard = QueryGuard::default().with_max_rows_examined(1_000);
        let r = execute_guarded(&plan, &cat, guard).unwrap();
        assert_eq!(r.rows.len(), 100);
        assert_eq!(r.metrics.guard.rows_remaining, Some(900));
        assert_eq!(r.metrics.guard.pages_remaining, None, "pages unlimited");
    }

    #[test]
    fn index_fault_falls_back_to_scan_with_identical_rows() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) });
        let plan = plan_no_zone(e, &cat);
        assert!(
            matches!(plan.access, AccessPath::IndexSeek(_) | AccessPath::IndexUnion(_)),
            "selective predicate should choose an index path"
        );
        let healthy = execute(&plan, &cat);
        cat.faults().set_index_probe_failure(true);
        let degraded = execute(&plan, &cat);
        cat.faults().reset();
        assert_eq!(healthy.rows, degraded.rows, "fallback must not change the row set");
        assert!(degraded.metrics.index_fallback);
        assert!(!healthy.metrics.index_fallback);
        // The fallback scans the heap, but zone maps prove most pages
        // empty for this clustered member — skipped + read covers it.
        let n_pages = cat.table(0).table.n_pages() as u64;
        assert_eq!(
            degraded.metrics.heap_pages_read + degraded.metrics.pages_skipped,
            n_pages
        );
        assert!(degraded.metrics.pages_skipped > 0, "zone maps prune the fallback");
        assert_eq!(degraded.metrics.index_pages_read, 0);
    }

    #[test]
    fn results_identical_across_access_paths() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) });
        let seek_plan = plan_no_zone(e, &cat);
        // Force a scan by disallowing union + pretending no indexes:
        let scan_plan = Plan {
            access: AccessPath::FullScan,
            ..seek_plan.clone()
        };
        assert_eq!(execute(&seek_plan, &cat).rows, execute(&scan_plan, &cat).rows);
    }

    // -- parallel executor unit tests (the heavyweight differential
    //    oracles live in tests/parallel_oracle.rs and
    //    tests/vectorized_oracle.rs) -----------------------------------

    /// Asserts the parallel executor matched the serial reference on
    /// everything that must be deterministic (all metrics except the
    /// wall-clock fields).
    fn assert_matches_serial(serial: &ExecResult, parallel: &ExecResult) {
        assert_eq!(serial.rows, parallel.rows, "row sets (and order) must match");
        let (s, p) = (&serial.metrics, &parallel.metrics);
        assert_eq!(s.rows_examined, p.rows_examined);
        assert_eq!(s.heap_pages_read, p.heap_pages_read);
        assert_eq!(s.index_pages_read, p.index_pages_read);
        assert_eq!(s.pages_skipped, p.pages_skipped);
        assert_eq!(s.model_invocations, p.model_invocations);
        assert_eq!(s.memo_hits, p.memo_hits);
        assert_eq!(s.cascade_accepts, p.cascade_accepts);
        assert_eq!(s.cascade_rejects, p.cascade_rejects);
        assert_eq!(s.band_rows, p.band_rows);
        assert_eq!(s.output_rows, p.output_rows);
        assert_eq!(s.index_fallback, p.index_fallback);
        assert_eq!(s.subs_matched, p.subs_matched);
        assert_eq!(s.subs_index_pruned, p.subs_index_pruned);
        assert_eq!(s.clauses_reordered, p.clauses_reordered);
        assert_eq!(s.factor_hits, p.factor_hits);
        assert_eq!(s.feedback_entries, p.feedback_entries);
        assert_eq!(serial.feedback, parallel.feedback, "calibration feedback must be dop-deterministic");
        assert_eq!(s.guard.rows_remaining, p.guard.rows_remaining);
        assert_eq!(s.guard.pages_remaining, p.guard.pages_remaining);
        assert_eq!(
            s.guard.model_invocations_remaining,
            p.guard.model_invocations_remaining
        );
    }

    #[test]
    fn parallel_full_scan_matches_serial() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) });
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        let plan = Plan { access: AccessPath::FullScan, ..plan };
        let guard = QueryGuard::default().with_max_rows_examined(200_000);
        let serial = execute_guarded(&plan, &cat, guard).unwrap();
        for dop in [2usize, 4, 8] {
            let par =
                execute_opts(&plan, &cat, guard, &ExecOptions::with_parallelism(dop))
                    .unwrap();
            assert_matches_serial(&serial, &par);
        }
    }

    #[test]
    fn parallel_pruned_scan_matches_serial() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) });
        let plan = Plan { access: AccessPath::FullScan, ..plan_no_zone(e, &cat) };
        let serial = execute(&plan, &cat);
        assert!(serial.metrics.pages_skipped > 0);
        for dop in [2usize, 8] {
            let par = execute_opts(
                &plan,
                &cat,
                QueryGuard::unlimited(),
                &ExecOptions::with_parallelism(dop),
            )
            .unwrap();
            assert_matches_serial(&serial, &par);
        }
    }

    #[test]
    fn parallel_index_paths_match_serial() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) });
        let plan = plan_no_zone(e, &cat);
        let serial = execute(&plan, &cat);
        for dop in [2usize, 8] {
            let par = execute_opts(
                &plan,
                &cat,
                QueryGuard::unlimited(),
                &ExecOptions::with_parallelism(dop),
            )
            .unwrap();
            assert_matches_serial(&serial, &par);
        }
    }

    #[test]
    fn parallel_breach_classifies_like_serial() {
        use crate::error::GuardResource;
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) });
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        let plan = Plan { access: AccessPath::FullScan, ..plan };
        let guard = QueryGuard::default().with_max_rows_examined(1_000);
        for dop in [2usize, 4] {
            match execute_opts(&plan, &cat, guard, &ExecOptions::with_parallelism(dop)) {
                Err(crate::EngineError::BudgetExceeded { resource, spent, limit }) => {
                    assert_eq!(resource, GuardResource::RowsExamined);
                    assert_eq!(limit, 1_000);
                    assert!(spent > limit, "breach reports spent past the limit");
                }
                other => panic!("expected BudgetExceeded at dop {dop}, got {other:?}"),
            }
        }
    }

    #[test]
    fn parallel_worker_panic_surfaces_as_internal_error() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) });
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        let plan = Plan { access: AccessPath::FullScan, ..plan };
        cat.faults().set_scorer_panic_on_morsel(Some(1));
        let res = execute_opts(
            &plan,
            &cat,
            QueryGuard::unlimited(),
            &ExecOptions::with_parallelism(4),
        );
        cat.faults().reset();
        match res {
            Err(EngineError::Internal { detail }) => {
                assert!(detail.contains("morsel 1"), "detail: {detail}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
        // The catalog is untouched and immediately usable again.
        let ok = execute_opts(
            &plan,
            &cat,
            QueryGuard::unlimited(),
            &ExecOptions::with_parallelism(4),
        )
        .unwrap();
        assert_eq!(ok.rows.len(), 99_900);
    }

    #[test]
    fn scorer_panic_on_page_fires_in_both_executors() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) });
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        let plan = Plan { access: AccessPath::FullScan, ..plan };
        cat.faults().set_scorer_panic_on_page(Some(2));
        let serial = catch_unwind(AssertUnwindSafe(|| execute(&plan, &cat)));
        assert!(serial.is_err(), "serial executor hits the page fault raw");
        let par = execute_opts(
            &plan,
            &cat,
            QueryGuard::unlimited(),
            &ExecOptions::with_parallelism(4),
        );
        cat.faults().reset();
        match par {
            Err(EngineError::Internal { detail }) => {
                assert!(detail.contains("heap page 2"), "detail: {detail}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
    }

    #[test]
    fn parallel_empty_table_and_constant_scan() {
        let schema = Schema::new(vec![Attribute::new(
            "a",
            AttrDomain::categorical(["x", "y"]),
        )])
        .unwrap();
        let ds = Dataset::new(schema.clone());
        let mut cat = Catalog::new();
        cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        let plan = choose_plan(
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }),
            0,
            &schema,
            &cat,
            &OptimizerOptions::default(),
        );
        let par = execute_opts(
            &plan,
            &cat,
            QueryGuard::unlimited(),
            &ExecOptions::with_parallelism(8),
        )
        .unwrap();
        assert!(par.rows.is_empty());
        let constant = choose_plan(
            Expr::Const(false),
            0,
            &schema,
            &cat,
            &OptimizerOptions::default(),
        );
        let par = execute_opts(
            &constant,
            &cat,
            QueryGuard::unlimited(),
            &ExecOptions::with_parallelism(8),
        )
        .unwrap();
        assert_eq!(par.metrics.total_pages(), 0);
    }
}
