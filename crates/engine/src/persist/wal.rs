//! Write-ahead log segments: CRC-framed records, fsync'd appends, and
//! torn-tail-tolerant reads.
//!
//! On-disk layout of a segment file (`wal-<startlsn>.wal`):
//!
//! ```text
//! +----------------+-----------------+
//! | magic MPQWAL1\n | start LSN (u64) |   16-byte header
//! +----------------+-----------------+
//! | len u32 | crc32 u32 | payload ... |   repeated frames
//! +---------+-----------+-------------+
//! ```
//!
//! The payload of every frame is `LSN (u64)` followed by a [`LogOp`]
//! body; the CRC covers the whole payload. A reader accepts the longest
//! prefix of frames that parse and checksum cleanly — anything after the
//! first bad byte is untrusted, reported, and (by recovery) truncated
//! away before the segment is reused for appends.

use super::LogOp;
use crate::fault::FaultInjector;
use crate::EngineError;
use mpq_types::wire::{crc32, WireReader, WireWriter};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes opening every WAL segment.
pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"MPQWAL1\n";
/// Segment header length: magic plus the starting LSN.
pub(crate) const HEADER_LEN: usize = 16;
/// Bytes an armed short-read fault shaves off the end of a segment.
const SHORT_READ_BYTES: usize = 5;

/// File name for the segment whose first record has `start_lsn`.
pub(crate) fn segment_file_name(start_lsn: u64) -> String {
    format!("wal-{start_lsn:020}.wal")
}

/// Parses a segment file name back to its starting LSN.
pub(crate) fn parse_segment_file_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".wal")?;
    if rest.len() != 20 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// Serializes one record into its on-disk frame.
pub(crate) fn encode_frame(lsn: u64, op: &LogOp) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u64(lsn);
    op.encode(&mut w);
    let payload = w.into_bytes();
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// An open WAL segment accepting appends.
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: File,
    path: PathBuf,
    start_lsn: u64,
    /// Set after an append failed mid-frame; the tail is no longer known
    /// to be well-formed, so further appends are refused (a real disk
    /// that tore a write is not trusted either).
    dead: bool,
    faults: Arc<FaultInjector>,
}

impl WalWriter {
    /// Creates a fresh segment in `dir` starting at `start_lsn`, with
    /// its header written and fsync'd (file and directory).
    pub(crate) fn create(
        dir: &Path,
        start_lsn: u64,
        faults: Arc<FaultInjector>,
    ) -> Result<WalWriter, EngineError> {
        let path = dir.join(segment_file_name(start_lsn));
        let mut file = OpenOptions::new().write(true).create_new(true).open(&path)?;
        file.write_all(SEGMENT_MAGIC)?;
        file.write_all(&start_lsn.to_le_bytes())?;
        file.sync_all()?;
        File::open(dir)?.sync_all()?;
        Ok(WalWriter { file, path, start_lsn, dead: false, faults })
    }

    /// Reopens an existing segment for appends after recovery truncated
    /// it to `valid_len` bytes of verified content.
    pub(crate) fn open_append(
        path: &Path,
        start_lsn: u64,
        valid_len: u64,
        faults: Arc<FaultInjector>,
    ) -> Result<WalWriter, EngineError> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        file.sync_all()?;
        let mut file = file;
        use std::io::Seek as _;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(WalWriter { file, path: path.to_path_buf(), start_lsn, dead: false, faults })
    }

    /// First LSN of this segment.
    pub(crate) fn start_lsn(&self) -> u64 {
        self.start_lsn
    }

    /// Path of the segment file.
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and fsyncs before returning success. Returns
    /// the byte length of the appended frame (the unit replication lag
    /// is accounted in).
    ///
    /// Honours armed WAL faults: a torn write persists only part of the
    /// frame, fails, and poisons the writer; a bit flip damages the
    /// payload after the CRC was computed and *succeeds* — the damage
    /// surfaces only at the next recovery.
    pub(crate) fn append(&mut self, lsn: u64, op: &LogOp) -> Result<u64, EngineError> {
        if self.dead {
            return Err(EngineError::Io {
                detail: "wal writer poisoned by an earlier failed append".to_string(),
            });
        }
        if self.faults.wal_enospc_armed() {
            // The disk refused the write before any byte landed: the
            // on-disk tail is exactly what it was, so the writer stays
            // trustworthy and later appends may succeed once space is
            // freed (the fault is disarmed).
            return Err(EngineError::Io {
                detail: "injected ENOSPC: no space left on device".to_string(),
            });
        }
        let mut frame = encode_frame(lsn, op);
        if self.faults.take_wal_fsync_fail() {
            // The frame was written but fsync reported failure. The
            // kernel may have already dropped the dirty pages (fsync
            // gate), so nothing about the tail can be trusted.
            self.file.write_all(&frame)?;
            self.dead = true;
            return Err(EngineError::Io { detail: "injected fsync failure".to_string() });
        }
        if self.faults.take_wal_torn_write() {
            let cut = (frame.len() / 2).max(1);
            self.file.write_all(&frame[..cut])?;
            self.file.sync_data()?;
            self.dead = true;
            return Err(EngineError::Io { detail: "injected torn wal write".to_string() });
        }
        if self.faults.take_wal_bit_flip() {
            let idx = 8 + (frame.len() - 8) / 2;
            frame[idx] ^= 0x04;
        }
        match self.file.write_all(&frame).and_then(|()| self.file.sync_data()) {
            Ok(()) => Ok(frame.len() as u64),
            Err(e) => {
                // How much of the frame reached disk is unknown.
                self.dead = true;
                Err(e.into())
            }
        }
    }
}

/// Everything a read pass learned about one segment.
#[derive(Debug)]
pub(crate) struct SegmentData {
    /// Starting LSN from the header (0 when the header itself was bad).
    pub start_lsn: u64,
    /// Records of the longest clean prefix, in log order.
    pub records: Vec<(u64, LogOp)>,
    /// Byte offset just past each record in `records` — `ends[i]` is a
    /// valid truncation point keeping records `0..=i`.
    pub ends: Vec<u64>,
    /// Byte length of that clean prefix (header included). The file can
    /// be truncated to this length and safely appended to.
    pub valid_len: u64,
    /// Description of the first corruption, if the segment has one.
    pub corruption: Option<String>,
    /// Frames discarded after the corruption point (best-effort count by
    /// walking length fields; a mangled length field ends the walk).
    pub dropped_frames: u64,
    /// Bytes discarded after the clean prefix.
    pub dropped_bytes: u64,
    /// False when the 16-byte header was missing or had a bad magic.
    pub header_valid: bool,
}

/// Total little-endian read: `None` instead of panicking on a short
/// slice. The recovery path must be panic-free by construction, not by
/// bounds-check arguments at each call site.
pub(crate) fn le_u32(bytes: &[u8], pos: usize) -> Option<u32> {
    bytes.get(pos..pos.checked_add(4)?).and_then(|s| s.try_into().ok()).map(u32::from_le_bytes)
}

/// Total little-endian read of a `u64`; see [`le_u32`].
pub(crate) fn le_u64(bytes: &[u8], pos: usize) -> Option<u64> {
    bytes.get(pos..pos.checked_add(8)?).and_then(|s| s.try_into().ok()).map(u64::from_le_bytes)
}

/// Walks frames from `pos` counting how many *look* framed (length
/// fields chain within bounds). A torn or garbage region stops the walk
/// and still counts once — something was there.
fn count_dropped_frames(bytes: &[u8], mut pos: usize) -> u64 {
    let mut frames = 0;
    while pos < bytes.len() {
        frames += 1;
        let Some(len) = le_u32(bytes, pos) else { break };
        match pos.checked_add(8 + len as usize) {
            Some(next) if next <= bytes.len() => pos = next,
            _ => break,
        }
    }
    frames
}

/// Reads a segment, accepting the longest clean prefix of frames.
///
/// I/O errors (the file vanishing mid-read) surface as `Err`; *content*
/// problems — bad magic, torn tail, CRC mismatch, undecodable record —
/// are not errors but facts about the segment, reported in the returned
/// [`SegmentData`].
pub(crate) fn read_segment(
    path: &Path,
    faults: &FaultInjector,
) -> Result<SegmentData, EngineError> {
    let mut bytes = std::fs::read(path)?;
    if faults.wal_short_read_armed() {
        let cut = bytes.len().saturating_sub(SHORT_READ_BYTES);
        bytes.truncate(cut);
    }
    let total = bytes.len() as u64;
    let header_lsn = if bytes.get(..8).is_some_and(|m| m == SEGMENT_MAGIC) {
        le_u64(&bytes, 8)
    } else {
        None
    };
    let Some(start_lsn) = header_lsn else {
        return Ok(SegmentData {
            start_lsn: 0,
            records: Vec::new(),
            ends: Vec::new(),
            valid_len: 0,
            corruption: Some(format!("bad segment header in {}", path.display())),
            dropped_frames: if bytes.len() > HEADER_LEN {
                count_dropped_frames(&bytes, HEADER_LEN)
            } else {
                0
            },
            dropped_bytes: total,
            header_valid: false,
        });
    };
    let mut records = Vec::new();
    let mut ends = Vec::new();
    let mut pos = HEADER_LEN;
    let mut corruption = None;
    while pos < bytes.len() {
        let (Some(len), Some(crc)) = (le_u32(&bytes, pos), le_u32(&bytes, pos + 4)) else {
            corruption = Some(format!("torn frame header at byte {pos}"));
            break;
        };
        let len = len as usize;
        let Some(end) = pos.checked_add(8 + len) else {
            corruption = Some(format!("absurd frame length at byte {pos}"));
            break;
        };
        if end > bytes.len() {
            corruption = Some(format!("torn frame payload at byte {pos}"));
            break;
        }
        let payload = &bytes[pos + 8..end];
        if crc32(payload) != crc {
            corruption = Some(format!("crc mismatch at byte {pos}"));
            break;
        }
        let mut r = WireReader::new(payload);
        let parsed = (|| -> Result<(u64, LogOp), EngineError> {
            let lsn = r.get_u64()?;
            let op = LogOp::decode(&mut r)?;
            Ok((lsn, op))
        })();
        match parsed {
            Ok(rec) if r.is_exhausted() => {
                records.push(rec);
                ends.push(end as u64);
            }
            Ok(_) => {
                corruption = Some(format!("trailing bytes inside record at byte {pos}"));
                break;
            }
            Err(e) => {
                corruption = Some(format!("undecodable record at byte {pos}: {e}"));
                break;
            }
        }
        pos = end;
    }
    let valid_len = pos as u64;
    let dropped_frames =
        if corruption.is_some() { count_dropped_frames(&bytes, pos) } else { 0 };
    Ok(SegmentData {
        start_lsn,
        records,
        ends,
        valid_len,
        corruption,
        dropped_frames,
        dropped_bytes: total - valid_len,
        header_valid: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir() -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let d = std::env::temp_dir().join(format!(
            "mpq-wal-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).expect("create temp dir");
        d
    }

    #[test]
    fn file_name_roundtrip() {
        assert_eq!(parse_segment_file_name(&segment_file_name(0)), Some(0));
        assert_eq!(parse_segment_file_name(&segment_file_name(u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_segment_file_name("wal-12.wal"), None);
        assert_eq!(parse_segment_file_name("snap-00000000000000000001.snap"), None);
    }

    #[test]
    fn append_and_read_back() {
        let dir = temp_dir();
        let faults = Arc::new(FaultInjector::new());
        let mut w = WalWriter::create(&dir, 1, Arc::clone(&faults)).unwrap();
        w.append(1, &LogOp::CreateIndex { table: "t".into(), columns: vec![0] }).unwrap();
        w.append(2, &LogOp::CleanShutdown).unwrap();
        let seg = read_segment(w.path(), &faults).unwrap();
        assert_eq!(seg.start_lsn, 1);
        assert_eq!(seg.records.len(), 2);
        assert_eq!(seg.records[1], (2, LogOp::CleanShutdown));
        assert!(seg.corruption.is_none());
        assert_eq!(seg.dropped_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_poisons_writer_and_reader_keeps_prefix() {
        let dir = temp_dir();
        let faults = Arc::new(FaultInjector::new());
        let mut w = WalWriter::create(&dir, 1, Arc::clone(&faults)).unwrap();
        w.append(1, &LogOp::CreateIndex { table: "t".into(), columns: vec![0] }).unwrap();
        faults.set_wal_torn_write(true);
        let err = w.append(2, &LogOp::CleanShutdown).unwrap_err();
        assert!(matches!(err, EngineError::Io { .. }));
        // Fault is one-shot but the writer stays dead.
        assert!(!faults.wal_torn_write_armed());
        assert!(matches!(
            w.append(3, &LogOp::CleanShutdown),
            Err(EngineError::Io { .. })
        ));
        let seg = read_segment(w.path(), &faults).unwrap();
        assert_eq!(seg.records.len(), 1);
        assert!(seg.corruption.is_some());
        assert!(seg.dropped_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enospc_fails_typed_and_writer_survives() {
        let dir = temp_dir();
        let faults = Arc::new(FaultInjector::new());
        let mut w = WalWriter::create(&dir, 1, Arc::clone(&faults)).unwrap();
        w.append(1, &LogOp::CleanShutdown).unwrap();
        faults.set_wal_enospc(true);
        for lsn in [2, 3] {
            let err = w.append(lsn, &LogOp::CleanShutdown).unwrap_err();
            assert!(err.to_string().contains("no space left"), "got {err}");
        }
        // Space freed: the writer was never poisoned, appends resume.
        faults.set_wal_enospc(false);
        w.append(2, &LogOp::CleanShutdown).unwrap();
        let seg = read_segment(w.path(), &faults).unwrap();
        assert_eq!(seg.records.len(), 2);
        assert!(seg.corruption.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_failure_poisons_writer() {
        let dir = temp_dir();
        let faults = Arc::new(FaultInjector::new());
        let mut w = WalWriter::create(&dir, 1, Arc::clone(&faults)).unwrap();
        w.append(1, &LogOp::CleanShutdown).unwrap();
        faults.set_wal_fsync_fail(true);
        let err = w.append(2, &LogOp::CleanShutdown).unwrap_err();
        assert!(matches!(err, EngineError::Io { .. }));
        assert!(!faults.wal_fsync_fail_armed(), "one-shot consumed");
        // The unsynced tail is untrusted: the writer is dead.
        assert!(matches!(w.append(3, &LogOp::CleanShutdown), Err(EngineError::Io { .. })));
        // The record before the failed fsync is still readable.
        let seg = read_segment(w.path(), &faults).unwrap();
        assert_eq!(seg.records[0], (1, LogOp::CleanShutdown));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_succeeds_then_fails_crc_on_read() {
        let dir = temp_dir();
        let faults = Arc::new(FaultInjector::new());
        let mut w = WalWriter::create(&dir, 1, Arc::clone(&faults)).unwrap();
        faults.set_wal_bit_flip(true);
        w.append(1, &LogOp::CreateIndex { table: "t".into(), columns: vec![0] }).unwrap();
        w.append(2, &LogOp::CleanShutdown).unwrap();
        let seg = read_segment(w.path(), &faults).unwrap();
        assert!(seg.records.is_empty());
        assert!(seg.corruption.as_deref().unwrap_or("").contains("crc mismatch"));
        // The intact record after the flipped one is counted as dropped.
        assert_eq!(seg.dropped_frames, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_read_truncates_tail() {
        let dir = temp_dir();
        let faults = Arc::new(FaultInjector::new());
        let mut w = WalWriter::create(&dir, 1, Arc::clone(&faults)).unwrap();
        w.append(1, &LogOp::CleanShutdown).unwrap();
        faults.set_wal_short_read(true);
        let seg = read_segment(w.path(), &faults).unwrap();
        assert!(seg.records.is_empty());
        assert!(seg.corruption.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_file_reports_bad_header() {
        let dir = temp_dir();
        let path = dir.join(segment_file_name(1));
        std::fs::write(&path, b"definitely not a wal segment").unwrap();
        let seg = read_segment(&path, &FaultInjector::new()).unwrap();
        assert!(!seg.header_valid);
        assert!(seg.records.is_empty());
        assert_eq!(seg.valid_len, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
