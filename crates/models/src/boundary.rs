//! Boundary-based (density) clustering over the discretized grid
//! (paper §3.3, in the spirit of DBSCAN/Ester et al.).
//!
//! Cells of the attribute grid holding at least `min_pts` training rows
//! are *dense*; connected components of dense cells (adjacency: one
//! ordered dimension differs by exactly 1, all other dimensions equal)
//! form the clusters. Every non-dense cell belongs to a designated
//! *noise* cluster, keeping the model partitional as the paper requires.
//! Cluster boundaries are explicit cell sets, which is exactly what the
//! rectangle-covering envelope derivation in `mpq-core` consumes.

use crate::Classifier;
use mpq_types::{ClassId, Dataset, Member, Row, Schema, TypesError};
use std::collections::HashMap;

/// A trained boundary-based clustering model.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryClustering {
    schema: Schema,
    cluster_names: Vec<String>,
    /// Dense cell → cluster id. Cells absent from the map are noise.
    cells: HashMap<Vec<Member>, ClassId>,
    /// Id of the noise cluster (always the last).
    noise: ClassId,
}

impl BoundaryClustering {
    /// Builds the model from training data: cells with at least `min_pts`
    /// rows are dense and get grouped into connected components.
    pub fn train(data: &Dataset, min_pts: usize) -> Result<Self, TypesError> {
        if data.is_empty() {
            return Err(TypesError::ArityMismatch { expected: 1, got: 0 });
        }
        let schema = data.schema().clone();
        let mut counts: HashMap<Vec<Member>, usize> = HashMap::new();
        for row in data.rows() {
            *counts.entry(row.to_vec()).or_insert(0) += 1;
        }
        let dense: Vec<Vec<Member>> = {
            let mut v: Vec<Vec<Member>> =
                counts.into_iter().filter(|(_, c)| *c >= min_pts).map(|(cell, _)| cell).collect();
            v.sort(); // deterministic component numbering
            v
        };
        // Union-find over dense cells.
        let index: HashMap<&[Member], usize> =
            dense.iter().enumerate().map(|(i, c)| (c.as_slice(), i)).collect();
        let mut parent: Vec<usize> = (0..dense.len()).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let r = find(parent, parent[i]);
                parent[i] = r;
            }
            parent[i]
        }
        for (i, cell) in dense.iter().enumerate() {
            let mut probe = cell.clone();
            for (d, attr) in schema.iter() {
                if !attr.domain.is_ordered() {
                    continue;
                }
                let m = cell[d.index()];
                if m > 0 {
                    probe[d.index()] = m - 1;
                    if let Some(&j) = index.get(probe.as_slice()) {
                        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                        if ri != rj {
                            parent[ri] = rj;
                        }
                    }
                }
                probe[d.index()] = m; // restore
            }
        }
        // Number components in first-seen order.
        let mut comp_of_root: HashMap<usize, u16> = HashMap::new();
        let mut cells = HashMap::with_capacity(dense.len());
        for (i, cell) in dense.iter().enumerate() {
            let root = find(&mut parent, i);
            let next = comp_of_root.len() as u16;
            let comp = *comp_of_root.entry(root).or_insert(next);
            cells.insert(cell.clone(), ClassId(comp));
        }
        let k = comp_of_root.len();
        let mut cluster_names: Vec<String> = (0..k).map(|i| format!("cluster_{i}")).collect();
        cluster_names.push("noise".into());
        Ok(BoundaryClustering { schema, cluster_names, cells, noise: ClassId(k as u16) })
    }

    /// The noise cluster id.
    pub fn noise_class(&self) -> ClassId {
        self.noise
    }

    /// Iterates the dense cells belonging to cluster `c`.
    pub fn cells_of(&self, c: ClassId) -> impl Iterator<Item = &[Member]> + '_ {
        self.cells.iter().filter(move |(_, &cc)| cc == c).map(|(cell, _)| cell.as_slice())
    }

    /// Number of dense cells in the model.
    pub fn n_dense_cells(&self) -> usize {
        self.cells.len()
    }
}

impl Classifier for BoundaryClustering {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn n_classes(&self) -> usize {
        self.cluster_names.len()
    }

    fn class_name(&self, c: ClassId) -> &str {
        &self.cluster_names[c.index()]
    }

    fn predict(&self, row: &Row) -> ClassId {
        self.cells.get(row).copied().unwrap_or(self.noise)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_types::{AttrDomain, Attribute};

    fn schema2d() -> Schema {
        Schema::new(vec![
            Attribute::new("x", AttrDomain::binned(vec![1.0, 2.0, 3.0, 4.0]).unwrap()),
            Attribute::new("y", AttrDomain::binned(vec![1.0, 2.0, 3.0, 4.0]).unwrap()),
        ])
        .unwrap()
    }

    fn dataset_from_cells(cells: &[( u16, u16, usize)]) -> Dataset {
        let mut ds = Dataset::new(schema2d());
        for &(x, y, count) in cells {
            for _ in 0..count {
                ds.push_encoded(&[x, y]).unwrap();
            }
        }
        ds
    }

    #[test]
    fn two_blobs_become_two_clusters() {
        // Dense L-shape at origin, dense blob at (4,4), sparse elsewhere.
        let ds = dataset_from_cells(&[
            (0, 0, 5), (0, 1, 5), (1, 0, 5),
            (4, 4, 5), (3, 4, 5),
            (2, 2, 1), // sparse noise
        ]);
        let bc = BoundaryClustering::train(&ds, 3).unwrap();
        assert_eq!(bc.n_classes(), 3, "two clusters + noise");
        let a = bc.predict(&[0, 0]);
        let b = bc.predict(&[4, 4]);
        assert_ne!(a, b);
        assert_eq!(bc.predict(&[0, 1]), a, "adjacent dense cells share a cluster");
        assert_eq!(bc.predict(&[2, 2]), bc.noise_class());
        assert_eq!(bc.predict(&[1, 4]), bc.noise_class());
    }

    #[test]
    fn diagonal_cells_are_not_adjacent() {
        let ds = dataset_from_cells(&[(0, 0, 5), (1, 1, 5)]);
        let bc = BoundaryClustering::train(&ds, 3).unwrap();
        assert_ne!(bc.predict(&[0, 0]), bc.predict(&[1, 1]), "4-adjacency only");
    }

    #[test]
    fn min_pts_filters_sparse_cells() {
        let ds = dataset_from_cells(&[(0, 0, 2), (4, 4, 5)]);
        let bc = BoundaryClustering::train(&ds, 3).unwrap();
        assert_eq!(bc.predict(&[0, 0]), bc.noise_class());
        assert_ne!(bc.predict(&[4, 4]), bc.noise_class());
    }

    #[test]
    fn cells_of_returns_cluster_extent() {
        let ds = dataset_from_cells(&[(0, 0, 5), (0, 1, 5)]);
        let bc = BoundaryClustering::train(&ds, 3).unwrap();
        let c = bc.predict(&[0, 0]);
        let mut cells: Vec<Vec<u16>> = bc.cells_of(c).map(|s| s.to_vec()).collect();
        cells.sort();
        assert_eq!(cells, vec![vec![0, 0], vec![0, 1]]);
        assert_eq!(bc.n_dense_cells(), 2);
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let ds = Dataset::new(schema2d());
        assert!(BoundaryClustering::train(&ds, 1).is_err());
    }
}
