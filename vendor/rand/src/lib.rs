//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *exact API subset* it consumes: [`SeedableRng`],
//! [`RngExt`] (`random`, `random_range`, `random_bool`),
//! [`rngs::StdRng`], and [`prelude::IndexedRandom`]. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic, fast, and of
//! ample quality for synthetic data generation and tests. It is **not**
//! cryptographically secure, which matches how the workspace uses it.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniformly samplable types for [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value from this type's standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draws a value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                if span == u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span as u64 + 1)) as i128) as $t
            }
        }
    )*};
}
signed_int_range!(i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`]. Mirrors the method names of rand 0.10's `Rng`.
pub trait RngExt: RngCore {
    /// Draws a value from the type's standard distribution
    /// (`f64`/`f32` in `[0, 1)`, uniform integers, fair `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`. Panics on empty ranges.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded by
    /// SplitMix64, as recommended by its authors.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling (subset: [`IndexedRandom::choose`]).
pub mod seq {
    use super::RngCore;

    /// Random element selection for indexable sequences.
    pub trait IndexedRandom {
        /// Element type of the sequence.
        type Item;
        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::IndexedRandom;
    pub use super::{RngCore, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::RngExt;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let x: f64 = a.random();
            assert!((0.0..1.0).contains(&x));
            let n = a.random_range(3..17u16);
            assert!((3..17).contains(&n));
            let m = a.random_range(5..=5usize);
            assert_eq!(m, 5);
            let f = a.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(7);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
