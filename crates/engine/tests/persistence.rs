//! Durability integration tests: WAL round-trips, checkpoints, clean
//! shutdown, snapshot fallback, and recovery under injected WAL faults.

use mpq_core::DeriveOptions;
use mpq_engine::{Engine, EngineError, FaultInjector, StatementOutcome, Table};
use mpq_types::{AttrDomain, Attribute, Dataset, Schema};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "mpq-persist-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    // A stale directory from a killed earlier run would corrupt the test.
    std::fs::remove_dir_all(&d).ok();
    d
}

fn demo_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("x", AttrDomain::binned(vec![2.0, 4.0]).unwrap()),
        Attribute::new("y", AttrDomain::binned(vec![2.0, 4.0]).unwrap()),
        Attribute::new("grade", AttrDomain::categorical(["lo", "hi"])),
    ])
    .unwrap()
}

fn demo_table(name: &str) -> Table {
    let mut ds = Dataset::new(demo_schema());
    for i in 0..24u16 {
        let x = i % 3;
        let y = (i / 3) % 3;
        ds.push_encoded(&[x, y, u16::from(x == 2 && y >= 1)]).unwrap();
    }
    Table::from_dataset(name, &ds)
}

/// Builds a populated durable engine: table, rows, index, and a trained
/// decision-tree model created through SQL DDL.
fn seed_engine(dir: &PathBuf) -> Engine {
    let e = Engine::open(dir).expect("open fresh dir");
    e.create_table(demo_table("t")).unwrap();
    e.insert_rows("t", vec![vec![0, 0, 0], vec![2, 2, 1]]).unwrap();
    e.create_index("t", &[mpq_types::AttrId(0)]).unwrap();
    let out = e
        .execute_sql("CREATE MINING MODEL m ON t PREDICT grade USING decision_tree")
        .unwrap();
    assert!(matches!(out, StatementOutcome::ModelCreated { n_classes: 2, .. }));
    e
}

const QUERY: &str = "SELECT * FROM t WHERE PREDICT(m) = 'hi'";

#[test]
fn state_survives_crash_via_wal_replay() {
    let dir = temp_dir("replay");
    let e = seed_engine(&dir);
    let before = e.query(QUERY).unwrap().rows;
    assert!(!before.is_empty());
    e.simulate_crash();

    let e = Engine::open(&dir).unwrap();
    let report = e.recovery_report().unwrap().clone();
    assert_eq!(report.snapshot_lsn, 0, "no checkpoint was taken");
    assert_eq!(report.wal_records_replayed, 4, "table, insert, index, model");
    assert_eq!(report.records_dropped, 0);
    assert!(report.corruption.is_none());
    assert!(!report.clean_shutdown, "simulated crash skips the marker");
    assert_eq!(e.catalog().n_tables(), 1);
    assert_eq!(e.catalog().n_models(), 1);
    assert_eq!(e.catalog().table(0).table.n_rows(), 26);
    assert!(e.catalog().table(0).index_on(mpq_types::AttrId(0)).is_some());
    assert_eq!(e.query(QUERY).unwrap().rows, before);
}

#[test]
fn clean_shutdown_skips_replay_after_checkpoint() {
    let dir = temp_dir("clean");
    let e = seed_engine(&dir);
    let before = e.query(QUERY).unwrap().rows;
    e.checkpoint().unwrap();
    drop(e); // graceful: writes the clean-shutdown marker

    let e = Engine::open(&dir).unwrap();
    let report = e.recovery_report().unwrap().clone();
    assert!(report.clean_shutdown, "graceful exit must be visible");
    assert_eq!(report.wal_records_replayed, 0, "checkpoint absorbed everything");
    assert_eq!(report.records_dropped, 0);
    assert!(report.corruption.is_none());
    assert!(report.snapshot_lsn > 0);
    assert_eq!(e.query(QUERY).unwrap().rows, before);

    // Reopen once more without any mutation in between: still clean.
    drop(e);
    let e = Engine::open(&dir).unwrap();
    assert!(e.recovery_report().unwrap().clean_shutdown);
}

#[test]
fn checkpoint_plus_tail_replay() {
    let dir = temp_dir("tail");
    let e = seed_engine(&dir);
    e.checkpoint().unwrap();
    e.insert_rows("t", vec![vec![1, 1, 0]]).unwrap();
    e.drop_index("t", &[mpq_types::AttrId(0)]).unwrap();
    let before = e.query(QUERY).unwrap().rows;
    e.simulate_crash();

    let e = Engine::open(&dir).unwrap();
    let report = e.recovery_report().unwrap().clone();
    assert!(report.snapshot_lsn > 0);
    assert_eq!(report.wal_records_replayed, 2, "only the post-checkpoint tail");
    assert_eq!(e.catalog().table(0).table.n_rows(), 27);
    assert!(e.catalog().table(0).index_on(mpq_types::AttrId(0)).is_none());
    assert_eq!(e.query(QUERY).unwrap().rows, before);
}

#[test]
fn corrupt_newest_snapshot_falls_back_to_older() {
    let dir = temp_dir("snapfall");
    let e = seed_engine(&dir);
    e.checkpoint().unwrap();
    e.insert_rows("t", vec![vec![1, 0, 0]]).unwrap();
    let second = e.checkpoint().unwrap();
    let before = e.query(QUERY).unwrap().rows;
    e.simulate_crash();

    // Flip one payload byte in the newest snapshot: its CRC must reject it.
    let snap = dir.join(format!("snap-{second:020}.snap"));
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = 16 + (bytes.len() - 16) / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap, bytes).unwrap();

    let e = Engine::open(&dir).unwrap();
    let report = e.recovery_report().unwrap().clone();
    assert_eq!(report.snapshots_skipped, 1);
    assert!(report.corruption.is_some());
    assert!(report.snapshot_lsn < second, "recovered from the older generation");
    // The WAL suffix after the older snapshot still exists, so nothing
    // is lost: the insert is replayed instead of loaded.
    assert_eq!(e.catalog().table(0).table.n_rows(), 27);
    assert_eq!(e.query(QUERY).unwrap().rows, before);
}

#[test]
fn torn_write_rejects_mutation_and_keeps_memory_consistent() {
    let dir = temp_dir("torn");
    let e = seed_engine(&dir);
    let rows_before = e.catalog().table(0).table.n_rows();
    e.fault_injector().set_wal_torn_write(true);
    let err = e.insert_rows("t", vec![vec![0, 1, 0]]).unwrap_err();
    assert!(matches!(err, EngineError::Io { .. }));
    assert_eq!(
        e.catalog().table(0).table.n_rows(),
        rows_before,
        "failed append must not mutate memory"
    );
    // The writer is poisoned — the torn tail on disk can't be appended to.
    assert!(matches!(
        e.insert_rows("t", vec![vec![0, 1, 0]]),
        Err(EngineError::Io { .. })
    ));
    e.simulate_crash();

    let e = Engine::open(&dir).unwrap();
    let report = e.recovery_report().unwrap().clone();
    assert!(report.corruption.is_some(), "torn frame detected");
    assert!(report.bytes_dropped > 0);
    assert_eq!(report.wal_records_replayed, 4, "prefix before the tear survives");
    assert_eq!(e.catalog().table(0).table.n_rows(), rows_before);
}

#[test]
fn silent_bit_flip_caught_at_next_open() {
    let dir = temp_dir("flip");
    let e = seed_engine(&dir);
    e.fault_injector().set_wal_bit_flip(true);
    // The damaged append *succeeds* — the flip happened after the CRC.
    e.insert_rows("t", vec![vec![0, 1, 0]]).unwrap();
    e.insert_rows("t", vec![vec![1, 1, 0]]).unwrap();
    e.simulate_crash();

    let e = Engine::open(&dir).unwrap();
    let report = e.recovery_report().unwrap().clone();
    assert!(
        report.corruption.as_deref().unwrap_or("").contains("crc mismatch"),
        "report: {report}"
    );
    // Both the flipped record and the intact one after it are dropped:
    // nothing past the first bad byte is trusted.
    assert_eq!(report.records_dropped, 2);
    assert_eq!(report.wal_records_replayed, 4);
    assert_eq!(e.catalog().table(0).table.n_rows(), 26);
}

#[test]
fn short_reads_shrink_the_recovered_prefix() {
    let dir = temp_dir("short");
    let e = seed_engine(&dir);
    e.simulate_crash();

    let faults = Arc::new(FaultInjector::new());
    faults.set_wal_short_read(true);
    let e = Engine::open_with_faults(&dir, Arc::clone(&faults)).unwrap();
    let report = e.recovery_report().unwrap().clone();
    assert!(report.corruption.is_some(), "truncated tail detected");
    assert_eq!(report.wal_records_replayed, 3, "last record lost to the short read");
    assert_eq!(e.catalog().n_tables(), 1);
    assert_eq!(e.catalog().n_models(), 0, "model record was the casualty");
}

#[test]
fn transient_models_do_not_survive() {
    let dir = temp_dir("transient");
    let e = Engine::open(&dir).unwrap();
    e.create_table(demo_table("t")).unwrap();
    e.register_model("ephemeral", Arc::new(mpq_core::paper_table1_model()), DeriveOptions::default())
        .unwrap();
    assert_eq!(e.catalog().n_models(), 1);
    e.checkpoint().unwrap();
    drop(e);

    let e = Engine::open(&dir).unwrap();
    assert_eq!(e.catalog().n_tables(), 1);
    assert_eq!(e.catalog().n_models(), 0, "bare trait objects are transient");
}

#[test]
fn durable_model_registration_and_retrain_survive() {
    let dir = temp_dir("retrain");
    let e = seed_engine(&dir);
    // Reuse the DDL-trained model's serialized form as shipped PMML.
    let stored = e.catalog().model(0).stored.clone().unwrap();
    e.register_durable_model("m2", stored.clone(), DeriveOptions::default()).unwrap();
    e.retrain_durable_model("m", stored, DeriveOptions::default()).unwrap();
    assert_eq!(e.catalog().model(0).version, 2);
    e.simulate_crash();

    let e = Engine::open(&dir).unwrap();
    assert_eq!(e.catalog().n_models(), 2);
    assert!(e.catalog().model_by_name("m2").is_some());
    // The replayed retrain bumps the version just like the live one did.
    assert_eq!(e.catalog().model(0).version, 2);

    // A checkpoint collapses that history: snapshot-loaded models start
    // back at version 1 (plan caches never outlive a process anyway).
    let e = e;
    e.checkpoint().unwrap();
    drop(e);
    let e = Engine::open(&dir).unwrap();
    assert_eq!(e.catalog().model(0).version, 1);
    assert_eq!(e.catalog().n_models(), 2);
}

#[test]
fn health_and_explain_surface_recovery_status() {
    let dir = temp_dir("health");
    let e = seed_engine(&dir);
    e.simulate_crash();

    let e = Engine::open(&dir).unwrap();
    let health = e.health();
    let rec = health.recovery.as_ref().expect("durable engine reports recovery");
    assert_eq!(rec.wal_records_replayed, 4);
    let text = health.to_string();
    assert!(text.contains("recovery:"), "health text: {text}");
    assert!(text.contains("replayed=4"), "health text: {text}");

    let explain = e.query(&format!("EXPLAIN {QUERY}")).unwrap();
    assert!(explain.plan.contains("recovery:"), "explain text: {}", explain.plan);
    assert!(explain.plan.contains("snapshot lsn=0"), "explain text: {}", explain.plan);

    // In-memory engines have no recovery section.
    let mem = Engine::new(mpq_engine::Catalog::new());
    assert!(mem.health().recovery.is_none());
}

#[test]
fn checkpoint_prunes_old_generations() {
    let dir = temp_dir("prune");
    let e = seed_engine(&dir);
    for round in 0..4u16 {
        e.insert_rows("t", vec![vec![round % 3, 0, 0]]).unwrap();
        e.checkpoint().unwrap();
    }
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|f| f.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    let snaps = names.iter().filter(|n| n.ends_with(".snap")).count();
    let wals = names.iter().filter(|n| n.ends_with(".wal")).count();
    assert_eq!(snaps, 2, "two generations retained: {names:?}");
    assert!(wals <= 2, "covered segments pruned: {names:?}");
    drop(e);
    let e = Engine::open(&dir).unwrap();
    assert_eq!(e.catalog().table(0).table.n_rows(), 30);
    assert!(e.recovery_report().unwrap().clean_shutdown);
}

#[test]
fn open_on_garbage_directory_degrades_not_panics() {
    let dir = temp_dir("garbage");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("wal-00000000000000000001.wal"), b"not a wal at all").unwrap();
    std::fs::write(dir.join("snap-00000000000000000009.snap"), b"junk").unwrap();
    std::fs::write(dir.join("snap-00000000000000000009.snap.tmp"), b"leftover").unwrap();

    let e = Engine::open(&dir).unwrap();
    let report = e.recovery_report().unwrap().clone();
    assert_eq!(report.snapshots_skipped, 1);
    assert!(report.corruption.is_some());
    assert_eq!(e.catalog().n_tables(), 0);
    // The directory is usable again after the wreckage is cleared.
    e.create_table(demo_table("t")).unwrap();
    e.simulate_crash();
    let e = Engine::open(&dir).unwrap();
    assert_eq!(e.catalog().n_tables(), 1);
}

/// Satellite stress test: eight reader threads run mixed queries (point,
/// mining, COUNT, EXPLAIN — at parallelism 2, so worker pools spin up
/// under contention) against one shared engine while a writer thread
/// interleaves durable inserts with checkpoints. Nothing may deadlock,
/// no read may tear, and a crash afterwards must replay every write.
#[test]
fn concurrent_readers_and_durable_writer_stay_consistent() {
    let dir = temp_dir("stress");
    let e = seed_engine(&dir);
    e.checkpoint().unwrap();
    e.set_parallelism(2);

    const READERS: usize = 8;
    const ROUNDS: usize = 30;
    let before = e.catalog().table(0).table.n_rows();

    std::thread::scope(|s| {
        for r in 0..READERS {
            let e = &e;
            s.spawn(move || {
                let queries = [
                    QUERY,
                    "SELECT * FROM t WHERE x <= 2",
                    "SELECT COUNT(*) FROM t WHERE PREDICT(m) = 'lo' OR y > 4",
                    "EXPLAIN SELECT * FROM t WHERE PREDICT(m) = 'hi'",
                ];
                for i in 0..ROUNDS {
                    let sql = queries[(r + i) % queries.len()];
                    // Concurrent inserts legally change the row set;
                    // what must hold is that every read sees *some*
                    // consistent snapshot and never errors or hangs.
                    e.query(sql).expect(sql);
                }
            });
        }
        let e = &e;
        s.spawn(move || {
            for i in 0..ROUNDS {
                let row = vec![(i % 3) as u16, ((i / 3) % 3) as u16, (i % 2) as u16];
                e.insert_rows("t", vec![row]).expect("durable insert");
                if i % 5 == 4 {
                    e.checkpoint().expect("checkpoint under read load");
                }
            }
        });
    });

    // Every write landed, and recovery replays to the identical state.
    let total = e.catalog().table(0).table.n_rows();
    assert_eq!(total, before + ROUNDS);
    let healthy = e.query(QUERY).unwrap().rows;
    e.simulate_crash();
    let r = Engine::open(&dir).expect("reopen after crash");
    assert_eq!(r.catalog().table(0).table.n_rows(), total);
    assert_eq!(r.query(QUERY).unwrap().rows, healthy);
    std::fs::remove_dir_all(&dir).ok();
}
