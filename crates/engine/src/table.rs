//! Paged, column-major table storage.
//!
//! Tables hold encoded member indexes (`u16`) in column-major layout. A
//! simple page model drives the cost accounting the paper's experiments
//! rely on: a full scan reads every page; an unclustered index fetch
//! touches one page per *distinct* page among the matched row ids, which
//! is what makes low-selectivity index plans cheap and high-selectivity
//! ones pointless — the effect Figure 6 documents.

use crate::EngineError;
use mpq_types::{Dataset, Member, MemberSet, Schema};

/// Identifier of a row within a table.
pub type RowId = u32;

/// Default number of bytes per page.
pub const DEFAULT_PAGE_BYTES: usize = 8192;

/// Simulated on-disk bytes per column. Storage here is dictionary-
/// compressed 2-byte members, but the paper's tables held the original
/// values (strings, floats — tens of bytes per column); page accounting
/// uses this width so scans cost what they did in the paper's I/O-bound
/// setting. The optimizer's `CostModel` uses the same default.
pub const ASSUMED_COLUMN_BYTES: usize = 32;

/// A stored table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    /// Column-major cells: `columns[d][row]`.
    columns: Vec<Vec<Member>>,
    n_rows: usize,
    /// Rows per page, derived from the page byte budget and row width.
    rows_per_page: usize,
    /// Zone maps: `zones[page][d]` is the set of members present in
    /// column `d` on `page` — Moerkotte's small materialized aggregates,
    /// specialized to member-presence bitsets. A scan can skip a page
    /// whenever its compiled predicate is provably false on every
    /// member combination the zone admits.
    zones: Vec<Vec<MemberSet>>,
}

impl Table {
    /// Creates a table from an encoded dataset.
    pub fn from_dataset(name: impl Into<String>, data: &Dataset) -> Table {
        Self::with_page_bytes(name, data, DEFAULT_PAGE_BYTES)
    }

    /// Creates a table with an explicit page size in bytes.
    pub fn with_page_bytes(name: impl Into<String>, data: &Dataset, page_bytes: usize) -> Table {
        let schema = data.schema().clone();
        let n = schema.len();
        let mut columns = vec![Vec::with_capacity(data.len()); n];
        for row in data.rows() {
            for (d, &m) in row.iter().enumerate() {
                columns[d].push(m);
            }
        }
        let row_bytes = (n * ASSUMED_COLUMN_BYTES).max(1);
        let rows_per_page = (page_bytes / row_bytes).max(1);
        let n_rows = data.len();
        let zones = build_zones(&schema, &columns, n_rows, rows_per_page);
        Table { name: name.into(), schema, columns, n_rows, rows_per_page, zones }
    }

    /// Reassembles a table from its serialized parts (crash recovery).
    ///
    /// Everything is validated — the parts come straight off disk, so a
    /// corrupt (but checksum-colliding) input must surface as `Err`, not
    /// index out of bounds later: columns must be one per attribute, all
    /// the same length, and every member within its domain cardinality.
    pub fn from_encoded_parts(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Vec<Member>>,
        rows_per_page: usize,
    ) -> Result<Table, EngineError> {
        let name = name.into();
        if columns.len() != schema.len() {
            return Err(EngineError::Corrupt {
                detail: format!(
                    "table {name:?}: {} columns for {} attributes",
                    columns.len(),
                    schema.len()
                ),
            });
        }
        let n_rows = columns.first().map_or(0, Vec::len);
        if columns.iter().any(|c| c.len() != n_rows) {
            return Err(EngineError::Corrupt {
                detail: format!("table {name:?}: ragged columns"),
            });
        }
        for (d, col) in columns.iter().enumerate() {
            let card = schema.attrs()[d].domain.cardinality();
            if col.iter().any(|&m| m >= card) {
                return Err(EngineError::Corrupt {
                    detail: format!("table {name:?}: member out of range in column {d}"),
                });
            }
        }
        if rows_per_page == 0 {
            return Err(EngineError::Corrupt {
                detail: format!("table {name:?}: zero rows per page"),
            });
        }
        let zones = build_zones(&schema, &columns, n_rows, rows_per_page);
        Ok(Table { name, schema, columns, n_rows, rows_per_page, zones })
    }

    /// Appends one encoded row, validating arity and member ranges.
    /// Used by `INSERT` replay and the durable insert path; rejecting
    /// here keeps every stored cell within its domain, which the rest of
    /// the engine relies on.
    pub fn push_row(&mut self, row: &[Member]) -> Result<(), EngineError> {
        if row.len() != self.schema.len() {
            return Err(EngineError::SchemaMismatch {
                detail: format!(
                    "row has {} values, table {} has {} columns",
                    row.len(),
                    self.name,
                    self.schema.len()
                ),
            });
        }
        for (d, &m) in row.iter().enumerate() {
            if m >= self.schema.attrs()[d].domain.cardinality() {
                return Err(EngineError::BadValue(format!(
                    "member {m} out of range for column {}",
                    self.schema.attrs()[d].name
                )));
            }
        }
        let page = self.n_rows / self.rows_per_page;
        if page == self.zones.len() {
            self.zones.push(empty_zone_row(&self.schema));
        }
        for (d, &m) in row.iter().enumerate() {
            self.columns[d].push(m);
            self.zones[page][d].insert(m);
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of pages the heap occupies.
    pub fn n_pages(&self) -> usize {
        self.n_rows.div_ceil(self.rows_per_page)
    }

    /// Rows stored per page.
    pub fn rows_per_page(&self) -> usize {
        self.rows_per_page
    }

    /// The page a row lives on.
    #[inline]
    pub fn page_of(&self, row: RowId) -> usize {
        row as usize / self.rows_per_page
    }

    /// Splits the heap into page-aligned morsels for parallel scans.
    ///
    /// Every range starts on a page boundary and covers whole pages
    /// (the tail may be short), so per-worker progressive page
    /// accounting sums to exactly [`Table::n_pages`] — no page is
    /// shared between two morsels. Sizing targets at least `4 ×
    /// workers` morsels when the heap has that many pages, so the
    /// executor's atomic dispatcher can rebalance skewed per-morsel
    /// costs; smaller heaps fall back to one-page morsels.
    pub fn morsels(&self, workers: usize) -> Vec<std::ops::Range<RowId>> {
        let n = self.n_rows as RowId;
        if n == 0 {
            return Vec::new();
        }
        let workers = workers.max(1);
        let target_rows = (self.n_rows / (workers * 4)).max(1);
        let pages = (target_rows / self.rows_per_page).max(1);
        let step = pages * self.rows_per_page;
        (0..self.n_rows)
            .step_by(step)
            .map(|s| s as RowId..((s + step) as RowId).min(n))
            .collect()
    }

    /// Value of column `d` at `row`.
    #[inline]
    pub fn cell(&self, row: RowId, d: usize) -> Member {
        self.columns[d][row as usize]
    }

    /// Materializes a full row (allocates; used at result boundaries).
    pub fn row(&self, row: RowId) -> Vec<Member> {
        (0..self.schema.len()).map(|d| self.cell(row, d)).collect()
    }

    /// A whole column.
    pub fn column(&self, d: usize) -> &[Member] {
        &self.columns[d]
    }

    /// The zone map of `page`: one member-presence set per column.
    /// Never empty for a page that holds at least one row.
    pub fn page_zones(&self, page: usize) -> &[MemberSet] {
        &self.zones[page]
    }

    /// Checks that a model schema matches this table's schema (§2.2's
    /// prediction-join column mapping, simplified to name/domain
    /// equality).
    pub fn check_model_schema(&self, model_schema: &Schema) -> Result<(), EngineError> {
        if model_schema != &self.schema {
            return Err(EngineError::SchemaMismatch {
                detail: format!(
                    "model schema does not match table {} (columns differ)",
                    self.name
                ),
            });
        }
        Ok(())
    }
}

/// One empty zone entry per column of `schema`.
fn empty_zone_row(schema: &Schema) -> Vec<MemberSet> {
    schema.attrs().iter().map(|a| MemberSet::empty(a.domain.cardinality())).collect()
}

/// Builds every page's zone map from the stored columns.
fn build_zones(
    schema: &Schema,
    columns: &[Vec<Member>],
    n_rows: usize,
    rows_per_page: usize,
) -> Vec<Vec<MemberSet>> {
    let n_pages = n_rows.div_ceil(rows_per_page);
    let mut zones = Vec::with_capacity(n_pages);
    for page in 0..n_pages {
        let start = page * rows_per_page;
        let end = (start + rows_per_page).min(n_rows);
        let mut row = empty_zone_row(schema);
        for (d, zone) in row.iter_mut().enumerate() {
            for &m in &columns[d][start..end] {
                zone.insert(m);
            }
        }
        zones.push(row);
    }
    zones
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_types::{AttrDomain, Attribute};

    fn dataset() -> Dataset {
        let schema = Schema::new(vec![
            Attribute::new("a", AttrDomain::categorical(["x", "y"])),
            Attribute::new("b", AttrDomain::binned(vec![1.0]).unwrap()),
        ])
        .unwrap();
        Dataset::from_rows(schema, (0..100).map(|i| vec![(i % 2) as u16, ((i / 2) % 2) as u16]))
            .unwrap()
    }

    #[test]
    fn column_major_roundtrip() {
        let t = Table::from_dataset("t", &dataset());
        assert_eq!(t.n_rows(), 100);
        assert_eq!(t.row(3), vec![1, 1]);
        assert_eq!(t.cell(4, 0), 0);
        assert_eq!(t.column(0).len(), 100);
    }

    #[test]
    fn paging_math() {
        // 2 columns x 32 assumed bytes = 64 bytes/row -> 4 rows per
        // 256-byte page.
        let t = Table::with_page_bytes("t", &dataset(), 256);
        assert_eq!(t.rows_per_page(), 4);
        assert_eq!(t.n_pages(), 25);
        assert_eq!(t.page_of(0), 0);
        assert_eq!(t.page_of(3), 0);
        assert_eq!(t.page_of(4), 1);
        assert_eq!(t.page_of(99), 24);
    }

    #[test]
    fn morsels_partition_rows_on_page_boundaries() {
        // 4 rows/page over 100 rows = 25 pages.
        let t = Table::with_page_bytes("t", &dataset(), 256);
        for workers in [1usize, 2, 4, 8, 64] {
            let ms = t.morsels(workers);
            // A disjoint cover of 0..n_rows, in order.
            let mut next = 0;
            for m in &ms {
                assert_eq!(m.start, next, "contiguous at {workers} workers");
                assert!(m.end > m.start);
                assert_eq!(m.start as usize % t.rows_per_page(), 0, "page-aligned start");
                next = m.end;
            }
            assert_eq!(next, 100);
            if (workers * 4) <= t.n_pages() {
                assert!(ms.len() >= workers * 4, "{workers} workers got {} morsels", ms.len());
            }
        }
        // Degenerate sizes.
        let empty = Table::from_dataset("e", &Dataset::new(dataset().schema().clone()));
        assert!(empty.morsels(4).is_empty());
        assert_eq!(Table::with_page_bytes("t", &dataset(), 1 << 20).morsels(8).len(), 1);
    }

    #[test]
    fn tiny_pages_never_zero_rows() {
        let t = Table::with_page_bytes("t", &dataset(), 1);
        assert_eq!(t.rows_per_page(), 1);
        assert_eq!(t.n_pages(), 100);
    }

    #[test]
    fn zone_maps_record_page_membership() {
        // Column a alternates 0/1 per row; column b alternates per pair —
        // with 4 rows/page every page sees both members of both columns
        // except when the data is clustered, which we force below.
        let t = Table::with_page_bytes("t", &dataset(), 256);
        for page in 0..t.n_pages() {
            let z = t.page_zones(page);
            assert!(z[0].contains(0) && z[0].contains(1));
        }
        // Clustered column: zones distinguish the halves.
        let schema =
            Schema::new(vec![Attribute::new("a", AttrDomain::categorical(["x", "y"]))]).unwrap();
        let ds = Dataset::from_rows(schema, (0..100).map(|i| vec![u16::from(i >= 50)])).unwrap();
        let t = Table::with_page_bytes("t", &ds, 256); // 8 rows/page
        assert!(t.page_zones(0).iter().all(|z| z.contains(0) && !z.contains(1)));
        let last = t.n_pages() - 1;
        assert!(t.page_zones(last).iter().all(|z| z.contains(1) && !z.contains(0)));
    }

    #[test]
    fn push_row_maintains_zones() {
        let schema =
            Schema::new(vec![Attribute::new("a", AttrDomain::categorical(["x", "y", "z"]))])
                .unwrap();
        let mut t =
            Table::with_page_bytes("t", &Dataset::new(schema.clone()), ASSUMED_COLUMN_BYTES * 2);
        assert_eq!(t.rows_per_page(), 2);
        for m in [0u16, 1, 2, 2, 1] {
            t.push_row(&[m]).unwrap();
        }
        // Incrementally-maintained zones must equal a from-scratch build.
        let rebuilt = Table::from_encoded_parts(
            "t",
            schema,
            vec![t.column(0).to_vec()],
            t.rows_per_page(),
        )
        .unwrap();
        assert_eq!(t.n_pages(), 3);
        for page in 0..t.n_pages() {
            assert_eq!(t.page_zones(page), rebuilt.page_zones(page), "page {page}");
        }
        assert!(t.page_zones(0).iter().all(|z| z.contains(0) && z.contains(1) && !z.contains(2)));
        assert!(t.page_zones(2).iter().all(|z| z.contains(1) && !z.contains(0)));
    }

    #[test]
    fn model_schema_check() {
        let t = Table::from_dataset("t", &dataset());
        assert!(t.check_model_schema(t.schema()).is_ok());
        let other = Schema::new(vec![Attribute::new("z", AttrDomain::categorical(["q"]))]).unwrap();
        assert!(t.check_model_schema(&other).is_err());
    }
}
