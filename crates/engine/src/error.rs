//! Engine error type.

/// Errors surfaced by the relational engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Unknown table name.
    UnknownTable(String),
    /// Unknown mining model name.
    UnknownModel(String),
    /// Unknown column name.
    UnknownColumn(String),
    /// Unknown class label for a model.
    UnknownClass {
        /// The model referenced.
        model: String,
        /// The label that failed to resolve.
        label: String,
    },
    /// The model's schema does not match the table it is applied to.
    SchemaMismatch {
        /// Explanation.
        detail: String,
    },
    /// SQL lexing/parsing failure.
    Parse {
        /// Byte offset in the input.
        at: usize,
        /// Explanation.
        detail: String,
    },
    /// A value in SQL could not be encoded against the column domain.
    BadValue(String),
    /// Duplicate catalog object.
    Duplicate(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownTable(n) => write!(f, "unknown table {n:?}"),
            EngineError::UnknownModel(n) => write!(f, "unknown mining model {n:?}"),
            EngineError::UnknownColumn(n) => write!(f, "unknown column {n:?}"),
            EngineError::UnknownClass { model, label } => {
                write!(f, "model {model:?} has no class {label:?}")
            }
            EngineError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            EngineError::Parse { at, detail } => write!(f, "parse error at byte {at}: {detail}"),
            EngineError::BadValue(v) => write!(f, "cannot encode value: {v}"),
            EngineError::Duplicate(n) => write!(f, "catalog object {n:?} already exists"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_offender() {
        assert!(EngineError::UnknownTable("t".into()).to_string().contains("\"t\""));
        assert!(EngineError::Parse { at: 7, detail: "x".into() }.to_string().contains('7'));
        assert!(EngineError::UnknownClass { model: "m".into(), label: "l".into() }
            .to_string()
            .contains("\"l\""));
    }
}
