//! Quickstart: train a model, derive upper envelopes, and watch the
//! optimizer turn a mining predicate into an index plan.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mining_predicates::prelude::*;
use mpq_datagen::{generate_test, generate_train, table2};
use std::sync::Arc;

fn main() {
    // 1. Data: the synthetic stand-in for the paper's Shuttle dataset
    //    (7 classes, heavily skewed — ideal for envelopes).
    let spec = table2().into_iter().find(|s| s.name == "Shuttle").expect("catalog has Shuttle");
    let train = generate_train(&spec, 7);
    let test = generate_test(&spec, 7, 0.02); // 2% of the paper's 1.85M rows

    // 2. Model: a discrete naive Bayes classifier, trained from scratch.
    let nb = NaiveBayes::train(&train).expect("training data is nonempty");
    println!("trained naive Bayes: accuracy on train = {:.1}%", 100.0 * accuracy(&nb, &train));

    // 3. Derive the upper envelope of one class and print its SQL.
    let class = ClassId(2);
    let envelope = nb.envelope(class, &DeriveOptions::default());
    println!(
        "\nupper envelope of class '{}' ({} disjuncts, exact: {}):\n  WHERE {}",
        Classifier::class_name(&nb, class),
        envelope.n_disjuncts(),
        envelope.exact,
        envelope_to_sql(Classifier::schema(&nb), &envelope)
    );

    // 4. Engine: register table + model (envelopes precompute at
    //    registration), tune indexes for the envelope workload.
    let mut catalog = Catalog::new();
    catalog.add_table(Table::from_dataset("shuttle", &test)).expect("fresh catalog");
    catalog.add_model("nb", Arc::new(nb), DeriveOptions::default()).expect("fresh catalog");
    let engine = Engine::new(catalog);
    let schema = engine.catalog().table(0).table.schema().clone();
    let workload: Vec<Expr> = engine.catalog().model(0).envelopes
        .iter()
        .map(|e| mpq_engine::envelope_to_expr(&schema, e).normalize(&schema))
        .collect();
    let opts = engine.options();
    let report = tune_indexes(&mut engine.catalog_mut(), 0, &workload, 16, &opts);
    println!("\nindex tuning created {} indexes", report.created.len());

    // 5. Run the mining query with and without envelope rewriting.
    let sql = format!(
        "SELECT * FROM shuttle WHERE PREDICT(nb) = '{}'",
        train.class_names[class.index()]
    );
    println!("\nquery: {sql}\n");

    let optimized = engine.query(&sql).expect("valid query");
    println!("-- with upper envelopes --");
    println!("{}", optimized.plan);
    println!(
        "rows: {}, pages: {}, model invocations: {}, time: {:?}",
        optimized.metrics.output_rows,
        optimized.metrics.total_pages(),
        optimized.metrics.model_invocations,
        optimized.metrics.elapsed
    );

    engine.set_use_envelopes(false);
    let baseline = engine.query(&sql).expect("valid query");
    println!("\n-- black-box baseline (extract and mine) --");
    println!("{}", baseline.plan);
    println!(
        "rows: {}, pages: {}, model invocations: {}, time: {:?}",
        baseline.metrics.output_rows,
        baseline.metrics.total_pages(),
        baseline.metrics.model_invocations,
        baseline.metrics.elapsed
    );

    assert_eq!(optimized.rows, baseline.rows, "optimization must not change results");
    println!(
        "\nidentical result sets; envelope plan touched {:.1}% of the baseline's pages",
        100.0 * optimized.metrics.total_pages() as f64 / baseline.metrics.total_pages().max(1) as f64
    );
}
