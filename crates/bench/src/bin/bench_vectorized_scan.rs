//! Vectorized-scan benchmark: selection queries over a 1M-row table
//! executed by the scalar row-at-a-time reference interpreter and the
//! vectorized column-at-a-time executor, writing
//! `BENCH_vectorized_scan.json`.
//!
//! Unlike `bench_parallel_scan`, no simulated I/O stall is charged:
//! vectorization is a CPU optimization, so the honest comparison is raw
//! in-memory wall time at parallelism 1. The buckets sweep selectivity
//! (a ~0.8% point lookup, a 12.5% and a 50% IN-set on an interleaved
//! 128-member column), a DNF envelope shape (OR of ANDs mixing both
//! columns), a clustered predicate where zone maps prove most pages
//! empty, and two mining predicates: a decision tree the rewrite
//! compiles out entirely (`mining_memo`) and a two-model agreement
//! predicate — never compilable, since agreement is decided on raw
//! class ids at prediction time — served through the proxy cascade
//! (`mining_cascade`).
//!
//! The scalar leg plans with model compilation *off* — the classic
//! envelope+residual interpreter — while the vectorized leg runs the
//! compiled/cascaded plan, so the two legs double as a
//! compiled-vs-reference parity oracle: the run aborts if any bucket's
//! row sets diverge. Per-bucket `scorer_ms` attributes each leg's wall
//! time spent inside the real model scorer.
//!
//! Usage: `bench_vectorized_scan [out.json] [n_rows]` (defaults:
//! `BENCH_vectorized_scan.json`, 1,000,000 — CI smoke passes a small
//! row count).

use mpq_engine::{
    execute_opts, Catalog, Engine, ExecOptions, Expr, MiningPred, QueryGuard, StatementOutcome,
    Table,
};
use mpq_engine::{Atom, AtomPred};
use mpq_types::{AttrDomain, AttrId, Attribute, ClassId, Dataset, MemberSet, Schema};
use std::time::Instant;

const RUNS: usize = 5;
const BAND_CARD: u16 = 128;

fn band_set(members: impl IntoIterator<Item = u16>) -> AtomPred {
    AtomPred::In(MemberSet::of(BAND_CARD, members))
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_vectorized_scan.json".into());
    let n_rows: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("n_rows must be a number"))
        .unwrap_or(1_000_000);

    eprintln!("building {n_rows}-row table ...");
    let region_labels: Vec<String> = (0..8).map(|r| format!("r{r}")).collect();
    let band_domain =
        || AttrDomain::binned((1..BAND_CARD as usize).map(|b| b as f64).collect()).unwrap();
    let schema = Schema::new(vec![
        Attribute::new(
            "region",
            AttrDomain::categorical(region_labels.iter().map(String::as_str)),
        ),
        Attribute::new("band", band_domain()),
        Attribute::new("c1", band_domain()),
        Attribute::new("c2", band_domain()),
        Attribute::new("label", AttrDomain::categorical(["neg", "pos"])),
        Attribute::new("label2", AttrDomain::categorical(["neg", "pos"])),
    ])
    .expect("schema");
    let mut ds = Dataset::new(schema);
    for i in 0..n_rows {
        // `region` is clustered (contiguous eighths of the heap) so zone
        // maps have something to prove; `band` is interleaved so
        // per-band selections touch every page and measure pure
        // predicate-evaluation speed; `label` follows a deterministic
        // concept over `band`/`region` the tree model learns exactly —
        // its predicate compiles away completely (`mining_memo`).
        // `label2` is the same band concept with ~10% label noise, so
        // the two Bayes models `mb` (on label2) and `mb2` (on label)
        // learn *different* surfaces and their agreement predicate
        // (`mining_cascade`) has a non-trivial answer; `c1`/`c2` are
        // high-cardinality noise that defeats the prediction memo at
        // scale, so the scalar leg pays real per-row scorer calls.
        let region = (i * 8 / n_rows) as u16;
        let band = ((i * 37 + i / 11) % BAND_CARD as usize) as u16;
        let label = u16::from(band < 32 && region != 3);
        let c1 = ((i * 13 + 5) % BAND_CARD as usize) as u16;
        let c2 = ((i * 7 + i / 13) % BAND_CARD as usize) as u16;
        let flip = (i.wrapping_mul(2654435761) >> 7) % 10 == 0;
        let label2 = u16::from((band < 32) ^ flip);
        ds.push_encoded(&[region, band, c1, c2, label, label2]).expect("row");
    }
    let mut cat = Catalog::new();
    cat.add_table(Table::from_dataset("events", &ds)).expect("table");
    let engine = Engine::new(cat);
    for ddl in [
        "CREATE MINING MODEL m ON events PREDICT label USING decision_tree",
        "CREATE MINING MODEL mb ON events PREDICT label2 USING bayes",
        "CREATE MINING MODEL mb2 ON events PREDICT label USING bayes",
    ] {
        let out = engine.execute_sql(ddl).expect("train model");
        assert!(matches!(out, StatementOutcome::ModelCreated { .. }));
    }

    let buckets: Vec<(&str, Expr)> = vec![
        (
            "band_point",
            Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(7) }),
        ),
        (
            "band_in_16",
            Expr::Atom(Atom { attr: AttrId(1), pred: band_set(0..16) }),
        ),
        (
            "band_in_64",
            Expr::Atom(Atom { attr: AttrId(1), pred: band_set(0..64) }),
        ),
        (
            "dnf_envelope",
            Expr::Or(vec![
                Expr::And(vec![
                    Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(2) }),
                    Expr::Atom(Atom { attr: AttrId(1), pred: band_set(0..16) }),
                ]),
                Expr::And(vec![
                    Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(5) }),
                    Expr::Atom(Atom { attr: AttrId(1), pred: band_set(64..80) }),
                ]),
            ]),
        ),
        (
            "zone_clustered",
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(3) }),
        ),
        (
            "mining_memo",
            Expr::Mining(MiningPred::ClassEq { model: 0, class: ClassId(1) }),
        ),
        (
            "mining_cascade",
            Expr::Mining(MiningPred::ModelsAgree { m1: 1, m2: 2 }),
        ),
    ];

    let catalog = engine.catalog();
    let scalar_opts = ExecOptions { vectorized: false, ..ExecOptions::default() };
    let vector_opts = ExecOptions::default();
    let mut results = Vec::new();
    for (name, expr) in buckets {
        let has_mining = !expr.mining_preds().is_empty();
        // The scalar leg is the classic envelope+residual interpreter:
        // plan with model compilation off. The vectorized leg runs the
        // compiled (tree/rules) or cascaded (NB) form of the same query.
        engine.set_compile_models(false);
        let plan_ref = engine.plan_predicate(0, expr.clone());
        engine.set_compile_models(true);
        let plan = engine.plan_predicate(0, expr);

        let median = |plan: &mpq_engine::Plan, opts: &ExecOptions| {
            let mut times_ms = Vec::with_capacity(RUNS);
            let mut last = None;
            for _ in 0..RUNS {
                let t0 = Instant::now();
                let res = execute_opts(plan, &catalog, QueryGuard::unlimited(), opts)
                    .expect("unlimited scan");
                times_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                last = Some(res);
            }
            times_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            (times_ms[times_ms.len() / 2], last.expect("ran"))
        };
        let (scalar_ms, scalar) = median(&plan_ref, &scalar_opts);
        let (vector_ms, vector) = median(&plan, &vector_opts);

        // The benchmark doubles as a compiled-vs-reference parity
        // oracle: both legs must return the same rows, and when no
        // mining predicate is involved the plans are identical so every
        // deterministic metric must match too.
        assert_eq!(scalar.rows, vector.rows, "{name}: row sets diverged");
        if !has_mining {
            assert_eq!(
                scalar.metrics.pages_skipped, vector.metrics.pages_skipped,
                "{name}: zone accounting diverged"
            );
            assert_eq!(
                scalar.metrics.model_invocations, vector.metrics.model_invocations,
                "{name}: scorer accounting diverged"
            );
        }

        let m = &vector.metrics;
        // Every row the cascade decides is accounted as accept, reject
        // or band (envelope pushdown may reject rows before the mining
        // residual, so `<=`), and the scorer only ever runs on band
        // rows.
        if m.cascade_accepts + m.cascade_rejects + m.band_rows > 0 {
            assert!(
                m.cascade_accepts + m.cascade_rejects + m.band_rows <= m.rows_examined,
                "{name}: cascade decided more rows than were examined"
            );
            assert!(
                m.model_invocations <= m.band_rows,
                "{name}: scorer ran outside the uncertainty band"
            );
        }
        let scalar_scorer_ms = scalar.metrics.scorer_ns as f64 / 1e6;
        let scorer_ms = m.scorer_ns as f64 / 1e6;
        let selectivity = vector.rows.len() as f64 / n_rows as f64;
        let speedup = scalar_ms / vector_ms;
        eprintln!(
            "{name}: sel {:.4} scalar {scalar_ms:.1} ms (scorer {scalar_scorer_ms:.1} ms), \
             vectorized {vector_ms:.1} ms (scorer {scorer_ms:.1} ms) ({speedup:.2}x), \
             heap {} pages, {} skipped, {} scorer calls ({} memo hits, {} band rows)",
            selectivity, m.heap_pages_read, m.pages_skipped, m.model_invocations, m.memo_hits,
            m.band_rows
        );
        results.push(format!(
            "    {{\"bucket\": \"{name}\", \"selectivity\": {selectivity:.4}, \
             \"scalar_ms\": {scalar_ms:.3}, \"scalar_scorer_ms\": {scalar_scorer_ms:.3}, \
             \"vectorized_ms\": {vector_ms:.3}, \"scorer_ms\": {scorer_ms:.3}, \
             \"speedup\": {speedup:.3}, \"heap_pages_read\": {}, \"pages_skipped\": {}, \
             \"model_invocations\": {}, \"memo_hits\": {}, \"band_rows\": {}}}",
            m.heap_pages_read, m.pages_skipped, m.model_invocations, m.memo_hits, m.band_rows
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"vectorized_scan\",\n  \"table_rows\": {n_rows},\n  \
         \"heap_pages\": {},\n  \"parallelism\": 1,\n  \"runs_per_bucket\": {RUNS},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        catalog.table(0).table.n_pages(),
        results.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("wrote {out_path}");
}
