//! Parallel-scan benchmark: a 1M-row selection executed serially and at
//! parallelism 2/4/8, writing `BENCH_parallel_scan.json`.
//!
//! The engine's heaps are CPU-resident, so raw wall time would measure
//! memory bandwidth rather than the I/O-bound regime the paper's cost
//! model (and any disk-backed deployment) lives in. The harness
//! therefore charges the executor's simulated per-page I/O stall
//! (`ExecOptions::io_stall`, 50µs ≈ an NVMe random 8K read) in *both*
//! executors — the serial scan pays it page by page, the parallel scan
//! overlaps it across workers, exactly as real I/O queues would.
//!
//! Usage: `bench_parallel_scan [out.json]` (default
//! `BENCH_parallel_scan.json` in the current directory).

use mpq_engine::{execute_opts, Catalog, Engine, ExecOptions, Expr, QueryGuard, Table};
use mpq_engine::{Atom, AtomPred};
use mpq_types::{AttrDomain, AttrId, Attribute, Dataset, Schema};
use std::time::{Duration, Instant};

const N_ROWS: usize = 1_000_000;
const IO_STALL: Duration = Duration::from_micros(50);
const RUNS: usize = 5;
const DOPS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_parallel_scan.json".into());

    eprintln!("building {N_ROWS}-row table ...");
    let schema = Schema::new(vec![
        Attribute::new("region", AttrDomain::categorical(["n", "e", "s", "w"])),
        Attribute::new("band", AttrDomain::binned(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]).unwrap()),
    ])
    .expect("schema");
    let mut ds = Dataset::new(schema);
    for i in 0..N_ROWS {
        // Mixed so the selection is not run-length friendly.
        ds.push_encoded(&[(i % 4) as u16, ((i * 7 + i / 5) % 8) as u16]).expect("row");
    }
    let mut cat = Catalog::new();
    cat.add_table(Table::from_dataset("events", &ds)).expect("table");
    let engine = Engine::new(cat);

    // Selection with ~25% selectivity; no index exists, so the plan is
    // the full scan + residual the morsel executor partitions.
    let pred = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(2) });
    let plan = engine.plan_predicate(0, pred);
    let catalog = engine.catalog();

    let mut baseline: Option<(Vec<u32>, f64)> = None;
    let mut results = Vec::new();
    for dop in DOPS {
        let opts =
            ExecOptions { parallelism: dop, io_stall: Some(IO_STALL), ..ExecOptions::default() };
        let mut times_ms = Vec::with_capacity(RUNS);
        let mut rows = Vec::new();
        let mut pages = 0;
        for _ in 0..RUNS {
            let t0 = Instant::now();
            let res = execute_opts(&plan, &catalog, QueryGuard::unlimited(), &opts)
                .expect("unlimited scan");
            times_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            pages = res.metrics.total_pages();
            rows = res.rows;
        }
        times_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = times_ms[times_ms.len() / 2];
        let speedup = match &baseline {
            None => {
                baseline = Some((rows.clone(), median));
                1.0
            }
            Some((serial_rows, serial_ms)) => {
                // The benchmark is also an oracle: row sets must agree.
                assert_eq!(&rows, serial_rows, "parallel row set diverged at dop {dop}");
                serial_ms / median
            }
        };
        eprintln!(
            "dop {dop}: median {median:.1} ms over {pages} pages ({} hits), speedup {speedup:.2}x",
            rows.len()
        );
        let runs = times_ms.iter().map(|t| format!("{t:.3}")).collect::<Vec<_>>().join(", ");
        results.push(format!(
            "    {{\"parallelism\": {dop}, \"median_ms\": {median:.3}, \"speedup\": {speedup:.3}, \"runs_ms\": [{runs}]}}"
        ));
    }

    let (serial_rows, _) = baseline.expect("serial leg ran");
    let json = format!(
        "{{\n  \"benchmark\": \"parallel_scan\",\n  \"table_rows\": {N_ROWS},\n  \
         \"heap_pages\": {},\n  \"io_stall_us_per_page\": {},\n  \"selectivity\": {:.4},\n  \
         \"runs_per_dop\": {RUNS},\n  \"results\": [\n{}\n  ]\n}}\n",
        catalog.table(0).table.n_pages(),
        IO_STALL.as_micros(),
        serial_rows.len() as f64 / N_ROWS as f64,
        results.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("wrote {out_path}");
}
