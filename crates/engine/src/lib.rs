//! # mpq-engine
//!
//! A compact relational engine purpose-built to reproduce the evaluation
//! of *"Efficient Evaluation of Queries with Mining Predicates"* (ICDE
//! 2002): paged column storage, exact member histograms, secondary
//! indexes, a cost-based access-path optimizer (full scan / index seek /
//! multi-index union / constant scan), an executor that counts pages,
//! rows and black-box model invocations, the §4.2 mining-predicate
//! rewriter, a SQL surface with a `PREDICT(model)` pseudo-function, an
//! index-tuning-wizard-lite, and a version-checked plan cache.
//!
//! The intended flow mirrors the paper:
//!
//! 1. register tables ([`Table`], [`Catalog::add_table`]);
//! 2. register trained models — envelopes are precomputed per class at
//!    registration ([`Engine::register_model`]);
//! 3. optionally run the tuner over a workload ([`tune_indexes`]);
//! 4. issue queries with mining predicates ([`Engine::query`]); the
//!    optimizer ANDs in upper envelopes and picks an access path, while
//!    the executor keeps the original mining predicate as an exact
//!    residual filter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod compile;
mod ddl;
mod dedup;
mod display;
mod engine;
mod error;
mod exec;
mod expr;
mod fault;
mod guard;
mod index;
mod optimizer;
mod persist;
mod rewrite;
mod session;
mod sql;
mod stats;
mod subscribe;
mod table;
mod tuner;
mod vectorized;

pub use catalog::{Catalog, ModelEntry, TableEntry};
pub use dedup::{DedupCheck, DedupLimits, DedupOutcome, StatementDedup};
pub use display::{expr_to_sql, plan_to_string};
pub use ddl::{create_model, labeled_view, ProjectedModel};
pub use engine::{Engine, EngineHealth, ModelHealth, NotifySink, QueryOutcome, StatementOutcome};
pub use error::{EngineError, GuardResource};
pub use exec::{execute, execute_guarded, execute_opts, ExecMetrics, ExecOptions, ExecResult};
pub use fault::FaultInjector;
pub use guard::{GuardHeadroom, QueryGuard};
pub use expr::{envelope_to_expr, region_to_expr, Atom, AtomPred, Expr, MiningPred, ModelId, ModelOracle};
pub use index::SecondaryIndex;
pub use optimizer::{
    choose_plan, estimate_selectivity, estimate_selectivity_with_feedback, AccessPath,
    CostModel, OptimizerOptions, Plan,
};
pub use persist::replicate::{decode_stream, encode_stream, ReplBatch, ReplRole, ReplStatus};
pub use persist::{LogOp, RecoveryReport, StatementId, StoredModel};
pub use rewrite::{envelope_expr_for, rewrite_mining, rewrite_mining_opts};
pub use session::SessionState;
pub use sql::{parse, parse_statement, ModelAlgorithm, ParsedQuery, Statement};
pub use stats::{ColumnStats, FeedbackStore, TableStats};
pub use subscribe::{MatchEvent, MatchMetrics, Subscription};
pub use table::{RowId, Table, ASSUMED_COLUMN_BYTES, DEFAULT_PAGE_BYTES};
pub use tuner::{tune_indexes, TuningReport};
pub use vectorized::{CompiledPredicate, FeedbackObservation, DEFAULT_MEMO_CAPACITY};
