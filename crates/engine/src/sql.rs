//! A small SQL surface for mining queries.
//!
//! Queries take the shape the paper's examples use, with prediction joins
//! flattened into a `PREDICT(model)` pseudo-function (the model's schema
//! must match the table's, which is what a `PREDICTION JOIN ... ON`
//! column mapping establishes in §2.2):
//!
//! ```sql
//! SELECT * FROM customers WHERE PREDICT(risk_model) = 'low' AND age > 30
//! SELECT COUNT(*) FROM t WHERE PREDICT(m1) = PREDICT(m2)
//! SELECT * FROM t WHERE PREDICT(m) IN ('a', 'b') OR NOT (x BETWEEN 1 AND 3)
//! EXPLAIN SELECT * FROM t WHERE PREDICT(m) = age_class
//! ```
//!
//! Value comparisons are compiled to member space: on binned columns the
//! constants snap to bin boundaries (envelope-generated SQL always uses
//! exact cut points, so its round-trip is lossless).

use crate::catalog::Catalog;
use crate::expr::{Atom, AtomPred, Expr, MiningPred};
use crate::EngineError;
use mpq_types::{AttrDomain, AttrId, MemberSet, Schema, Value};

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    /// Catalog id of the table in FROM.
    pub table: usize,
    /// The WHERE predicate (TRUE when absent).
    pub predicate: Expr,
    /// Was `EXPLAIN` requested?
    pub explain: bool,
    /// `SELECT COUNT(*)` instead of `SELECT *`.
    pub count_only: bool,
}

/// The training algorithm named in a `CREATE MINING MODEL` statement
/// (§2.2's `USING [Decision_Trees_101]` clause, with this engine's
/// algorithm names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelAlgorithm {
    /// Entropy-split binary decision tree.
    DecisionTree,
    /// Discrete naive Bayes.
    NaiveBayes,
    /// Sequential-covering rule set.
    Rules,
    /// k-prototypes centroid clustering (needs a cluster count).
    KMeans,
    /// Diagonal Gaussian mixture via EM (needs a cluster count).
    Gmm,
}

/// A parsed statement: a query, or DDL.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `[EXPLAIN] SELECT ...`.
    Select(ParsedQuery),
    /// `CREATE MINING MODEL <name> ON <table> PREDICT <col> USING <alg>`
    /// (classification) or
    /// `CREATE MINING MODEL <name> ON <table> WITH <k> CLUSTERS USING
    /// <alg>` (clustering). Training happens at execution; envelopes are
    /// derived at registration, as §4.2 prescribes.
    CreateModel {
        /// New model name.
        name: String,
        /// Training table (catalog id).
        table: usize,
        /// Label column for classification; `None` for clustering.
        label: Option<mpq_types::AttrId>,
        /// Cluster count for clustering algorithms.
        clusters: Option<usize>,
        /// The algorithm.
        algorithm: ModelAlgorithm,
    },
    /// `INSERT INTO <table> VALUES (v, ...), (v, ...)`: appends rows.
    /// Each literal resolves against its column's domain exactly as a
    /// WHERE comparison would (strings on categorical columns, numbers
    /// snapped into bins on binned columns), so arity and domain errors
    /// are rejected at parse time, before anything is logged.
    Insert {
        /// Target table (catalog id).
        table: usize,
        /// Rows in member space, one entry per schema column.
        rows: Vec<Vec<mpq_types::Member>>,
    },
    /// `SET PARALLELISM <n>`: the session knob for the degree of
    /// parallelism query execution uses (1 = serial).
    SetParallelism(usize),
    /// `SET ADAPTIVE {ON|OFF}`: the session knob for adaptive predicate
    /// evaluation (runtime DNF reordering + factoring + feedback). OFF
    /// restores the fixed compile-time evaluation order exactly.
    SetAdaptive(bool),
    /// `SET GUARD <ROWS|PAGES|MODEL_CALLS|TIME_MS> <n>`: replaces one
    /// budget of the session's query guard (`n = 0` lifts that budget).
    SetGuard {
        /// Which budget to replace.
        resource: crate::error::GuardResource,
        /// The new limit; `None` (spelled `0`) means unlimited.
        limit: Option<u64>,
    },
    /// `SET GUARD OFF`: clears every budget (the unlimited guard).
    SetGuardOff,
    /// `SUBSCRIBE SELECT ...`: registers the query as a standing
    /// subscription — every subsequently inserted row matching its
    /// predicate is pushed to the subscriber. `sql` keeps the inner
    /// query's verbatim text for durable registration (the WAL logs the
    /// text and re-parses it at replay, so recovery sees the same
    /// predicate the subscriber registered).
    Subscribe {
        /// The parsed inner query (validated against the catalog).
        query: ParsedQuery,
        /// The inner query's raw SQL text.
        sql: String,
    },
    /// `UNSUBSCRIBE <id>`: removes a standing subscription.
    Unsubscribe {
        /// The subscription id returned by `SUBSCRIBE`.
        id: u64,
    },
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(f64),
    Sym(&'static str), // ( ) , = < > <= >= <> *
}

fn lex(input: &str) -> Result<Vec<(usize, Tok)>, EngineError> {
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | ',' | '*' | '=' => {
                out.push((i, Tok::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '*' => "*",
                    _ => "=",
                })));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Sym("<=")));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push((i, Tok::Sym("<>")));
                    i += 2;
                } else {
                    out.push((i, Tok::Sym("<")));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Sym(">=")));
                    i += 2;
                } else {
                    out.push((i, Tok::Sym(">")));
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                        None => {
                            return Err(EngineError::Parse {
                                at: start,
                                detail: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                out.push((start, Tok::Str(s)));
            }
            c if c.is_ascii_digit() || c == '-' || c == '.' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || bytes[i] == b'-'
                        || bytes[i] == b'+')
                {
                    // Allow exponent syntax; `-`/`+` only right after e/E.
                    if (bytes[i] == b'-' || bytes[i] == b'+')
                        && !(bytes[i - 1] == b'e' || bytes[i - 1] == b'E')
                    {
                        break;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                let n: f64 = text.parse().map_err(|_| EngineError::Parse {
                    at: start,
                    detail: format!("bad number {text:?}"),
                })?;
                out.push((start, Tok::Num(n)));
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '[' => {
                let start = i;
                if c == '[' {
                    i += 1;
                    let mut s = String::new();
                    while i < bytes.len() && bytes[i] != b']' {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                    if i == bytes.len() {
                        return Err(EngineError::Parse {
                            at: start,
                            detail: "unterminated [identifier]".into(),
                        });
                    }
                    i += 1;
                    out.push((start, Tok::Ident(s)));
                } else {
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    out.push((start, Tok::Ident(input[start..i].to_string())));
                }
            }
            other => {
                return Err(EngineError::Parse { at: i, detail: format!("unexpected {other:?}") })
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    catalog: &'a Catalog,
    schema: Option<Schema>,
    table: Option<usize>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.toks.get(self.pos).map_or(usize::MAX, |(i, _)| *i)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, detail: impl Into<String>) -> EngineError {
        EngineError::Parse { at: self.at().min(1_000_000), detail: detail.into() }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), EngineError> {
        match self.bump() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.err(format!("expected {kw}, got {other:?}"))),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), EngineError> {
        match self.bump() {
            Some(Tok::Sym(s)) if s == sym => Ok(()),
            other => Err(self.err(format!("expected {sym:?}, got {other:?}"))),
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn schema(&self) -> &Schema {
        // Invariant-backed: the grammar resolves FROM (which sets
        // self.schema) before any production that consults the schema.
        self.schema.as_ref().expect("FROM parsed before WHERE")
    }

    fn statement(&mut self) -> Result<Statement, EngineError> {
        if self.eat_kw("CREATE") {
            return self.create_model();
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("SET") {
            return self.set_statement();
        }
        if self.eat_kw("UNSUBSCRIBE") {
            let id = match self.bump() {
                Some(Tok::Num(n)) if n >= 0.0 && n.fract() == 0.0 => n as u64,
                other => {
                    return Err(
                        self.err(format!("expected a subscription id, got {other:?}"))
                    )
                }
            };
            self.expect_end()?;
            return Ok(Statement::Unsubscribe { id });
        }
        Ok(Statement::Select(self.query()?))
    }

    fn set_statement(&mut self) -> Result<Statement, EngineError> {
        if self.eat_kw("GUARD") {
            return self.set_guard();
        }
        if self.eat_kw("ADAPTIVE") {
            let on = if self.eat_kw("ON") {
                true
            } else if self.eat_kw("OFF") {
                false
            } else {
                return Err(self.err("SET ADAPTIVE expects ON or OFF".to_string()));
            };
            self.expect_end()?;
            return Ok(Statement::SetAdaptive(on));
        }
        self.expect_kw("PARALLELISM")?;
        let dop = match self.bump() {
            Some(Tok::Num(n)) if n >= 1.0 && n.fract() == 0.0 => n as usize,
            other => {
                return Err(self.err(format!(
                    "expected a positive integer degree of parallelism, got {other:?}"
                )))
            }
        };
        self.expect_end()?;
        Ok(Statement::SetParallelism(dop))
    }

    fn set_guard(&mut self) -> Result<Statement, EngineError> {
        use crate::error::GuardResource;
        if self.eat_kw("OFF") {
            self.expect_end()?;
            return Ok(Statement::SetGuardOff);
        }
        let resource = match self.bump() {
            Some(Tok::Ident(s)) => match s.to_ascii_uppercase().as_str() {
                "ROWS" => GuardResource::RowsExamined,
                "PAGES" => GuardResource::PagesRead,
                "MODEL_CALLS" => GuardResource::ModelInvocations,
                "TIME_MS" => GuardResource::WallClock,
                other => {
                    return Err(self.err(format!(
                        "unknown guard resource {other:?} (expected ROWS, PAGES, \
                         MODEL_CALLS, TIME_MS or OFF)"
                    )))
                }
            },
            other => return Err(self.err(format!("expected a guard resource, got {other:?}"))),
        };
        let limit = match self.bump() {
            Some(Tok::Num(n)) if n >= 0.0 && n.fract() == 0.0 => {
                // 0 lifts the budget: "no limit" needs a spelling and a
                // zero-row/zero-page budget would reject every query.
                (n > 0.0).then_some(n as u64)
            }
            other => {
                return Err(self.err(format!(
                    "expected a non-negative integer limit (0 = unlimited), got {other:?}"
                )))
            }
        };
        self.expect_end()?;
        Ok(Statement::SetGuard { resource, limit })
    }

    fn insert(&mut self) -> Result<Statement, EngineError> {
        self.expect_kw("INTO")?;
        let table_name = match self.bump() {
            Some(Tok::Ident(s)) => s,
            other => return Err(self.err(format!("expected table name, got {other:?}"))),
        };
        let table = self
            .catalog
            .table_by_name(&table_name)
            .ok_or(EngineError::UnknownTable(table_name))?;
        self.table = Some(table);
        self.schema = Some(self.catalog.table(table).table.schema().clone());
        self.expect_kw("VALUES")?;
        let n_cols = self.schema().len();
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::with_capacity(n_cols);
            for d in 0..n_cols {
                if d > 0 {
                    self.expect_sym(",")?;
                }
                row.push(self.value_member(AttrId(d as u16), Snap::Exact)?);
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_end()?;
        Ok(Statement::Insert { table, rows })
    }

    fn expect_end(&mut self) -> Result<(), EngineError> {
        if self.pos != self.toks.len() {
            return Err(self.err("trailing input after statement"));
        }
        Ok(())
    }

    fn create_model(&mut self) -> Result<Statement, EngineError> {
        self.expect_kw("MINING")?;
        self.expect_kw("MODEL")?;
        let name = match self.bump() {
            Some(Tok::Ident(s)) => s,
            other => return Err(self.err(format!("expected model name, got {other:?}"))),
        };
        self.expect_kw("ON")?;
        let table_name = match self.bump() {
            Some(Tok::Ident(s)) => s,
            other => return Err(self.err(format!("expected table name, got {other:?}"))),
        };
        let table = self
            .catalog
            .table_by_name(&table_name)
            .ok_or(EngineError::UnknownTable(table_name))?;
        let schema = self.catalog.table(table).table.schema().clone();

        let (label, clusters) = if self.eat_kw("PREDICT") {
            let col = match self.bump() {
                Some(Tok::Ident(s)) => s,
                other => return Err(self.err(format!("expected label column, got {other:?}"))),
            };
            let attr =
                schema.attr_by_name(&col).ok_or(EngineError::UnknownColumn(col))?;
            (Some(attr), None)
        } else if self.eat_kw("WITH") {
            let k = match self.bump() {
                Some(Tok::Num(n)) if n >= 1.0 && n.fract() == 0.0 => n as usize,
                other => return Err(self.err(format!("expected cluster count, got {other:?}"))),
            };
            self.expect_kw("CLUSTERS")?;
            (None, Some(k))
        } else {
            return Err(self.err("expected PREDICT <column> or WITH <k> CLUSTERS"));
        };

        self.expect_kw("USING")?;
        let algorithm = match self.bump() {
            Some(Tok::Ident(s)) => match s.to_ascii_uppercase().as_str() {
                "DECISION_TREE" | "TREE" => ModelAlgorithm::DecisionTree,
                "NAIVE_BAYES" | "BAYES" => ModelAlgorithm::NaiveBayes,
                "RULES" => ModelAlgorithm::Rules,
                "KMEANS" => ModelAlgorithm::KMeans,
                "GMM" => ModelAlgorithm::Gmm,
                other => return Err(self.err(format!("unknown algorithm {other:?}"))),
            },
            other => return Err(self.err(format!("expected algorithm, got {other:?}"))),
        };
        // Classification needs a label; clustering needs a count.
        match algorithm {
            ModelAlgorithm::KMeans | ModelAlgorithm::Gmm if clusters.is_none() => {
                return Err(self.err("clustering algorithms need WITH <k> CLUSTERS"))
            }
            ModelAlgorithm::DecisionTree | ModelAlgorithm::NaiveBayes | ModelAlgorithm::Rules
                if label.is_none() =>
            {
                return Err(self.err("classification algorithms need PREDICT <column>"))
            }
            _ => {}
        }
        if self.pos != self.toks.len() {
            return Err(self.err("trailing input after statement"));
        }
        Ok(Statement::CreateModel { name, table, label, clusters, algorithm })
    }

    fn query(&mut self) -> Result<ParsedQuery, EngineError> {
        let explain = self.eat_kw("EXPLAIN");
        self.expect_kw("SELECT")?;
        let count_only = if self.eat_kw("COUNT") {
            self.expect_sym("(")?;
            self.expect_sym("*")?;
            self.expect_sym(")")?;
            true
        } else {
            self.expect_sym("*")?;
            false
        };
        self.expect_kw("FROM")?;
        let table_name = match self.bump() {
            Some(Tok::Ident(s)) => s,
            other => return Err(self.err(format!("expected table name, got {other:?}"))),
        };
        let table = self
            .catalog
            .table_by_name(&table_name)
            .ok_or(EngineError::UnknownTable(table_name))?;
        self.table = Some(table);
        self.schema = Some(self.catalog.table(table).table.schema().clone());
        let predicate = if self.eat_kw("WHERE") { self.or_expr()? } else { Expr::Const(true) };
        if self.pos != self.toks.len() {
            return Err(self.err("trailing input after query"));
        }
        Ok(ParsedQuery { table, predicate, explain, count_only })
    }

    fn or_expr(&mut self) -> Result<Expr, EngineError> {
        let mut parts = vec![self.and_expr()?];
        while self.eat_kw("OR") {
            parts.push(self.and_expr()?);
        }
        Ok(Expr::or(parts))
    }

    fn and_expr(&mut self) -> Result<Expr, EngineError> {
        let mut parts = vec![self.unary()?];
        while self.eat_kw("AND") {
            parts.push(self.unary()?);
        }
        Ok(Expr::and(parts))
    }

    fn unary(&mut self) -> Result<Expr, EngineError> {
        if self.eat_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        if self.eat_sym("(") {
            let e = self.or_expr()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr, EngineError> {
        if self.eat_kw("PREDICT") {
            return self.mining_predicate();
        }
        let col_name = match self.bump() {
            Some(Tok::Ident(s)) => s,
            other => return Err(self.err(format!("expected column, got {other:?}"))),
        };
        let attr = self
            .schema()
            .attr_by_name(&col_name)
            .ok_or(EngineError::UnknownColumn(col_name.clone()))?;
        self.column_predicate(attr)
    }

    fn mining_predicate(&mut self) -> Result<Expr, EngineError> {
        self.expect_sym("(")?;
        let model_name = match self.bump() {
            Some(Tok::Ident(s)) => s,
            other => return Err(self.err(format!("expected model name, got {other:?}"))),
        };
        let model = self
            .catalog
            .model_by_name(&model_name)
            .ok_or(EngineError::UnknownModel(model_name))?;
        self.expect_sym(")")?;
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut classes = Vec::new();
            loop {
                match self.bump() {
                    Some(Tok::Str(label)) => {
                        classes.push(self.catalog.resolve_class(model, &label)?)
                    }
                    other => return Err(self.err(format!("expected class label, got {other:?}"))),
                }
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Expr::Mining(MiningPred::ClassIn { model, classes }));
        }
        let negate = if self.eat_sym("<>") {
            true
        } else {
            self.expect_sym("=")?;
            false
        };
        let inner = match self.bump() {
            Some(Tok::Str(label)) => {
                let class = self.catalog.resolve_class(model, &label)?;
                Expr::Mining(MiningPred::ClassEq { model, class })
            }
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("PREDICT") => {
                self.expect_sym("(")?;
                let m2_name = match self.bump() {
                    Some(Tok::Ident(s)) => s,
                    other => return Err(self.err(format!("expected model name, got {other:?}"))),
                };
                let m2 = self
                    .catalog
                    .model_by_name(&m2_name)
                    .ok_or(EngineError::UnknownModel(m2_name))?;
                self.expect_sym(")")?;
                Expr::Mining(MiningPred::ModelsAgree { m1: model, m2 })
            }
            Some(Tok::Ident(col)) => {
                let attr = self
                    .schema()
                    .attr_by_name(&col)
                    .ok_or(EngineError::UnknownColumn(col))?;
                Expr::Mining(MiningPred::ClassEqColumn { model, column: attr })
            }
            other => return Err(self.err(format!("expected class/column/PREDICT, got {other:?}"))),
        };
        Ok(if negate { Expr::Not(Box::new(inner)) } else { inner })
    }

    fn column_predicate(&mut self, attr: AttrId) -> Result<Expr, EngineError> {
        let card = self.schema().attr(attr).domain.cardinality();
        if self.eat_kw("BETWEEN") {
            let lo = self.value_member(attr, Snap::GeInclusiveLow)?;
            self.expect_kw("AND")?;
            let hi = self.value_member(attr, Snap::LeInclusiveHigh)?;
            return Ok(Expr::Atom(Atom { attr, pred: AtomPred::Range { lo, hi } }));
        }
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut set = MemberSet::empty(card);
            loop {
                set.insert(self.value_member(attr, Snap::Exact)?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Expr::Atom(Atom { attr, pred: AtomPred::In(set) }));
        }
        let op = match self.bump() {
            Some(Tok::Sym(s)) => s,
            other => return Err(self.err(format!("expected comparison, got {other:?}"))),
        };
        let pred = match op {
            "=" => AtomPred::Eq(self.value_member(attr, Snap::Exact)?),
            "<>" => {
                let m = self.value_member(attr, Snap::Exact)?;
                let mut s = MemberSet::full(card);
                s.remove(m);
                AtomPred::In(s)
            }
            "<=" | "<" => {
                let m = self.value_member(attr, Snap::LeInclusiveHigh)?;
                AtomPred::Range { lo: 0, hi: m }
            }
            ">" => {
                let m = self.value_member(attr, Snap::GtExclusiveLow)?;
                AtomPred::Range { lo: m, hi: card - 1 }
            }
            ">=" => {
                let m = self.value_member(attr, Snap::GeInclusiveLow)?;
                AtomPred::Range { lo: m, hi: card - 1 }
            }
            other => return Err(self.err(format!("unsupported operator {other:?}"))),
        };
        Ok(Expr::Atom(Atom { attr, pred }))
    }

    /// Resolves a literal to a member index.
    fn value_member(&mut self, attr: AttrId, snap: Snap) -> Result<u16, EngineError> {
        let domain = self.schema().attr(attr).domain.clone();
        match (self.bump(), &domain) {
            (Some(Tok::Str(s)), AttrDomain::Categorical { .. }) => domain
                .encode(&Value::Str(s.clone()))
                .map_err(|e| EngineError::BadValue(e.to_string())),
            (Some(Tok::Num(x)), AttrDomain::Binned { cuts }) => {
                let m = domain.encode(&Value::Num(x)).map_err(|e| EngineError::BadValue(e.to_string()))?;
                Ok(match snap {
                    Snap::Exact | Snap::LeInclusiveHigh | Snap::GeInclusiveLow => m,
                    // `col > c` where c is exactly the upper cut of bin m
                    // starts at the *next* bin (encode puts cut values in
                    // the bin they close: cuts[m-1] < x <= cuts[m]); for
                    // non-cut constants the bin containing c still has
                    // values above c, so it stays included.
                    Snap::GtExclusiveLow => {
                        if cuts.get(m as usize).copied() == Some(x) {
                            m + 1
                        } else {
                            m
                        }
                    }
                })
            }
            (Some(t), _) => Err(self.err(format!("literal {t:?} does not fit column domain"))),
            (None, _) => Err(self.err("expected literal")),
        }
    }
}

/// Snapping mode for numeric literals against bin boundaries.
#[derive(Clone, Copy)]
enum Snap {
    Exact,
    LeInclusiveHigh,
    GeInclusiveLow,
    GtExclusiveLow,
}

/// Parses one query against the catalog.
pub fn parse(input: &str, catalog: &Catalog) -> Result<ParsedQuery, EngineError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0, catalog, schema: None, table: None };
    p.query()
}

/// Parses one statement (query or DDL) against the catalog.
pub fn parse_statement(input: &str, catalog: &Catalog) -> Result<Statement, EngineError> {
    let toks = lex(input)?;
    // `SUBSCRIBE <query>` is handled here rather than in the token
    // parser because the subscription must keep the inner query's
    // *verbatim text* (for durable WAL registration) — the byte offset
    // of the second token slices it out of `input` exactly.
    if let Some((_, Tok::Ident(kw))) = toks.first() {
        if kw.eq_ignore_ascii_case("SUBSCRIBE") {
            let Some(&(start, _)) = toks.get(1) else {
                return Err(EngineError::Parse {
                    at: input.len(),
                    detail: "expected a query after SUBSCRIBE".into(),
                });
            };
            let sql = input[start..].trim().to_string();
            let mut p = Parser { toks, pos: 1, catalog, schema: None, table: None };
            let query = p.query()?;
            if query.explain || query.count_only {
                return Err(EngineError::Parse {
                    at: start,
                    detail: "SUBSCRIBE takes a plain SELECT * query (no EXPLAIN or \
                             COUNT(*))"
                        .into(),
                });
            }
            return Ok(Statement::Subscribe { query, sql });
        }
    }
    let mut p = Parser { toks, pos: 0, catalog, schema: None, table: None };
    p.statement()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use mpq_core::{paper_table1_model, DeriveOptions};
    use mpq_types::{Attribute, ClassId, Dataset};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Attribute::new("age", AttrDomain::binned(vec![30.0, 63.0]).unwrap()),
            Attribute::new("color", AttrDomain::categorical(["red", "green", "blue"])),
        ])
        .unwrap();
        let ds = Dataset::from_rows(schema, vec![vec![0, 0], vec![1, 1], vec![2, 2]]).unwrap();
        let mut cat = Catalog::new();
        cat.add_table(Table::from_dataset("people", &ds)).unwrap();
        // A model over the Table-1 schema, registered under "m" (not
        // applied to `people` in these parse tests).
        cat.add_model("m", Arc::new(paper_table1_model()), DeriveOptions::default()).unwrap();
        cat
    }

    #[test]
    fn parses_set_parallelism() {
        let cat = catalog();
        assert_eq!(
            parse_statement("SET PARALLELISM 4", &cat).unwrap(),
            Statement::SetParallelism(4)
        );
        assert_eq!(
            parse_statement("set parallelism 1", &cat).unwrap(),
            Statement::SetParallelism(1)
        );
        // Zero, fractional, missing, and trailing input all reject.
        assert!(parse_statement("SET PARALLELISM 0", &cat).is_err());
        assert!(parse_statement("SET PARALLELISM 2.5", &cat).is_err());
        assert!(parse_statement("SET PARALLELISM", &cat).is_err());
        assert!(parse_statement("SET PARALLELISM 2 4", &cat).is_err());
        assert!(parse_statement("SET SOMETHING 2", &cat).is_err());
    }

    #[test]
    fn parses_set_adaptive() {
        let cat = catalog();
        assert_eq!(
            parse_statement("SET ADAPTIVE ON", &cat).unwrap(),
            Statement::SetAdaptive(true)
        );
        assert_eq!(
            parse_statement("set adaptive off", &cat).unwrap(),
            Statement::SetAdaptive(false)
        );
        assert!(parse_statement("SET ADAPTIVE", &cat).is_err());
        assert!(parse_statement("SET ADAPTIVE MAYBE", &cat).is_err());
        assert!(parse_statement("SET ADAPTIVE ON OFF", &cat).is_err());
    }

    #[test]
    fn parses_insert() {
        let cat = catalog();
        // 40 falls in bin (30, 63] = member 1; 70 in (63, inf) = member 2.
        let s =
            parse_statement("INSERT INTO people VALUES (40, 'red'), (70, 'blue')", &cat).unwrap();
        assert_eq!(s, Statement::Insert { table: 0, rows: vec![vec![1, 0], vec![2, 2]] });
        // Arity, domain, table, and trailing-input errors reject at parse.
        assert!(parse_statement("INSERT INTO people VALUES (40)", &cat).is_err());
        assert!(parse_statement("INSERT INTO people VALUES ('red', 40)", &cat).is_err());
        assert!(parse_statement("INSERT INTO people VALUES (40, 'mauve')", &cat).is_err());
        assert!(parse_statement("INSERT INTO nope VALUES (40, 'red')", &cat).is_err());
        assert!(parse_statement("INSERT INTO people VALUES (40, 'red') x", &cat).is_err());
        assert!(parse_statement("INSERT INTO people VALUES", &cat).is_err());
    }

    #[test]
    fn parses_select_star() {
        let cat = catalog();
        let q = parse("SELECT * FROM people", &cat).unwrap();
        assert_eq!(q.predicate, Expr::Const(true));
        assert!(!q.explain && !q.count_only);
        let q = parse("explain select count(*) from PEOPLE where age > 30", &cat).unwrap();
        assert!(q.explain && q.count_only);
    }

    #[test]
    fn numeric_comparisons_snap_to_bins() {
        let cat = catalog();
        // age <= 63 covers bins 0..=1; age > 63 covers bin 2 only; age >
        // 30 covers bins 1..=2.
        let q = parse("SELECT * FROM people WHERE age <= 63", &cat).unwrap();
        assert_eq!(
            q.predicate,
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Range { lo: 0, hi: 1 } })
        );
        let q = parse("SELECT * FROM people WHERE age > 63", &cat).unwrap();
        assert_eq!(
            q.predicate,
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Range { lo: 2, hi: 2 } })
        );
        let q = parse("SELECT * FROM people WHERE age > 30", &cat).unwrap();
        assert_eq!(
            q.predicate,
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Range { lo: 1, hi: 2 } })
        );
        // Non-cut constant: bin containing 40 is (30, 63] = member 1;
        // `> 40` conservatively keeps member 1.
        let q = parse("SELECT * FROM people WHERE age > 40", &cat).unwrap();
        assert_eq!(
            q.predicate,
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Range { lo: 1, hi: 2 } })
        );
    }

    #[test]
    fn string_equality_and_in() {
        let cat = catalog();
        let q = parse("SELECT * FROM people WHERE color = 'green'", &cat).unwrap();
        assert_eq!(q.predicate, Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(1) }));
        let q = parse("SELECT * FROM people WHERE color IN ('red', 'blue')", &cat).unwrap();
        assert_eq!(
            q.predicate,
            Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::In(MemberSet::of(3, [0, 2])) })
        );
        let q = parse("SELECT * FROM people WHERE color <> 'red'", &cat).unwrap();
        assert_eq!(
            q.predicate,
            Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::In(MemberSet::of(3, [1, 2])) })
        );
    }

    #[test]
    fn between_and_boolean_structure() {
        let cat = catalog();
        let q = parse(
            "SELECT * FROM people WHERE age BETWEEN 30 AND 63 OR NOT (color = 'red' AND age > 63)",
            &cat,
        )
        .unwrap();
        match &q.predicate {
            Expr::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Expr::Not(_)));
            }
            other => panic!("expected OR, got {other:?}"),
        }
    }

    #[test]
    fn mining_predicates_parse() {
        let cat = catalog();
        let q = parse("SELECT * FROM people WHERE PREDICT(m) = 'c2'", &cat).unwrap();
        assert_eq!(
            q.predicate,
            Expr::Mining(MiningPred::ClassEq { model: 0, class: ClassId(1) })
        );
        let q = parse("SELECT * FROM people WHERE PREDICT(m) IN ('c1', 'c3')", &cat).unwrap();
        assert_eq!(
            q.predicate,
            Expr::Mining(MiningPred::ClassIn { model: 0, classes: vec![ClassId(0), ClassId(2)] })
        );
        let q = parse("SELECT * FROM people WHERE PREDICT(m) = PREDICT(m)", &cat).unwrap();
        assert_eq!(q.predicate, Expr::Mining(MiningPred::ModelsAgree { m1: 0, m2: 0 }));
        let q = parse("SELECT * FROM people WHERE PREDICT(m) = color", &cat).unwrap();
        assert_eq!(
            q.predicate,
            Expr::Mining(MiningPred::ClassEqColumn { model: 0, column: AttrId(1) })
        );
        let q = parse("SELECT * FROM people WHERE PREDICT(m) <> 'c1'", &cat).unwrap();
        assert!(matches!(q.predicate, Expr::Not(_)));
    }

    #[test]
    fn errors_are_specific() {
        let cat = catalog();
        assert!(matches!(
            parse("SELECT * FROM nope", &cat),
            Err(EngineError::UnknownTable(_))
        ));
        assert!(matches!(
            parse("SELECT * FROM people WHERE ghost = 1", &cat),
            Err(EngineError::UnknownColumn(_))
        ));
        assert!(matches!(
            parse("SELECT * FROM people WHERE PREDICT(ghost) = 'x'", &cat),
            Err(EngineError::UnknownModel(_))
        ));
        assert!(matches!(
            parse("SELECT * FROM people WHERE PREDICT(m) = 'zz'", &cat),
            Err(EngineError::UnknownClass { .. })
        ));
        assert!(matches!(
            parse("SELECT * FROM people WHERE color = 'mauve'", &cat),
            Err(EngineError::BadValue(_))
        ));
        assert!(matches!(
            parse("SELECT * FROM people WHERE age = 'green'", &cat),
            Err(EngineError::Parse { .. })
        ));
        assert!(matches!(
            parse("SELECT * FROM people WHERE age > 1 trailing", &cat),
            Err(EngineError::Parse { .. })
        ));
        assert!(matches!(
            parse("SELECT * FROM people WHERE color = 'unclosed", &cat),
            Err(EngineError::Parse { .. })
        ));
    }

    #[test]
    fn bracketed_identifiers() {
        let cat = catalog();
        let q = parse("SELECT * FROM [people] WHERE [age] > 63", &cat).unwrap();
        assert_eq!(q.table, 0);
    }

    #[test]
    fn parses_subscribe_and_unsubscribe() {
        let cat = catalog();
        let s = parse_statement(
            "SUBSCRIBE SELECT * FROM people WHERE PREDICT(m) = 'c2'",
            &cat,
        )
        .unwrap();
        match s {
            Statement::Subscribe { query, sql } => {
                assert_eq!(query.table, 0);
                assert_eq!(sql, "SELECT * FROM people WHERE PREDICT(m) = 'c2'");
                assert!(!query.explain && !query.count_only);
            }
            other => panic!("expected Subscribe, got {other:?}"),
        }
        // Keyword is case-insensitive; the captured text is verbatim.
        let s = parse_statement("subscribe select * from people", &cat).unwrap();
        assert!(matches!(
            s,
            Statement::Subscribe { ref sql, .. } if sql == "select * from people"
        ));
        assert_eq!(
            parse_statement("UNSUBSCRIBE 7", &cat).unwrap(),
            Statement::Unsubscribe { id: 7 }
        );
        // EXPLAIN / COUNT(*) / malformed forms reject at parse.
        assert!(parse_statement("SUBSCRIBE EXPLAIN SELECT * FROM people", &cat).is_err());
        assert!(parse_statement("SUBSCRIBE SELECT COUNT(*) FROM people", &cat).is_err());
        assert!(parse_statement("SUBSCRIBE", &cat).is_err());
        assert!(parse_statement("UNSUBSCRIBE", &cat).is_err());
        assert!(parse_statement("UNSUBSCRIBE 1.5", &cat).is_err());
        assert!(parse_statement("UNSUBSCRIBE 7 trailing", &cat).is_err());
    }
}
