//! The Table 2 dataset catalog.

/// Shape of one attribute in a dataset spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrSpec {
    /// Unordered categorical attribute with `card` members.
    Cat {
        /// Member count.
        card: u16,
    },
    /// Continuous attribute discretized into `bins` ordered bins.
    Bin {
        /// Bin count.
        bins: u16,
    },
}

/// How labels relate to attributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConceptKind {
    /// Class-conditional attribute distributions with the given prior
    /// skew exponent (larger → more skew, i.e. more low-selectivity
    /// classes). The workhorse for most datasets.
    Synthetic {
        /// Zipf-like skew exponent for class priors.
        skew: f64,
        /// Separation of class-conditional distributions (higher →
        /// more learnable).
        separation: f64,
        /// Fraction of attributes that carry class signal (dataset-level
        /// informative attributes; the rest are near-uninformative).
        informative: f64,
    },
    /// Class = parity of the five even-indexed binary attributes
    /// (the UCI `Parity5+5` concept: 5 relevant + 5 irrelevant bits).
    Parity,
    /// Class = sign of `left_w·left_d − right_w·right_d` over four
    /// 5-member ordinal attributes (UCI `Balance-Scale`).
    BalanceScale,
}

/// One row of Table 2 plus the schema/concept shape used to synthesize
/// the data.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Training rows (Table 2's "Training size").
    pub train_size: usize,
    /// Test rows in millions (Table 2's "Test size in millions").
    pub test_rows_millions: f64,
    /// Number of classification classes.
    pub n_classes: usize,
    /// Number of clusters the paper's clustering models use.
    pub n_clusters: usize,
    /// Attribute shapes.
    pub attrs: Vec<AttrSpec>,
    /// Label concept.
    pub concept: ConceptKind,
}

impl DatasetSpec {
    /// Target test-set row count at full scale.
    pub fn test_rows(&self) -> usize {
        (self.test_rows_millions * 1_000_000.0) as usize
    }

    /// True when every attribute is ordered — centroid/model-based
    /// clustering applies; mixed/categorical datasets use boundary-based
    /// clustering instead (§3.3 offers all three).
    pub fn all_ordered(&self) -> bool {
        self.attrs.iter().all(|a| matches!(a, AttrSpec::Bin { .. }))
    }
}

/// The ten datasets of Table 2. Attribute counts are trimmed relative to
/// the originals (envelope derivation scales linearly in dimensions; the
/// experiments' phenomena need domain shape, not all 38 Anneal columns),
/// but cardinalities, class counts and sizes follow the sources.
pub fn table2() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "Anneal-U",
            train_size: 598,
            test_rows_millions: 1.83,
            n_classes: 6,
            n_clusters: 6,
            attrs: vec![
                AttrSpec::Cat { card: 4 },
                AttrSpec::Cat { card: 3 },
                AttrSpec::Cat { card: 5 },
                AttrSpec::Cat { card: 3 },
                AttrSpec::Bin { bins: 6 },
                AttrSpec::Bin { bins: 6 },
                AttrSpec::Bin { bins: 8 },
                AttrSpec::Cat { card: 2 },
                AttrSpec::Cat { card: 2 },
                AttrSpec::Bin { bins: 5 },
            ],
            concept: ConceptKind::Synthetic { skew: 1.2, separation: 3.5, informative: 0.4 },
        },
        DatasetSpec {
            name: "Balance-Scale",
            train_size: 416,
            test_rows_millions: 1.28,
            n_classes: 3,
            n_clusters: 5,
            attrs: vec![
                AttrSpec::Bin { bins: 5 },
                AttrSpec::Bin { bins: 5 },
                AttrSpec::Bin { bins: 5 },
                AttrSpec::Bin { bins: 5 },
            ],
            concept: ConceptKind::BalanceScale,
        },
        DatasetSpec {
            name: "Chess",
            train_size: 2130,
            test_rows_millions: 1.63,
            n_classes: 2,
            n_clusters: 5,
            attrs: (0..12)
                .map(|i| AttrSpec::Cat { card: if i == 5 { 3 } else { 2 } })
                .collect(),
            concept: ConceptKind::Synthetic { skew: 0.3, separation: 2.8, informative: 0.4 },
        },
        DatasetSpec {
            name: "Diabetes",
            train_size: 512,
            test_rows_millions: 1.57,
            n_classes: 2,
            n_clusters: 5,
            attrs: vec![AttrSpec::Bin { bins: 5 }; 8],
            concept: ConceptKind::Synthetic { skew: 0.6, separation: 2.8, informative: 0.4 },
        },
        DatasetSpec {
            name: "Hypothyroid",
            train_size: 1339,
            test_rows_millions: 1.78,
            n_classes: 2,
            n_clusters: 5,
            attrs: vec![
                AttrSpec::Cat { card: 2 },
                AttrSpec::Cat { card: 2 },
                AttrSpec::Cat { card: 2 },
                AttrSpec::Cat { card: 2 },
                AttrSpec::Bin { bins: 8 },
                AttrSpec::Bin { bins: 8 },
                AttrSpec::Bin { bins: 8 },
                AttrSpec::Bin { bins: 6 },
                AttrSpec::Cat { card: 2 },
                AttrSpec::Bin { bins: 6 },
            ],
            // The real set is ~95% negative: strong skew (priors ∝
            // 1/k^4.5 give ≈ 96/4 over two classes).
            concept: ConceptKind::Synthetic { skew: 4.5, separation: 3.2, informative: 0.35 },
        },
        DatasetSpec {
            name: "Letter",
            train_size: 15000,
            test_rows_millions: 1.28,
            n_classes: 26,
            n_clusters: 26,
            attrs: vec![AttrSpec::Bin { bins: 5 }; 16],
            concept: ConceptKind::Synthetic { skew: 0.2, separation: 5.0, informative: 0.4 },
        },
        DatasetSpec {
            name: "Parity5+5",
            train_size: 100,
            test_rows_millions: 1.04,
            n_classes: 2,
            n_clusters: 5,
            attrs: vec![AttrSpec::Cat { card: 2 }; 10],
            concept: ConceptKind::Parity,
        },
        DatasetSpec {
            name: "Shuttle",
            train_size: 43500,
            test_rows_millions: 1.85,
            n_classes: 7,
            n_clusters: 7,
            attrs: vec![AttrSpec::Bin { bins: 5 }; 9],
            // ~80% of the real Shuttle rows are class 1.
            concept: ConceptKind::Synthetic { skew: 2.6, separation: 4.5, informative: 0.45 },
        },
        DatasetSpec {
            name: "Vehicle",
            train_size: 564,
            test_rows_millions: 1.73,
            n_classes: 4,
            n_clusters: 5,
            attrs: vec![AttrSpec::Bin { bins: 5 }; 12],
            concept: ConceptKind::Synthetic { skew: 0.3, separation: 3.5, informative: 0.4 },
        },
        DatasetSpec {
            name: "Kdd-cup-99",
            train_size: 100_000,
            test_rows_millions: 4.72,
            n_classes: 23,
            n_clusters: 23,
            attrs: {
                let mut v = vec![
                    AttrSpec::Cat { card: 3 },  // protocol
                    AttrSpec::Cat { card: 10 }, // service (trimmed)
                    AttrSpec::Cat { card: 5 },  // flag (trimmed)
                ];
                v.extend(std::iter::repeat_n(AttrSpec::Bin { bins: 5 }, 13));
                v
            },
            // smurf + neptune + normal dominate the real data.
            concept: ConceptKind::Synthetic { skew: 2.8, separation: 5.0, informative: 0.4 },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_ten_datasets_with_paper_sizes() {
        let specs = table2();
        assert_eq!(specs.len(), 10);
        let by_name = |n: &str| specs.iter().find(|s| s.name == n).expect("present");
        assert_eq!(by_name("Letter").n_classes, 26);
        assert_eq!(by_name("Letter").train_size, 15000);
        assert_eq!(by_name("Kdd-cup-99").test_rows(), 4_720_000);
        assert_eq!(by_name("Parity5+5").train_size, 100);
        assert_eq!(by_name("Shuttle").n_clusters, 7);
        assert_eq!(by_name("Chess").n_classes, 2);
    }

    #[test]
    fn orderedness_classification() {
        let specs = table2();
        let by_name = |n: &str| specs.iter().find(|s| s.name == n).expect("present");
        assert!(by_name("Letter").all_ordered());
        assert!(by_name("Balance-Scale").all_ordered());
        assert!(!by_name("Chess").all_ordered());
        assert!(!by_name("Anneal-U").all_ordered());
    }

    #[test]
    fn names_are_unique() {
        let specs = table2();
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }
}
