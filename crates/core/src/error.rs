//! Error type for envelope derivation.

/// Errors raised by derivation entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Full enumeration was requested on a grid exceeding the cell
    /// budget (the paper's ">24 hours" failure mode, refused up front).
    GridTooLarge {
        /// Cells the grid holds.
        cells: u64,
        /// Configured limit.
        limit: u64,
    },
    /// The model references a class id outside its range.
    UnknownClass {
        /// Offending class index.
        class: u16,
        /// Number of classes the model has.
        n_classes: usize,
    },
    /// Top-down derivation exceeded its wall-clock budget
    /// ([`crate::DeriveOptions::time_budget`]) — the paper's "did not
    /// complete in 24 hours" failure mode, surfaced instead of hung.
    /// Callers degrade to the trivial `TRUE` envelope, which is sound.
    DeriveTimeout {
        /// The budget that was exceeded.
        budget: std::time::Duration,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::GridTooLarge { cells, limit } => write!(
                f,
                "grid has {cells} cells, exceeding the enumeration limit of {limit}; \
                 use the top-down derivation instead"
            ),
            CoreError::UnknownClass { class, n_classes } => {
                write!(f, "class {class} out of range for a {n_classes}-class model")
            }
            CoreError::DeriveTimeout { budget } => {
                write!(f, "envelope derivation exceeded its time budget of {budget:?}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::GridTooLarge { cells: 100, limit: 10 };
        assert!(e.to_string().contains("100") && e.to_string().contains("10"));
        let e = CoreError::UnknownClass { class: 9, n_classes: 3 };
        assert!(e.to_string().contains('9'));
    }
}
