//! Runs the whole §5 evaluation in one sweep and writes the results as
//! markdown under `results/`, one file per table/figure, each with the
//! paper's reported numbers alongside.

use mpq_bench::report::{
    avg_page_reduction_by_kind, avg_reduction_by_kind, kind_name, plan_change_by_dataset,
    plan_change_by_kind, reduction_by_selectivity_bucket, tightness_points,
};
use mpq_bench::{run_full_sweep, ModelKind, Scale};
use std::fmt::Write as _;
use std::path::Path;

fn main() {
    let scale = Scale::from_args(0.02);
    let out_dir = Path::new("results");
    std::fs::create_dir_all(out_dir).expect("create results dir");
    eprintln!("running full sweep at scale {} ...", scale.0);
    let (rows, timings) = run_full_sweep(scale, 7);
    eprintln!("sweep done: {} query measurements", rows.len());

    // ------------------------------------------------------------------
    // §5.2.1 inline tables
    // ------------------------------------------------------------------
    let mut md = String::from("# §5.2.1 — running time and plan impact\n\n");
    writeln!(md, "Scale: {} of the paper's test sizes; seed 7.\n", scale.0).unwrap();
    md.push_str("## Average reduction in running time vs full scan\n\n");
    md.push_str(
        "Pages is the scale-free analogue of the paper's I/O-bound running\n\
         time; wall-clock at reduced `--scale` is CPU-noise-dominated.\n\n",
    );
    md.push_str("| Model | measured (wall) | measured (pages) | paper (time) |\n|---|---|---|---|\n");
    let paper_red = [73.7, 63.5, 79.0];
    let pages = avg_page_reduction_by_kind(&rows);
    for (((kind, v), (_, pv)), p) in
        avg_reduction_by_kind(&rows).into_iter().zip(pages).zip(paper_red)
    {
        writeln!(md, "| {} | {v:.1}% | {pv:.1}% | {p}% |", kind_name(kind)).unwrap();
    }
    md.push_str("\n## Queries whose physical plan changed\n\n");
    md.push_str("| Model | measured | paper |\n|---|---|---|\n");
    let paper_pc = [72.7, 75.3, 76.6];
    for ((kind, v), p) in plan_change_by_kind(&rows).into_iter().zip(paper_pc) {
        writeln!(md, "| {} | {v:.1}% | {p}% |", kind_name(kind)).unwrap();
    }
    std::fs::write(out_dir.join("sec521_tables.md"), &md).expect("write results");

    // ------------------------------------------------------------------
    // Figures 3-5
    // ------------------------------------------------------------------
    let mut md = String::from("# Figures 3–5 — % plan changed per dataset\n\n");
    for (kind, fig) in [
        (ModelKind::Tree, "Figure 3 (decision tree)"),
        (ModelKind::NaiveBayes, "Figure 4 (naive Bayes)"),
        (ModelKind::Clustering, "Figure 5 (clustering)"),
    ] {
        writeln!(md, "## {fig}\n").unwrap();
        md.push_str("| dataset | % plan changed |\n|---|---|\n");
        for (ds, pct) in plan_change_by_dataset(&rows, kind) {
            writeln!(md, "| {ds} | {pct:.1}% |").unwrap();
        }
        md.push('\n');
    }
    std::fs::write(out_dir.join("figures_3_4_5_plan_change.md"), &md).expect("write results");

    // ------------------------------------------------------------------
    // Figure 6
    // ------------------------------------------------------------------
    let mut md = String::from(
        "# Figure 6 — improvement vs selectivity (page-count reduction)\n\n",
    );
    for (title, by_env) in
        [("Original class selectivity", false), ("Upper-envelope selectivity", true)]
    {
        writeln!(md, "## {title}\n").unwrap();
        md.push_str("| bucket | queries | avg page reduction |\n|---|---|---|\n");
        for (bucket, n, avg) in reduction_by_selectivity_bucket(&rows, by_env) {
            writeln!(md, "| {bucket} | {n} | {avg:.1}% |").unwrap();
        }
        md.push('\n');
    }
    std::fs::write(out_dir.join("figure_6_selectivity.md"), &md).expect("write results");

    // ------------------------------------------------------------------
    // Figure 7
    // ------------------------------------------------------------------
    let mut md = String::from(
        "# Figure 7 — tightness of approximation (naive Bayes & clustering)\n\n\
         | dataset | model | class | original sel | envelope sel | exact |\n|---|---|---|---|---|---|\n",
    );
    for p in tightness_points(&rows) {
        writeln!(
            md,
            "| {} | {} | {} | {:.6} | {:.6} | {} |",
            p.dataset,
            kind_name(p.kind),
            p.class,
            p.orig_selectivity,
            p.env_selectivity,
            p.exact
        )
        .unwrap();
    }
    std::fs::write(out_dir.join("figure_7_tightness.md"), &md).expect("write results");

    // ------------------------------------------------------------------
    // Experiment (iii): timings
    // ------------------------------------------------------------------
    let mut md = String::from(
        "# §5 experiment (iii) — envelope precomputation time\n\n\
         | dataset | model | train | derive | derive/train |\n|---|---|---|---|---|\n",
    );
    for t in &timings {
        writeln!(
            md,
            "| {} | {} | {:.2?} | {:.2?} | {:.3} |",
            t.dataset,
            kind_name(t.kind),
            t.train_time,
            t.derive_time,
            t.derive_time.as_secs_f64() / t.train_time.as_secs_f64().max(1e-9)
        )
        .unwrap();
    }
    std::fs::write(out_dir.join("experiment_iii_timing.md"), &md).expect("write results");

    // Console summary.
    println!("wrote results/sec521_tables.md");
    println!("wrote results/figures_3_4_5_plan_change.md");
    println!("wrote results/figure_6_selectivity.md");
    println!("wrote results/figure_7_tightness.md");
    println!("wrote results/experiment_iii_timing.md");
    println!("\nsummary:");
    for (kind, v) in avg_reduction_by_kind(&rows) {
        println!("  avg runtime reduction, {}: {v:.1}%", kind_name(kind));
    }
    for (kind, v) in avg_page_reduction_by_kind(&rows) {
        println!("  avg page reduction, {}: {v:.1}%", kind_name(kind));
    }
    for (kind, v) in plan_change_by_kind(&rows) {
        println!("  plan changed, {}: {v:.1}%", kind_name(kind));
    }
}
