//! Cooperative query-execution guards.
//!
//! A [`QueryGuard`] bounds how much work a single query may perform:
//! wall-clock time, rows examined, pages read, and black-box model
//! invocations. The executor checks the guard cooperatively at row and
//! page granularity; a breach aborts the query with
//! [`crate::EngineError::BudgetExceeded`] — the engine never returns a
//! silently truncated row set.
//!
//! The guard exists because envelope-based plans can mis-estimate badly
//! when an envelope is loose (or degraded to `TRUE`): the optimizer may
//! pick an index union that touches far more pages than estimated. A
//! guard converts "runaway query" into a typed, retryable error.

use std::time::{Duration, Instant};

use crate::error::{EngineError, GuardResource};
use crate::exec::ExecMetrics;

/// Resource budgets for one query execution. `None` means unlimited.
///
/// ```
/// use mpq_engine::QueryGuard;
/// use std::time::Duration;
///
/// let guard = QueryGuard::default()
///     .with_deadline(Duration::from_millis(50))
///     .with_max_rows_examined(10_000)
///     .with_max_pages(1_000)
///     .with_max_model_invocations(10_000);
/// assert_eq!(guard.max_pages, Some(1_000));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryGuard {
    /// Wall-clock budget for the whole execution.
    pub deadline: Option<Duration>,
    /// Maximum rows fetched and tested against the residual predicate.
    pub max_rows_examined: Option<u64>,
    /// Maximum heap + index pages read.
    pub max_pages: Option<u64>,
    /// Maximum black-box model applications.
    pub max_model_invocations: Option<u64>,
}

impl QueryGuard {
    /// A guard with every budget unlimited (same as `Default`).
    pub fn unlimited() -> QueryGuard {
        QueryGuard::default()
    }

    /// Sets the wall-clock budget.
    pub fn with_deadline(mut self, deadline: Duration) -> QueryGuard {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the examined-rows budget.
    pub fn with_max_rows_examined(mut self, rows: u64) -> QueryGuard {
        self.max_rows_examined = Some(rows);
        self
    }

    /// Sets the pages-read budget (heap + index).
    pub fn with_max_pages(mut self, pages: u64) -> QueryGuard {
        self.max_pages = Some(pages);
        self
    }

    /// Sets the model-invocation budget.
    pub fn with_max_model_invocations(mut self, n: u64) -> QueryGuard {
        self.max_model_invocations = Some(n);
        self
    }

    /// True when no budget is configured at all.
    pub fn is_unlimited(&self) -> bool {
        *self == QueryGuard::default()
    }
}

/// How much budget was left when a query finished; recorded in
/// [`ExecMetrics::guard`]. `None` means the corresponding budget was
/// unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardHeadroom {
    /// Rows-examined budget remaining.
    pub rows_remaining: Option<u64>,
    /// Pages budget remaining.
    pub pages_remaining: Option<u64>,
    /// Model-invocation budget remaining.
    pub model_invocations_remaining: Option<u64>,
    /// Wall-clock budget remaining, in milliseconds.
    pub time_remaining_ms: Option<u64>,
}

/// Live guard state for one execution: the configured budgets plus the
/// start instant for deadline checks.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GuardState {
    guard: QueryGuard,
    started: Instant,
}

impl GuardState {
    pub(crate) fn new(guard: QueryGuard) -> GuardState {
        GuardState { guard, started: Instant::now() }
    }

    /// Checks every configured budget against the metrics so far.
    pub(crate) fn check(&self, m: &ExecMetrics) -> Result<(), EngineError> {
        let g = &self.guard;
        if let Some(limit) = g.max_rows_examined {
            if m.rows_examined > limit {
                return Err(EngineError::BudgetExceeded {
                    resource: GuardResource::RowsExamined,
                    spent: m.rows_examined,
                    limit,
                });
            }
        }
        if let Some(limit) = g.max_pages {
            let spent = m.heap_pages_read + m.index_pages_read;
            if spent > limit {
                return Err(EngineError::BudgetExceeded {
                    resource: GuardResource::PagesRead,
                    spent,
                    limit,
                });
            }
        }
        if let Some(limit) = g.max_model_invocations {
            if m.model_invocations > limit {
                return Err(EngineError::BudgetExceeded {
                    resource: GuardResource::ModelInvocations,
                    spent: m.model_invocations,
                    limit,
                });
            }
        }
        if let Some(budget) = g.deadline {
            let elapsed = self.started.elapsed();
            if elapsed > budget {
                return Err(EngineError::BudgetExceeded {
                    resource: GuardResource::WallClock,
                    spent: elapsed.as_millis() as u64,
                    limit: budget.as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    /// Headroom left at end of execution.
    pub(crate) fn headroom(&self, m: &ExecMetrics) -> GuardHeadroom {
        let g = &self.guard;
        GuardHeadroom {
            rows_remaining: g
                .max_rows_examined
                .map(|l| l.saturating_sub(m.rows_examined)),
            pages_remaining: g
                .max_pages
                .map(|l| l.saturating_sub(m.heap_pages_read + m.index_pages_read)),
            model_invocations_remaining: g
                .max_model_invocations
                .map(|l| l.saturating_sub(m.model_invocations)),
            time_remaining_ms: g.deadline.map(|d| {
                d.saturating_sub(self.started.elapsed()).as_millis() as u64
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let st = GuardState::new(QueryGuard::unlimited());
        let m = ExecMetrics {
            rows_examined: u64::MAX,
            heap_pages_read: u64::MAX / 2,
            index_pages_read: 17,
            model_invocations: u64::MAX,
            ..ExecMetrics::default()
        };
        assert!(st.check(&m).is_ok());
        assert_eq!(st.headroom(&m), GuardHeadroom::default());
    }

    #[test]
    fn row_budget_trips_with_spent_and_limit() {
        let st = GuardState::new(QueryGuard::default().with_max_rows_examined(10));
        let mut m = ExecMetrics { rows_examined: 10, ..ExecMetrics::default() };
        assert!(st.check(&m).is_ok(), "at the limit is still fine");
        m.rows_examined = 11;
        match st.check(&m) {
            Err(EngineError::BudgetExceeded { resource, spent, limit }) => {
                assert_eq!(resource, GuardResource::RowsExamined);
                assert_eq!((spent, limit), (11, 10));
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn page_budget_counts_heap_plus_index() {
        let st = GuardState::new(QueryGuard::default().with_max_pages(5));
        let m = ExecMetrics {
            heap_pages_read: 3,
            index_pages_read: 3,
            ..ExecMetrics::default()
        };
        match st.check(&m) {
            Err(EngineError::BudgetExceeded { resource, spent, limit }) => {
                assert_eq!(resource, GuardResource::PagesRead);
                assert_eq!((spent, limit), (6, 5));
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn zero_deadline_trips() {
        let st = GuardState::new(QueryGuard::default().with_deadline(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(1));
        let m = ExecMetrics::default();
        match st.check(&m) {
            Err(EngineError::BudgetExceeded { resource, .. }) => {
                assert_eq!(resource, GuardResource::WallClock);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn headroom_reports_remaining() {
        let st = GuardState::new(
            QueryGuard::default().with_max_rows_examined(100).with_max_pages(50),
        );
        let m = ExecMetrics {
            rows_examined: 40,
            heap_pages_read: 10,
            index_pages_read: 5,
            ..ExecMetrics::default()
        };
        let h = st.headroom(&m);
        assert_eq!(h.rows_remaining, Some(60));
        assert_eq!(h.pages_remaining, Some(35));
        assert_eq!(h.model_invocations_remaining, None);
    }
}
