//! Compilation oracle: when the rewrite compiles a model out of the
//! query (every envelope it would AND in is exact), the compiled
//! pure-data-predicate plan must be observationally identical to the
//! classic envelope+residual reference — same row sets, same rows
//! examined, same page accounting, same guard-breach classification —
//! at every degree of parallelism, with `model_invocations == 0` by
//! construction for fully compiled plans.

use mining_predicates::prelude::*;
use mpq_engine::{execute_opts, Atom, AtomPred, ExecOptions, StatementOutcome};
use mpq_types::MemberSet;
use proptest::prelude::*;

const DOPS: [usize; 4] = [1, 2, 4, 8];

/// The reference interpreter: compilation off, scalar row-at-a-time,
/// serial — the classic envelope+residual form of the same query.
fn reference_opts() -> ExecOptions {
    ExecOptions { parallelism: 1, vectorized: false, ..ExecOptions::default() }
}

/// Two feature columns plus the label column the models train on.
fn schema() -> Schema {
    Schema::new(vec![
        Attribute::new("a", AttrDomain::categorical(["a0", "a1", "a2", "a3"])),
        Attribute::new("b", AttrDomain::categorical(["b0", "b1", "b2"])),
        Attribute::new("label", AttrDomain::categorical(["neg", "pos"])),
    ])
    .unwrap()
}

/// Builds an engine over the generated rows with tiny (256-byte) pages
/// and trains the two exactly-compilable model families: a decision
/// tree (envelopes always exact) and a rule set (exact when no
/// cross-class rule overlap exists). `indexed` controls whether the
/// access-path optimizer has index seeks available — the metric-parity
/// assertions need the index-free full-scan-only world, where both
/// plans must touch the identical pages.
fn engine_with_models(extra: &[(u16, u16)], indexed: bool) -> Engine {
    let mut ds = Dataset::new(schema());
    for a in 0..4u16 {
        for b in 0..3u16 {
            let label = u16::from(a >= 2 && b != 1);
            ds.push_encoded(&[a, b, label]).unwrap();
        }
    }
    for &(a, b) in extra {
        let label = u16::from((a + b) % 2 == 0);
        ds.push_encoded(&[a, b, label]).unwrap();
    }
    let mut cat = Catalog::new();
    let t = cat.add_table(Table::with_page_bytes("t", &ds, 256)).unwrap();
    if indexed {
        cat.create_index(t, &[AttrId(0)]);
        cat.create_index(t, &[AttrId(1)]);
    }
    let e = Engine::new(cat);
    for ddl in [
        "CREATE MINING MODEL m_tree ON t PREDICT label USING decision_tree",
        "CREATE MINING MODEL m_rules ON t PREDICT label USING rules",
    ] {
        let out = e.execute_sql(ddl).expect(ddl);
        assert!(matches!(out, StatementOutcome::ModelCreated { .. }), "{ddl}");
    }
    e
}

/// Mining-predicate queries over both models: every predicate shape the
/// compiler handles, alone and mixed with column atoms.
fn query_corpus() -> Vec<Expr> {
    let mut exprs = Vec::new();
    for model in 0..2usize {
        for class in 0..2u16 {
            exprs.push(Expr::Mining(MiningPred::ClassEq { model, class: ClassId(class) }));
        }
        exprs.push(Expr::Mining(MiningPred::ClassIn {
            model,
            classes: vec![ClassId(0), ClassId(1)],
        }));
        exprs.push(Expr::Mining(MiningPred::ClassEqColumn { model, column: AttrId(2) }));
        exprs.push(Expr::And(vec![
            Expr::Mining(MiningPred::ClassEq { model, class: ClassId(1) }),
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(2) }),
        ]));
        exprs.push(Expr::Or(vec![
            Expr::Mining(MiningPred::ClassEq { model, class: ClassId(0) }),
            Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::In(MemberSet::of(3, [0, 2])) }),
        ]));
    }
    exprs.push(Expr::Mining(MiningPred::ModelsAgree { m1: 0, m2: 1 }));
    exprs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Index-free tables force both plans onto a full scan, so the
    /// compiled plan must be bit-identical to the envelope+residual
    /// reference in every deterministic metric — and a plan whose
    /// residual carries no mining predicate must never touch a scorer.
    #[test]
    fn compiled_plans_match_reference_bit_for_bit(
        extra in proptest::collection::vec((0u16..4, 0u16..3), 40..120),
    ) {
        let e = engine_with_models(&extra, false);
        for expr in query_corpus() {
            e.set_compile_models(false);
            let plan_ref = e.plan_predicate(0, expr.clone());
            e.set_compile_models(true);
            let plan_cmp = e.plan_predicate(0, expr.clone());
            let catalog = e.catalog();
            let reference =
                execute_opts(&plan_ref, &catalog, QueryGuard::unlimited(), &reference_opts())
                    .expect("reference run cannot fail");
            let fully_compiled = plan_cmp.residual.mining_preds().is_empty();
            // The decision tree's envelopes are exact by construction,
            // so its mining predicates always compile away entirely.
            let tree_only = expr.mining_preds().iter().all(|mp| mp.models() == vec![0]);
            if tree_only {
                prop_assert!(
                    fully_compiled,
                    "tree predicates must compile exactly: {:?} left {:?}",
                    expr, plan_cmp.residual
                );
            }
            for dop in DOPS {
                let got = execute_opts(
                    &plan_cmp,
                    &catalog,
                    QueryGuard::unlimited(),
                    &ExecOptions::with_parallelism(dop),
                )
                .expect("compiled run cannot fail");
                prop_assert_eq!(&got.rows, &reference.rows, "rows diverged: dop {}, {:?}", dop, expr);
                let (g, r) = (&got.metrics, &reference.metrics);
                prop_assert_eq!(g.rows_examined, r.rows_examined, "rows examined: {:?}", expr);
                prop_assert_eq!(g.heap_pages_read, r.heap_pages_read, "heap pages: {:?}", expr);
                prop_assert_eq!(g.pages_skipped, r.pages_skipped, "zone skips: {:?}", expr);
                prop_assert_eq!(g.output_rows, r.output_rows, "output rows: {:?}", expr);
                if fully_compiled {
                    prop_assert_eq!(
                        g.model_invocations, 0,
                        "a compiled plan must never invoke a model: {:?}", expr
                    );
                    prop_assert_eq!(g.memo_hits, 0, "no scorer, no memo: {:?}", expr);
                }
            }
        }
    }

    /// With indexes available the two plans may pick different access
    /// paths (compilation changes the costing), so parity narrows to
    /// the semantic guarantees: identical row sets at every dop, and
    /// zero invocations whenever the residual is mining-free.
    #[test]
    fn compiled_plans_match_reference_rows_with_indexes(
        extra in proptest::collection::vec((0u16..4, 0u16..3), 40..120),
    ) {
        let e = engine_with_models(&extra, true);
        for expr in query_corpus() {
            e.set_compile_models(false);
            let plan_ref = e.plan_predicate(0, expr.clone());
            e.set_compile_models(true);
            let plan_cmp = e.plan_predicate(0, expr.clone());
            let catalog = e.catalog();
            let reference =
                execute_opts(&plan_ref, &catalog, QueryGuard::unlimited(), &reference_opts())
                    .expect("reference run cannot fail");
            for dop in DOPS {
                let got = execute_opts(
                    &plan_cmp,
                    &catalog,
                    QueryGuard::unlimited(),
                    &ExecOptions::with_parallelism(dop),
                )
                .expect("compiled run cannot fail");
                prop_assert_eq!(&got.rows, &reference.rows, "rows diverged: dop {}, {:?}", dop, expr);
                if plan_cmp.residual.mining_preds().is_empty() {
                    prop_assert_eq!(got.metrics.model_invocations, 0, "{:?}", expr);
                }
            }
        }
    }

    /// Guard-breach parity on the full-scan-only world: under a
    /// generated rows or pages budget, the compiled plan must breach
    /// with the same resource and limit as the reference — and at dop 1
    /// the same spent — or both must succeed with the same rows.
    #[test]
    fn compiled_plans_breach_guards_identically(
        extra in proptest::collection::vec((0u16..4, 0u16..3), 40..100),
        rows_limit in 1u64..150,
        pages_limit in 0u64..40,
    ) {
        let e = engine_with_models(&extra, false);
        let expr = Expr::Mining(MiningPred::ClassEq { model: 0, class: ClassId(1) });
        e.set_compile_models(false);
        let plan_ref = e.plan_predicate(0, expr.clone());
        e.set_compile_models(true);
        let plan_cmp = e.plan_predicate(0, expr);
        let catalog = e.catalog();
        let guards = [
            QueryGuard::default().with_max_rows_examined(rows_limit),
            QueryGuard::default().with_max_pages(pages_limit),
        ];
        for guard in guards {
            let reference = execute_opts(&plan_ref, &catalog, guard, &reference_opts());
            for dop in DOPS {
                let got = execute_opts(
                    &plan_cmp,
                    &catalog,
                    guard,
                    &ExecOptions::with_parallelism(dop),
                );
                match (&reference, &got) {
                    (Ok(r), Ok(g)) => {
                        prop_assert_eq!(&g.rows, &r.rows, "rows diverged at dop {}", dop);
                        prop_assert_eq!(g.metrics.model_invocations, 0, "compiled plan invoked");
                    }
                    (
                        Err(EngineError::BudgetExceeded { resource: rr, limit: lr, spent: sr }),
                        Err(EngineError::BudgetExceeded { resource: rg, limit: lg, spent: sg }),
                    ) => {
                        prop_assert_eq!(rg, rr, "breach resource diverged at dop {}", dop);
                        prop_assert_eq!(lg, lr, "breach limit diverged at dop {}", dop);
                        if dop == 1 {
                            prop_assert_eq!(sg, sr, "serial breach trip point diverged");
                        }
                    }
                    (r, g) => {
                        return Err(TestCaseError::fail(format!(
                            "outcome diverged at dop {dop}: reference {r:?} vs compiled {g:?}"
                        )));
                    }
                }
            }
        }
    }
}
