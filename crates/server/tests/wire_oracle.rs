//! Differential oracle for the wire protocol: results fetched through
//! the TCP server must be byte-identical (rows) and metric-identical
//! (everything but wall-clock) to direct in-process `Engine` calls — at
//! 1, 8 and 32 concurrent clients, and the server must survive injected
//! connection drops, torn frames, slow-loris clients and scorer panics
//! with *typed* client-visible errors.

use mpq_client::{Client, ClientError};
use mpq_engine::{Catalog, Engine, EngineError, SessionState, StatementOutcome, Table};
use mpq_server::{AdmissionConfig, Server, ServerConfig, ServerError};
use mpq_types::{AttrDomain, AttrId, Attribute, Dataset, Schema};
use std::sync::Arc;
use std::time::Duration;

/// Demo-shaped engine: table `t(a, b, label)` over tiny pages with two
/// single-column indexes and two classifiers, the same catalog
/// `mpq-serverd --demo` serves.
fn demo_engine() -> Arc<Engine> {
    let schema = Schema::new(vec![
        Attribute::new("a", AttrDomain::categorical(["a0", "a1", "a2", "a3"])),
        Attribute::new("b", AttrDomain::categorical(["b0", "b1", "b2"])),
        Attribute::new("label", AttrDomain::categorical(["neg", "pos"])),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    for i in 0..600u16 {
        let (a, b) = (i % 4, (i / 4) % 3);
        let label = u16::from(a >= 2 && b != 1);
        ds.push_encoded(&[a, b, label]).unwrap();
    }
    let mut cat = Catalog::new();
    let t = cat.add_table(Table::with_page_bytes("t", &ds, 512)).unwrap();
    cat.create_index(t, &[AttrId(0)]);
    cat.create_index(t, &[AttrId(1)]);
    let e = Engine::new(cat);
    e.set_parallelism(2); // keep 32 concurrent clients from over-threading
    for ddl in [
        "CREATE MINING MODEL m_tree ON t PREDICT label USING decision_tree",
        "CREATE MINING MODEL m_bayes ON t PREDICT label USING bayes",
    ] {
        e.execute_sql(ddl).expect(ddl);
    }
    Arc::new(e)
}

/// The statement corpus every client replays: mining predicates alone,
/// mixed with column atoms, plain column queries, and EXPLAIN.
const CORPUS: &[&str] = &[
    "SELECT * FROM t WHERE PREDICT(m_tree) = 'pos'",
    "SELECT * FROM t WHERE PREDICT(m_tree) = 'neg'",
    "SELECT * FROM t WHERE PREDICT(m_bayes) = 'pos' AND a = 'a2'",
    "SELECT * FROM t WHERE PREDICT(m_bayes) = 'neg' OR b = 'b1'",
    "SELECT * FROM t WHERE a = 'a1'",
    "SELECT * FROM t WHERE a IN ('a0', 'a3') AND b = 'b2'",
    "EXPLAIN SELECT * FROM t WHERE PREDICT(m_tree) = 'pos'",
];

/// Zeroes the only field two identical executions may legitimately
/// disagree on: wall-clock time (and its guard-headroom shadow).
fn normalize(mut o: StatementOutcome) -> StatementOutcome {
    if let StatementOutcome::Query(q) = &mut o {
        q.metrics.elapsed = Duration::ZERO;
        q.metrics.guard.time_remaining_ms = None;
    }
    o
}

/// Reference outcomes straight from the engine, after a warmup pass so
/// both reference and wire runs see a hot plan cache.
fn expected_outcomes(engine: &Engine) -> Vec<StatementOutcome> {
    let mut warm = SessionState::new();
    for sql in CORPUS {
        engine.execute_sql_in(sql, &mut warm).expect(sql);
    }
    let mut session = SessionState::new();
    CORPUS
        .iter()
        .map(|sql| normalize(engine.execute_sql_in(sql, &mut session).expect(sql)))
        .collect()
}

fn start(engine: Arc<Engine>) -> Server {
    let cfg = ServerConfig {
        admission: AdmissionConfig {
            max_in_flight: 8,
            max_queue: 256,
            queue_timeout: Duration::from_secs(30),
        },
        ..ServerConfig::default()
    };
    Server::start(engine, cfg).expect("bind loopback")
}

/// The tentpole guarantee: N concurrent wire clients each replaying the
/// corpus get exactly the in-process outcomes — same rows, same
/// deterministic metrics, same plans.
#[test]
fn wire_matches_in_process_at_1_8_32_clients() {
    let engine = demo_engine();
    let expected = Arc::new(expected_outcomes(&engine));
    let server = start(Arc::clone(&engine));
    let addr = server.local_addr();

    for n_clients in [1usize, 8, 32] {
        let threads: Vec<_> = (0..n_clients)
            .map(|tid| {
                let expected = Arc::clone(&expected);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for round in 0..3 {
                        for (i, sql) in CORPUS.iter().enumerate() {
                            let got = normalize(
                                client.statement(sql).unwrap_or_else(|e| {
                                    panic!("client {tid} round {round}: {sql}: {e}")
                                }),
                            );
                            assert_eq!(
                                got, expected[i],
                                "client {tid} round {round} diverged on {sql}"
                            );
                        }
                    }
                    client.goodbye().expect("goodbye");
                })
            })
            .collect();
        for t in threads {
            t.join().expect("client thread");
        }
    }

    let report = server.shutdown();
    assert_eq!(report.connections, 1 + 8 + 32);
    assert_eq!(
        report.queries_served,
        (1 + 8 + 32) as u64 * 3 * CORPUS.len() as u64
    );
}

/// Session scoping over the wire: a `SET GUARD` on one connection
/// throttles only that connection; a `SET PARALLELISM` shows up in that
/// session's EXPLAIN and nobody else's.
#[test]
fn sessions_are_scoped_per_connection() {
    let engine = demo_engine();
    let server = start(engine);
    let addr = server.local_addr();

    let mut c1 = Client::connect(addr).unwrap();
    let mut c2 = Client::connect(addr).unwrap();
    assert_ne!(c1.session_id(), c2.session_id());

    // c1 throttles itself to one examined row; c2 is unaffected.
    match c1.statement("SET GUARD ROWS 1").unwrap() {
        StatementOutcome::GuardSet { guard } => {
            assert_eq!(guard.max_rows_examined, Some(1));
        }
        other => panic!("expected GuardSet, got {other:?}"),
    }
    let sql = "SELECT * FROM t WHERE PREDICT(m_bayes) = 'pos'";
    match c1.statement(sql) {
        Err(ClientError::Remote(ServerError::Engine(EngineError::BudgetExceeded {
            ..
        }))) => {}
        other => panic!("c1 must breach its guard, got {other:?}"),
    }
    c2.query(sql).expect("c2 runs unguarded");

    // c1 lifts its guard and recovers — same connection, typed error
    // did not poison the session.
    c1.statement("SET GUARD OFF").unwrap();
    c1.query(sql).expect("c1 recovered after SET GUARD OFF");

    // Parallelism override is session-local too.
    match c1.statement("SET PARALLELISM 4").unwrap() {
        StatementOutcome::ParallelismSet { dop } => assert_eq!(dop, 4),
        other => panic!("expected ParallelismSet, got {other:?}"),
    }
    let explain = "EXPLAIN SELECT * FROM t WHERE a = 'a1'";
    let p1 = match c1.statement(explain).unwrap() {
        StatementOutcome::Query(q) => q.plan,
        other => panic!("expected Query, got {other:?}"),
    };
    let p2 = match c2.statement(explain).unwrap() {
        StatementOutcome::Query(q) => q.plan,
        other => panic!("expected Query, got {other:?}"),
    };
    assert!(p1.contains("parallelism: 4"), "c1 plan must show its dop: {p1}");
    assert!(!p2.contains("parallelism: 4"), "c2 plan must not inherit c1's dop: {p2}");

    drop(c1);
    drop(c2);
    server.shutdown();
}

/// Injected connection faults: a drop mid-response and a torn frame
/// each fail exactly one exchange with a typed client error; the server
/// stays up and a reconnecting client gets correct results again.
#[test]
fn survives_connection_drops_and_torn_frames() {
    let engine = demo_engine();
    let expected = expected_outcomes(&engine);
    let faults = engine.fault_injector();
    let server = start(Arc::clone(&engine));
    let addr = server.local_addr();
    let sql = CORPUS[0];

    // Drop mid-response: the client sees a severed connection, never a
    // half-decoded result.
    let mut client = Client::connect(addr).unwrap();
    faults.set_conn_drop_mid_response(true);
    match client.statement(sql) {
        Err(ClientError::Disconnected | ClientError::Io(_) | ClientError::Frame(_)) => {}
        other => panic!("expected a connection failure, got {other:?}"),
    }
    assert!(!faults.conn_drop_mid_response_armed(), "one-shot fault consumed");

    // The server survived: reconnect and get the exact oracle answer.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(normalize(client.statement(sql).unwrap()), expected[0]);

    // Torn frame: CRC catches the corruption, typed Frame error.
    faults.set_conn_torn_frame(true);
    match client.statement(sql) {
        Err(ClientError::Frame(detail)) => {
            assert!(detail.contains("CRC"), "typed CRC failure, got: {detail}");
        }
        other => panic!("expected Frame error, got {other:?}"),
    }
    assert!(!faults.conn_torn_frame_armed(), "one-shot fault consumed");

    // Again: server fine, fresh connection correct.
    let mut client = Client::connect(addr).unwrap();
    for (i, sql) in CORPUS.iter().enumerate() {
        assert_eq!(normalize(client.statement(sql).unwrap()), expected[i]);
    }
    server.shutdown();
}

/// A scorer panic inside the engine arrives at the client as a typed
/// `Internal` error frame; the connection and the server both stay
/// usable for the next statement.
#[test]
fn scorer_panic_is_a_typed_error_frame() {
    let engine = demo_engine();
    let expected = expected_outcomes(&engine);
    let faults = engine.fault_injector();
    let server = start(Arc::clone(&engine));
    let addr = server.local_addr();
    let sql = CORPUS[0];

    let mut client = Client::connect(addr).unwrap();
    faults.set_scorer_panic(true);
    match client.statement(sql) {
        Err(ClientError::Remote(ServerError::Engine(EngineError::Internal { detail }))) => {
            assert!(detail.contains("scorer panicked"), "got: {detail}");
        }
        other => panic!("expected typed Internal, got {other:?}"),
    }
    faults.reset();

    // Same connection, next statement: correct again.
    assert_eq!(normalize(client.statement(sql).unwrap()), expected[0]);
    client.goodbye().unwrap();
    server.shutdown();
}

/// A slow-loris client (one byte every 10 ms) trips the server's
/// request-read deadline; the server reports a typed protocol error,
/// closes that connection only, and keeps serving honest clients.
#[test]
fn slow_loris_is_cut_off_without_collateral() {
    let engine = demo_engine();
    let expected = expected_outcomes(&engine);
    let faults = engine.fault_injector();
    let cfg = ServerConfig {
        request_read_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), cfg).expect("bind loopback");
    let addr = server.local_addr();

    // Handshake at full speed, then arm the trickle.
    let mut slow = Client::connect_with(addr, Arc::clone(&faults)).unwrap();
    faults.set_conn_slow_loris(true);
    match slow.statement(CORPUS[0]) {
        Err(
            ClientError::Remote(ServerError::Protocol { .. })
            | ClientError::Disconnected
            | ClientError::Io(_),
        ) => {}
        other => panic!("slow-loris must be cut off, got {other:?}"),
    }
    faults.set_conn_slow_loris(false);

    // An honest client on the same server is unaffected.
    let mut honest = Client::connect(addr).unwrap();
    assert_eq!(normalize(honest.statement(CORPUS[0]).unwrap()), expected[0]);
    honest.goodbye().unwrap();
    server.shutdown();
}
