//! Vectorized predicate evaluation: compiled column programs, adaptive
//! DNF reordering, shared-subexpression factoring, zone-map pruning,
//! and the scorer memo cache.
//!
//! The paper's §4.2 rewrite turns opaque mining predicates into
//! data-column predicates; this module exploits that form one layer
//! deeper than access-path selection. Instead of walking the [`Expr`]
//! tree per row, the executor compiles the residual once into a
//! [`CompiledPredicate`] — a flat program whose leaves are per-column
//! member bitsets — and evaluates it MonetDB/X100-style over selection
//! vectors, one column at a time. Mining predicates (and `NOT` over
//! them) stay as [`NodeKind::Scalar`] escape hatches evaluated
//! row-at-a-time, so the compiled program is exact on every input.
//!
//! **Adaptive reordering** (Kim/Ileri/Madden-style rank ordering):
//! instead of trusting the rewriter's clause order, an adaptive
//! predicate instruments every node with observed `rows_in`/`rows_out`
//! counters over the first [`CALIBRATION_ROWS`] rows of the scan, then
//! re-plans mid-scan: within each maximal run of consecutive
//! *scalar-free* children, `And` children are sorted by ascending
//! `cost / (rows_in - rows_out)` and `Or` children by ascending
//! `cost / rows_out`, where `cost` is the total row-touch count of the
//! child's subtree during calibration. Dividing the rank's numerator
//! and denominator by `rows_in` recovers the textbook forms
//! `cost_per_row / (1 - selectivity)` and `cost_per_row / selectivity`;
//! keeping the raw totals makes every comparison exact integer
//! arithmetic, so the reordering decision — and the
//! `clauses_reordered` counter — is bit-deterministic at every degree
//! of parallelism (a wall-clock timer would not be). Scalar-bearing
//! children never move and pure filters never cross one, so the row
//! set *and order* reaching every `Scalar` leaf is unchanged — which
//! is what keeps `model_invocations`, memo, and cascade accounting
//! identical to the fixed-order reference and lets the differential
//! oracles pin the whole mechanism.
//!
//! **Shared-subexpression factoring**: at compile time, structurally
//! identical scalar-free subtrees appearing under one `Or` in two or
//! more disjuncts (directly, or as a conjunct of an `And` disjunct)
//! are assigned a *factor slot*. The `Or` evaluates each factor once
//! per selection vector; every occurrence becomes a [`NodeKind::FactorRef`]
//! that intersects with the cached pass set instead of re-evaluating
//! the subtree. `factor_hits` counts rows answered by the cache.
//!
//! The same compiled form doubles as a page-pruning test: a page whose
//! zone map ([`crate::Table::page_zones`]) is disjoint from a `Col`
//! leaf's mask can be proven empty without reading it (`Scalar` leaves
//! are conservatively "maybe"). Both executors consult
//! [`CompiledPredicate::page_may_match`] before touching a heap page.
//!
//! Finally, [`MemoScorer`] wraps the catalog's [`ModelOracle`] with a
//! bounded per-query memo keyed by the dictionary-encoded input tuple:
//! rows are small `u16` member vectors, so distinct tuples are few and
//! black-box residual checks collapse to hash lookups after the first
//! occurrence. `model_invocations` counts memo *misses* — actual model
//! applications — identically in the serial reference and the
//! vectorized/parallel executors, which is what keeps the differential
//! oracles exact.

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::expr::{Expr, ModelId, ModelOracle};
use crate::table::{RowId, Table};
use mpq_core::{ProxyDecision, ProxyScore};
use mpq_types::{AttrId, ClassId, Member, MemberSet, Row, Schema};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Default capacity (in cached `(model, tuple)` entries) of the scorer
/// memo. Tuples are a handful of `u16`s, so even the full cache is a
/// few megabytes; capacity `0` disables memoization entirely.
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 16;

/// Rows observed before an adaptive predicate re-plans itself. Counted
/// by *global scan position* (row id on a full scan, fetch-list index
/// on index paths), so the calibration set — and every decision made
/// from it — is identical at every degree of parallelism.
pub(crate) const CALIBRATION_ROWS: u64 = 4096;

/// One node of a compiled predicate program, tagged with a tree-unique
/// id indexing its calibration counters.
#[derive(Clone)]
pub(crate) struct CompiledNode {
    /// Pre-order id, unique within one compiled predicate; indexes the
    /// `rows_in`/`rows_out` slots of [`AdaptiveState`].
    pub(crate) id: usize,
    /// What the node computes.
    pub(crate) kind: NodeKind,
}

/// The operator of a [`CompiledNode`].
#[derive(Clone)]
pub(crate) enum NodeKind {
    /// Constant truth value.
    Const(bool),
    /// Column leaf: row qualifies iff `mask` contains its member in
    /// column `col`. Compiled from [`crate::AtomPred`] via
    /// [`crate::AtomPred::member_set`].
    Col {
        /// Column index into the table's schema.
        col: usize,
        /// Matching members.
        mask: MemberSet,
    },
    /// Conjunction: children filter the selection in order, so the
    /// evaluated (model, tuple) set matches short-circuit `&&` exactly.
    And(Vec<CompiledNode>),
    /// Disjunction: children run over not-yet-matched rows only, which
    /// preserves short-circuit `||` semantics per row. `factors` are
    /// the shared subtrees hoisted out of this node's disjuncts; each
    /// is evaluated once on the incoming selection (before any child)
    /// and its pass set cached for the [`NodeKind::FactorRef`]
    /// occurrences below.
    Or {
        /// The disjuncts, in evaluation order.
        children: Vec<CompiledNode>,
        /// `(slot, representative subtree)` pairs, ascending by slot.
        factors: Vec<(usize, CompiledNode)>,
    },
    /// An occurrence of a factored shared subtree: intersects the
    /// selection with the pass set the owning `Or` cached under `slot`.
    /// `node` is the original subtree, kept as a fallback (and for
    /// zone-map pruning) but never evaluated on the factored path.
    FactorRef {
        /// Index into [`BatchCtx::factor_pass`].
        slot: usize,
        /// The original (scalar-free) subtree this reference replaced.
        node: Box<CompiledNode>,
    },
    /// Escape hatch for mining predicates and `NOT` over them: exact
    /// row-at-a-time tree evaluation through the oracle.
    Scalar(Expr),
}

/// Per-node calibration counters plus the once-published re-planned
/// tree. Counters are `Relaxed` atomics: every add is commutative and
/// the publisher synchronizes with all writers through the
/// [`CalibClock`]'s release/acquire edge, so the published ordering is
/// a pure function of the calibration row set.
struct AdaptiveState {
    rows_in: Vec<AtomicU64>,
    rows_out: Vec<AtomicU64>,
    reordered: OnceLock<Reordered>,
}

/// The re-planned tree plus how many children changed position.
struct Reordered {
    root: CompiledNode,
    moved: u64,
}

/// One measured data point for the optimizer feedback loop: a clause's
/// observed input/output row counts over the calibration window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedbackObservation {
    /// Fingerprint of the normalized clause ([`Expr::fingerprint`]).
    pub fingerprint: u64,
    /// Calibration rows the clause was evaluated over. For the k-th
    /// child of an `And`/`Or` this is conditional on its siblings
    /// (rows surviving / not yet matched by earlier children), which
    /// is exactly the form the optimizer's chain-style combination
    /// multiplies back together.
    pub rows_in: u64,
    /// How many of those rows satisfied the clause.
    pub rows_out: u64,
}

/// Counts global scan positions processed so far, so every thread can
/// tell when the calibration window `[0, total)` has been fully
/// observed. `credit` uses `Release` and `complete` uses `Acquire`,
/// publishing all (relaxed) counter updates that preceded each credit
/// to whoever re-plans the tree.
pub(crate) struct CalibClock {
    total: u64,
    done: AtomicU64,
}

impl CalibClock {
    /// A clock over a calibration window of `total` scan positions.
    pub(crate) fn new(total: u64) -> CalibClock {
        CalibClock { total, done: AtomicU64::new(0) }
    }

    /// Marks `n` positions of the window observed (evaluated rows).
    pub(crate) fn credit(&self, n: u64) {
        if n > 0 {
            self.done.fetch_add(n, Ordering::Release);
        }
    }

    /// Credits the overlap of position range `[first, last)` with the
    /// calibration window — used when zone maps prune a whole page, so
    /// skipped positions don't stall re-planning.
    pub(crate) fn credit_range(&self, first: u64, last: u64) {
        let capped = last.min(self.total);
        if first < capped {
            self.credit(capped - first);
        }
    }

    fn complete(&self) -> bool {
        self.done.load(Ordering::Acquire) >= self.total
    }
}

/// A predicate compiled for vectorized evaluation and zone-map pruning,
/// optionally instrumented for adaptive mid-scan reordering.
pub struct CompiledPredicate {
    root: CompiledNode,
    n_nodes: usize,
    n_factor_slots: usize,
    /// `(fingerprint, node id)` for the root clause and each root-level
    /// child clause, in source order — the units the feedback loop
    /// reports on.
    clause_map: Vec<(u64, usize)>,
    adaptive: Option<AdaptiveState>,
}

impl CompiledPredicate {
    /// Compiles `expr` against `schema`. Total: every expression
    /// compiles; shapes with no columnar form become `Scalar` leaves.
    ///
    /// With `adaptive` set, shared scalar-free subtrees across
    /// disjuncts are factored and the tree carries calibration
    /// counters so [`Self::filter_batch_at`] can re-plan mid-scan.
    /// With it clear the program evaluates children exactly in the
    /// rewriter's order — the fixed-order shape the differential
    /// oracles (and `SET ADAPTIVE OFF`) pin against.
    pub fn compile(expr: &Expr, schema: &Schema, adaptive: bool) -> CompiledPredicate {
        let mut root = compile_node(expr, schema);
        let mut n_factor_slots = 0;
        if adaptive {
            factor_tree(&mut root, &mut n_factor_slots);
        }
        let mut next_id = 0;
        assign_ids(&mut root, &mut next_id);
        let n_nodes = count_nodes(&root);
        let clause_map = build_clause_map(expr, &root);
        let adaptive = adaptive.then(|| AdaptiveState {
            rows_in: (0..next_id).map(|_| AtomicU64::new(0)).collect(),
            rows_out: (0..next_id).map(|_| AtomicU64::new(0)).collect(),
            reordered: OnceLock::new(),
        });
        CompiledPredicate { root, n_nodes, n_factor_slots, clause_map, adaptive }
    }

    /// Number of nodes in the compiled program.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Number of factor slots this program caches per selection vector
    /// (0 unless compiled adaptive and shared subtrees were found).
    pub(crate) fn factor_slots(&self) -> usize {
        self.n_factor_slots
    }

    /// Whether any row of a page with zone summary `zones` *may*
    /// satisfy the predicate. `false` is a proof of emptiness (the page
    /// can be skipped); `true` is inconclusive. Sound because a `Col`
    /// leaf whose mask is disjoint from the column's zone set matches no
    /// row of the page, conjunction needs every child possible,
    /// disjunction needs one, and `Scalar` leaves are always "maybe".
    pub fn page_may_match(&self, zones: &[MemberSet]) -> bool {
        may_match(&self.root, zones)
    }

    /// Filters `sel` (ascending row ids) down to the rows satisfying
    /// the predicate, evaluating column leaves over column slices and
    /// `Scalar` leaves row-at-a-time through `ctx`. Always uses the
    /// compile-time order (no calibration, no re-planning). On error
    /// `sel` is garbage and must be discarded.
    pub(crate) fn filter_batch<O: ModelOracle>(
        &self,
        sel: &mut Vec<RowId>,
        ctx: &mut BatchCtx<'_, O>,
    ) -> Result<(), EngineError> {
        filter(&self.root, sel, ctx, None)
    }

    /// Position-aware adaptive variant of [`Self::filter_batch`]:
    /// `pos` is the global scan position of `sel[0]` (row id on a full
    /// scan, fetch-list index on index paths) and `clock` tracks how
    /// much of the calibration window the whole execution has covered.
    ///
    /// Batches inside the window run instrumented in compile-time
    /// order; batches past it wait for the window to complete (workers
    /// holding later positions spin briefly — the window lives in the
    /// lowest-indexed morsels, whose owners never wait before
    /// finishing it) and then run the re-planned tree. A straddling
    /// batch is split at the boundary, which keeps the calibration row
    /// set exact and position-determined at every dop.
    pub(crate) fn filter_batch_at<O: ModelOracle>(
        &self,
        sel: &mut Vec<RowId>,
        ctx: &mut BatchCtx<'_, O>,
        pos: u64,
        clock: &CalibClock,
    ) -> Result<(), EngineError> {
        let Some(ad) = &self.adaptive else {
            return self.filter_batch(sel, ctx);
        };
        let n = sel.len() as u64;
        if n == 0 {
            return Ok(());
        }
        let total = clock.total;
        if pos.saturating_add(n) <= total {
            filter(&self.root, sel, ctx, Some(ad))?;
            clock.credit(n);
            return Ok(());
        }
        if pos >= total {
            let planned = self.wait_replanned(ad, clock, ctx.cancel)?;
            return filter(&planned.root, sel, ctx, None);
        }
        // Straddling batch: the calibration window ends inside it.
        let mut tail = sel.split_off((total - pos) as usize);
        filter(&self.root, sel, ctx, Some(ad))?;
        clock.credit(total - pos);
        let planned = self.wait_replanned(ad, clock, ctx.cancel)?;
        filter(&planned.root, &mut tail, ctx, None)?;
        sel.append(&mut tail);
        Ok(())
    }

    /// Blocks until the calibration window is fully credited, then
    /// returns the once-computed re-planned tree. Serial executors
    /// (`cancel == None`) process positions in ascending order, so the
    /// window is always complete by the time they get here and the
    /// loop never spins.
    fn wait_replanned<'s>(
        &'s self,
        ad: &'s AdaptiveState,
        clock: &CalibClock,
        cancel: Option<&AtomicBool>,
    ) -> Result<&'s Reordered, EngineError> {
        while !clock.complete() {
            if let Some(c) = cancel {
                if c.load(Ordering::Relaxed) {
                    return Err(crate::exec::cancelled_sentinel());
                }
            }
            std::thread::yield_now();
        }
        Ok(ad.reordered.get_or_init(|| replan(&self.root, ad)))
    }

    /// Publishes (if not already) and returns how many children the
    /// adaptive re-plan moved. 0 for fixed-order programs and for
    /// calibration sets whose measured ranks keep the source order.
    pub(crate) fn reordered_clauses(&self) -> u64 {
        match &self.adaptive {
            Some(ad) => ad.reordered.get_or_init(|| replan(&self.root, ad)).moved,
            None => 0,
        }
    }

    /// The calibration window's per-clause observations (root clause
    /// plus each root-level child clause), for the optimizer feedback
    /// store. Empty when fixed-order or when nothing was observed.
    pub(crate) fn feedback(&self) -> Vec<FeedbackObservation> {
        let Some(ad) = &self.adaptive else {
            return Vec::new();
        };
        self.clause_map
            .iter()
            .map(|&(fingerprint, id)| FeedbackObservation {
                fingerprint,
                rows_in: ad.rows_in[id].load(Ordering::Relaxed),
                rows_out: ad.rows_out[id].load(Ordering::Relaxed),
            })
            .filter(|o| o.rows_in > 0)
            .collect()
    }
}

fn compile_node(expr: &Expr, schema: &Schema) -> CompiledNode {
    let kind = match expr {
        Expr::Const(b) => NodeKind::Const(*b),
        Expr::Atom(a) => {
            let card = schema.attr(a.attr).domain.cardinality();
            NodeKind::Col { col: a.attr.index(), mask: a.pred.member_set(card) }
        }
        Expr::And(ps) => NodeKind::And(ps.iter().map(|p| compile_node(p, schema)).collect()),
        Expr::Or(ps) => NodeKind::Or {
            children: ps.iter().map(|p| compile_node(p, schema)).collect(),
            factors: Vec::new(),
        },
        // Mining predicates and NOT (normalize pushes NOT down to atoms
        // except over mining predicates) stay scalar.
        other => NodeKind::Scalar(other.clone()),
    };
    CompiledNode { id: 0, kind }
}

fn has_scalar(node: &CompiledNode) -> bool {
    match &node.kind {
        NodeKind::Scalar(_) => true,
        NodeKind::And(ps) => ps.iter().any(has_scalar),
        NodeKind::Or { children, .. } => children.iter().any(has_scalar),
        // Factored subtrees are scalar-free by construction, and the
        // fallback is the same subtree.
        NodeKind::FactorRef { .. } => false,
        _ => false,
    }
}

fn count_nodes(node: &CompiledNode) -> usize {
    match &node.kind {
        NodeKind::And(ps) => 1 + ps.iter().map(count_nodes).sum::<usize>(),
        NodeKind::Or { children, .. } => {
            1 + children.iter().map(count_nodes).sum::<usize>()
        }
        NodeKind::FactorRef { node, .. } => count_nodes(node),
        _ => 1,
    }
}

fn may_match(node: &CompiledNode, zones: &[MemberSet]) -> bool {
    match &node.kind {
        NodeKind::Const(b) => *b,
        NodeKind::Col { col, mask } => !mask.is_disjoint(&zones[*col]),
        NodeKind::And(ps) => ps.iter().all(|p| may_match(p, zones)),
        // Factors are cached computations, not extra disjuncts: the
        // node's value is the union of its children alone.
        NodeKind::Or { children, .. } => children.iter().any(|p| may_match(p, zones)),
        NodeKind::FactorRef { node, .. } => may_match(node, zones),
        NodeKind::Scalar(_) => true,
    }
}

// ---------------------------------------------------------------------
// Shared-subexpression factoring (compile time)
// ---------------------------------------------------------------------

/// A subtree is worth factoring when re-evaluating it beats an
/// intersection: scalar-free (the cache must never change which rows
/// reach a model) and at least two nodes (a lone `Col` probe is as
/// cheap as the intersection that would replace it).
fn factorable(node: &CompiledNode) -> bool {
    !has_scalar(node) && count_nodes(node) >= 2
}

fn placeholder() -> CompiledNode {
    CompiledNode { id: 0, kind: NodeKind::Const(false) }
}

/// Replaces `target` with a `FactorRef` to `slot`, remembering the
/// first replaced subtree as the factor's representative.
fn replace_with_factor(target: &mut CompiledNode, slot: usize, rep: &mut Option<CompiledNode>) {
    if rep.is_none() {
        *rep = Some(target.clone());
    }
    let inner = std::mem::replace(target, placeholder());
    *target = CompiledNode { id: 0, kind: NodeKind::FactorRef { slot, node: Box::new(inner) } };
}

/// Top-down factoring: detect shared subtrees among this `Or`'s
/// disjuncts first (on pristine children), then recurse into the factor
/// representatives and remaining children so nested disjunctions factor
/// their own sharing. Slots are numbered globally in first-occurrence
/// order, which makes the factored shape — and `factor_hits` — a pure
/// function of the input expression.
fn factor_tree(node: &mut CompiledNode, next_slot: &mut usize) {
    match &mut node.kind {
        NodeKind::And(ps) => {
            for p in ps {
                factor_tree(p, next_slot);
            }
        }
        NodeKind::Or { children, factors } => {
            factor_or(children, factors, next_slot);
            for (_, rep) in factors.iter_mut() {
                factor_tree(rep, next_slot);
            }
            for p in children.iter_mut() {
                factor_tree(p, next_slot);
            }
        }
        // The fallback under a FactorRef is never evaluated; leave it
        // pristine.
        _ => {}
    }
}

/// Finds factor candidates among `children`: each disjunct itself, or
/// each conjunct of an `And` disjunct. A structural key appearing under
/// two or more *distinct* disjuncts gets a slot; every occurrence is
/// replaced by a `FactorRef`.
fn factor_or(
    children: &mut [CompiledNode],
    factors: &mut Vec<(usize, CompiledNode)>,
    next_slot: &mut usize,
) {
    // (disjunct index, Some(conjunct index) | None for the disjunct
    // itself) per structural key, in first-seen key order.
    let mut order: Vec<u64> = Vec::new();
    let mut occs: HashMap<u64, Vec<(usize, Option<usize>)>> = HashMap::new();
    for (di, d) in children.iter().enumerate() {
        let mut note = |key_node: &CompiledNode, at: Option<usize>| {
            if factorable(key_node) {
                let k = structural_key(key_node);
                occs.entry(k)
                    .or_insert_with(|| {
                        order.push(k);
                        Vec::new()
                    })
                    .push((di, at));
            }
        };
        match &d.kind {
            NodeKind::And(gs) => {
                for (gi, g) in gs.iter().enumerate() {
                    note(g, Some(gi));
                }
            }
            _ => note(d, None),
        }
    }
    for k in order {
        let list = &occs[&k];
        let mut disjuncts: Vec<usize> = list.iter().map(|&(di, _)| di).collect();
        disjuncts.dedup(); // pushed in ascending disjunct order
        if disjuncts.len() < 2 {
            continue;
        }
        let slot = *next_slot;
        *next_slot += 1;
        let mut rep = None;
        for &(di, gi) in list {
            match gi {
                Some(g) => {
                    let NodeKind::And(gs) = &mut children[di].kind else {
                        unreachable!("occurrence was collected from an And disjunct");
                    };
                    replace_with_factor(&mut gs[g], slot, &mut rep);
                }
                None => replace_with_factor(&mut children[di], slot, &mut rep),
            }
        }
        factors.push((slot, rep.expect("a factor has at least two occurrences")));
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_u64(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Id-free structural fingerprint of a compiled subtree: two subtrees
/// share a key iff they compute the same function the same way.
fn structural_key(node: &CompiledNode) -> u64 {
    let mut h = FNV_OFFSET;
    key_node(node, &mut h);
    h
}

fn key_node(node: &CompiledNode, h: &mut u64) {
    match &node.kind {
        NodeKind::Const(b) => {
            fnv_u64(h, 1);
            fnv_u64(h, u64::from(*b));
        }
        NodeKind::Col { col, mask } => {
            fnv_u64(h, 2);
            fnv_u64(h, *col as u64);
            fnv_u64(h, u64::from(mask.domain()));
            for m in 0..mask.domain() {
                if mask.contains(m) {
                    fnv_u64(h, u64::from(m));
                }
            }
        }
        NodeKind::And(ps) => {
            fnv_u64(h, 3);
            fnv_u64(h, ps.len() as u64);
            for p in ps {
                key_node(p, h);
            }
        }
        NodeKind::Or { children, .. } => {
            fnv_u64(h, 4);
            fnv_u64(h, children.len() as u64);
            for p in children {
                key_node(p, h);
            }
        }
        // Same slot ⇒ same factored subtree of the same owner.
        NodeKind::FactorRef { slot, .. } => {
            fnv_u64(h, 5);
            fnv_u64(h, *slot as u64);
        }
        NodeKind::Scalar(e) => {
            fnv_u64(h, 6);
            fnv_u64(h, e.fingerprint());
        }
    }
}

/// Pre-order id assignment over the complete tree — including factor
/// representatives and `FactorRef` fallbacks — so every counter slot is
/// distinct. Fallbacks are never evaluated and simply keep zero stats.
fn assign_ids(node: &mut CompiledNode, next: &mut usize) {
    node.id = *next;
    *next += 1;
    match &mut node.kind {
        NodeKind::And(ps) => {
            for p in ps {
                assign_ids(p, next);
            }
        }
        NodeKind::Or { children, factors } => {
            for (_, rep) in factors {
                assign_ids(rep, next);
            }
            for p in children {
                assign_ids(p, next);
            }
        }
        NodeKind::FactorRef { node, .. } => assign_ids(node, next),
        _ => {}
    }
}

/// `(fingerprint, node id)` for the root and each root-level child, in
/// source order. Root-level children line up positionally because
/// compilation maps them 1:1 and factoring replaces in place.
fn build_clause_map(expr: &Expr, root: &CompiledNode) -> Vec<(u64, usize)> {
    let mut map = vec![(expr.fingerprint(), root.id)];
    let kids: &[CompiledNode] = match &root.kind {
        NodeKind::And(ps) => ps,
        NodeKind::Or { children, .. } => children,
        _ => &[],
    };
    let subs: &[Expr] = match expr {
        Expr::And(ps) | Expr::Or(ps) => ps,
        _ => &[],
    };
    if kids.len() == subs.len() {
        for (e, k) in subs.iter().zip(kids) {
            map.push((e.fingerprint(), k.id));
        }
    }
    map
}

// ---------------------------------------------------------------------
// Mid-scan re-planning (rank ordering from calibration counters)
// ---------------------------------------------------------------------

/// A rank `cost / den` compared without division: exact u128
/// cross-multiplication, `den == 0` ⇒ infinite (orders after every
/// finite rank, ties keep source order under the stable sort).
#[derive(Clone, Copy)]
struct Rank {
    cost: u64,
    den: u64,
}

impl Rank {
    fn cmp(self, other: Rank) -> std::cmp::Ordering {
        match (self.den, other.den) {
            (0, 0) => std::cmp::Ordering::Equal,
            (0, _) => std::cmp::Ordering::Greater,
            (_, 0) => std::cmp::Ordering::Less,
            _ => (u128::from(self.cost) * u128::from(other.den))
                .cmp(&(u128::from(other.cost) * u128::from(self.den))),
        }
    }
}

/// Total row-touches of a subtree during calibration: the sum of every
/// node's `rows_in`, factors included. Proportional to the work the
/// subtree cost per incoming row — the `cost` numerator of its rank.
fn subtree_cost(node: &CompiledNode, ad: &AdaptiveState) -> u64 {
    let mut sum = ad.rows_in[node.id].load(Ordering::Relaxed);
    match &node.kind {
        NodeKind::And(ps) => {
            for p in ps {
                sum = sum.saturating_add(subtree_cost(p, ad));
            }
        }
        NodeKind::Or { children, factors } => {
            for (_, rep) in factors {
                sum = sum.saturating_add(subtree_cost(rep, ad));
            }
            for p in children {
                sum = sum.saturating_add(subtree_cost(p, ad));
            }
        }
        // The fallback never ran; the reference's own intersection work
        // is its `rows_in`, already counted above.
        NodeKind::FactorRef { .. } => {}
        _ => {}
    }
    sum
}

fn rank_of(node: &CompiledNode, conjunction: bool, ad: &AdaptiveState) -> Rank {
    let rows_in = ad.rows_in[node.id].load(Ordering::Relaxed);
    let rows_out = ad.rows_out[node.id].load(Ordering::Relaxed);
    let cost = subtree_cost(node, ad);
    // cost/(in−out) == (cost/in)/(1−out/in): per-row cost over
    // rejection rate. cost/out == (cost/in)/(out/in): per-row cost
    // over match rate.
    let den = if conjunction { rows_in.saturating_sub(rows_out) } else { rows_out };
    Rank { cost, den }
}

/// Clones the calibrated tree and sorts each maximal run of
/// consecutive scalar-free children by ascending rank. Scalar-bearing
/// children never move and pure filters never cross one, so the rows
/// routed to every `Scalar` leaf — set and order — are exactly the
/// fixed-order reference's.
fn replan(root: &CompiledNode, ad: &AdaptiveState) -> Reordered {
    let mut root = root.clone();
    let mut moved = 0;
    replan_node(&mut root, ad, &mut moved);
    Reordered { root, moved }
}

fn replan_node(node: &mut CompiledNode, ad: &AdaptiveState, moved: &mut u64) {
    match &mut node.kind {
        NodeKind::And(ps) => {
            for p in ps.iter_mut() {
                replan_node(p, ad, moved);
            }
            reorder_runs(ps, true, ad, moved);
        }
        NodeKind::Or { children, factors } => {
            for (_, rep) in factors.iter_mut() {
                replan_node(rep, ad, moved);
            }
            for p in children.iter_mut() {
                replan_node(p, ad, moved);
            }
            reorder_runs(children, false, ad, moved);
        }
        _ => {}
    }
}

fn reorder_runs(
    children: &mut [CompiledNode],
    conjunction: bool,
    ad: &AdaptiveState,
    moved: &mut u64,
) {
    let mut i = 0;
    while i < children.len() {
        if has_scalar(&children[i]) {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < children.len() && !has_scalar(&children[j]) {
            j += 1;
        }
        if j - i > 1 {
            let run = &mut children[i..j];
            let ranks: Vec<Rank> = run.iter().map(|c| rank_of(c, conjunction, ad)).collect();
            let mut idx: Vec<usize> = (0..run.len()).collect();
            idx.sort_by(|&a, &b| ranks[a].cmp(ranks[b]));
            if idx.iter().enumerate().any(|(p, &s)| p != s) {
                let mut tmp: Vec<Option<CompiledNode>> = run
                    .iter_mut()
                    .map(|c| Some(std::mem::replace(c, placeholder())))
                    .collect();
                for (p, &s) in idx.iter().enumerate() {
                    run[p] = tmp[s].take().expect("each source index used exactly once");
                    if p != s {
                        *moved += 1;
                    }
                }
            }
        }
        i = j;
    }
}

// ---------------------------------------------------------------------
// Batch evaluation
// ---------------------------------------------------------------------

/// Per-execution state threaded through batch evaluation.
pub(crate) struct BatchCtx<'a, O: ModelOracle> {
    /// Table being scanned (column access for `Col` leaves, row
    /// materialization for `Scalar` leaves).
    pub table: &'a Table,
    /// Oracle resolving model predictions (normally a [`MemoScorer`]).
    pub oracle: &'a O,
    /// Reused row buffer — the scalar path's column-cursor view fills
    /// it only when a `Scalar` leaf actually runs, killing the per-row
    /// `Vec<Member>` allocation of the old interpreter.
    pub row_buf: Vec<Member>,
    /// Called after each row evaluated through a `Scalar` leaf; the
    /// executors hook invocation-budget and deadline checks here so
    /// breach classification matches the row-at-a-time reference.
    pub after_scalar_row: &'a mut dyn FnMut() -> Result<(), EngineError>,
    /// Per-slot factor pass sets. An owning `Or` always rewrites its
    /// slots on the current selection before any `FactorRef` below it
    /// reads them, so entries never need clearing between batches.
    pub factor_pass: Vec<Option<Vec<RowId>>>,
    /// Rows answered from a factor's cached pass set instead of
    /// re-evaluating the shared subtree. Summed per row, so the total
    /// is batching- and dop-independent.
    pub factor_hits: u64,
    /// Cooperative cancellation flag probed while waiting out the
    /// calibration window (parallel executor only).
    pub cancel: Option<&'a AtomicBool>,
}

fn filter<O: ModelOracle>(
    node: &CompiledNode,
    sel: &mut Vec<RowId>,
    ctx: &mut BatchCtx<'_, O>,
    stats: Option<&AdaptiveState>,
) -> Result<(), EngineError> {
    let rows_in = sel.len() as u64;
    let result = match &node.kind {
        NodeKind::Const(true) => Ok(()),
        NodeKind::Const(false) => {
            sel.clear();
            Ok(())
        }
        NodeKind::Col { col, mask } => {
            let column = ctx.table.column(*col);
            sel.retain(|&r| mask.contains(column[r as usize]));
            Ok(())
        }
        NodeKind::And(ps) => {
            let mut res = Ok(());
            for p in ps {
                if sel.is_empty() {
                    break;
                }
                res = filter(p, sel, ctx, stats);
                if res.is_err() {
                    break;
                }
            }
            res
        }
        NodeKind::Or { children, factors } => or_filter(children, factors, sel, ctx, stats),
        NodeKind::FactorRef { slot, node } => {
            if ctx.factor_pass[*slot].is_some() {
                ctx.factor_hits += rows_in;
                let pass = ctx.factor_pass[*slot].as_deref().expect("just checked");
                intersect_sorted(sel, pass);
                Ok(())
            } else {
                // The slot was never primed (fixed-order evaluation of
                // a factored tree, e.g. tests driving `filter_batch`
                // directly): fall back to the original subtree.
                filter(node, sel, ctx, stats)
            }
        }
        NodeKind::Scalar(expr) => scalar_filter(expr, sel, ctx),
    };
    result?;
    if let Some(ad) = stats {
        ad.rows_in[node.id].fetch_add(rows_in, Ordering::Relaxed);
        ad.rows_out[node.id].fetch_add(sel.len() as u64, Ordering::Relaxed);
    }
    Ok(())
}

fn or_filter<O: ModelOracle>(
    children: &[CompiledNode],
    factors: &[(usize, CompiledNode)],
    sel: &mut Vec<RowId>,
    ctx: &mut BatchCtx<'_, O>,
    stats: Option<&AdaptiveState>,
) -> Result<(), EngineError> {
    // Prime every factor on the incoming selection: each shared
    // subtree is evaluated once per selection vector, and the
    // `FactorRef` occurrences below intersect with the cached result.
    // Factors are scalar-free, so this touches no model.
    for (slot, rep) in factors {
        let mut pass = sel.clone();
        filter(rep, &mut pass, ctx, stats)?;
        ctx.factor_pass[*slot] = Some(pass);
    }
    // Each child sees only rows no earlier child matched — exactly the
    // rows short-circuit `||` would evaluate it on.
    let mut remaining = std::mem::take(sel);
    let mut matched: Vec<RowId> = Vec::new();
    for p in children {
        if remaining.is_empty() {
            break;
        }
        let mut pass = remaining.clone();
        filter(p, &mut pass, ctx, stats)?;
        if pass.is_empty() {
            continue;
        }
        subtract_sorted(&mut remaining, &pass);
        matched.extend_from_slice(&pass);
    }
    matched.sort_unstable();
    *sel = matched;
    Ok(())
}

fn scalar_filter<O: ModelOracle>(
    expr: &Expr,
    sel: &mut Vec<RowId>,
    ctx: &mut BatchCtx<'_, O>,
) -> Result<(), EngineError> {
    let n_cols = ctx.table.schema().len();
    let mut kept = 0;
    for i in 0..sel.len() {
        let row = sel[i];
        for d in 0..n_cols {
            ctx.row_buf[d] = ctx.table.cell(row, d);
        }
        // Invocations are counted by the memo oracle (misses),
        // not by the tree walk — the counter here is discarded.
        let mut tree_inv = 0u64;
        let hit = expr.eval(&ctx.row_buf, ctx.oracle, &mut tree_inv);
        (ctx.after_scalar_row)()?;
        if hit {
            sel[kept] = row;
            kept += 1;
        }
    }
    sel.truncate(kept);
    Ok(())
}

/// Removes the (sorted, subset) `pass` rows from the sorted `remaining`
/// vector in one merge pass.
fn subtract_sorted(remaining: &mut Vec<RowId>, pass: &[RowId]) {
    let mut pi = 0;
    let mut kept = 0;
    for i in 0..remaining.len() {
        let r = remaining[i];
        if pi < pass.len() && pass[pi] == r {
            pi += 1;
        } else {
            remaining[kept] = r;
            kept += 1;
        }
    }
    remaining.truncate(kept);
}

/// Keeps only the `sel` rows present in the sorted `pass` set, in one
/// merge pass. `sel` need not be a subset of `pass`, only sorted.
fn intersect_sorted(sel: &mut Vec<RowId>, pass: &[RowId]) {
    let mut pi = 0;
    let mut kept = 0;
    for i in 0..sel.len() {
        let r = sel[i];
        while pi < pass.len() && pass[pi] < r {
            pi += 1;
        }
        if pi < pass.len() && pass[pi] == r {
            sel[kept] = r;
            kept += 1;
        }
    }
    sel.truncate(kept);
}

// ---------------------------------------------------------------------
// Scorer memo cache
// ---------------------------------------------------------------------

/// Per-model memo table. `Box<[Member]>` keys let `&[Member]` rows
/// probe without allocating (via `Borrow`).
type ModelMemo = HashMap<Box<[Member]>, ClassId>;

/// A bounded per-query memo over the catalog's [`ModelOracle`].
///
/// `predict` answers repeated `(model, tuple)` questions from the memo;
/// a miss computes under the write lock (double-checked), so each
/// distinct key is scored exactly once no matter how many workers race
/// on it — miss counts are deterministic across degrees of parallelism.
/// The capacity bound stops *inserting* when full (no eviction): the
/// memo can only shrink `model_invocations`, and counts stay identical
/// across executors as long as the distinct-tuple count fits. Injected
/// scorer faults still fire: the miss path calls straight into the
/// catalog, and the memo never outlives one execution.
pub(crate) struct MemoScorer<'a> {
    catalog: &'a Catalog,
    capacity: usize,
    memo: RwLock<MemoState>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Verified proxy cascades, indexed by model id (`None` = the plan
    /// enabled no cascade for this model, or verification rejected it).
    /// Living on the shared oracle means the scalar reference, the
    /// vectorized executor, and every parallel worker make identical
    /// cascade decisions — the differential oracles hold for free.
    cascades: Vec<Option<Arc<ProxyScore>>>,
    cascade_accepts: AtomicU64,
    cascade_rejects: AtomicU64,
    band_rows: AtomicU64,
    scorer_ns: AtomicU64,
}

struct MemoState {
    per_model: Vec<ModelMemo>,
    len: usize,
}

impl<'a> MemoScorer<'a> {
    /// A memo scorer with proxy cascades enabled for the models carrying
    /// `Some` entries (index = model id). Callers build the vector via
    /// [`crate::compile::build_cascades`], which verifies each table.
    pub(crate) fn with_cascades(
        catalog: &'a Catalog,
        capacity: usize,
        cascades: Vec<Option<Arc<ProxyScore>>>,
    ) -> MemoScorer<'a> {
        MemoScorer {
            catalog,
            capacity,
            memo: RwLock::new(MemoState { per_model: Vec::new(), len: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cascades,
            cascade_accepts: AtomicU64::new(0),
            cascade_rejects: AtomicU64::new(0),
            band_rows: AtomicU64::new(0),
            scorer_ns: AtomicU64::new(0),
        }
    }

    /// Memo hits so far (predictions answered without the model).
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Memo misses so far = actual black-box model applications.
    pub(crate) fn invocations(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Rows whose mining predicate the cascade answered positively.
    pub(crate) fn cascade_accepts(&self) -> u64 {
        self.cascade_accepts.load(Ordering::Relaxed)
    }

    /// Rows whose mining predicate the cascade answered negatively.
    pub(crate) fn cascade_rejects(&self) -> u64 {
        self.cascade_rejects.load(Ordering::Relaxed)
    }

    /// Rows inside the proxy's uncertainty band (fell through to the
    /// memo/scorer path).
    pub(crate) fn band_rows(&self) -> u64 {
        self.band_rows.load(Ordering::Relaxed)
    }

    /// Wall nanoseconds spent inside the real scorer (memo misses only).
    pub(crate) fn scorer_ns(&self) -> u64 {
        self.scorer_ns.load(Ordering::Relaxed)
    }

    /// The timed catalog scorer call shared by every miss path.
    fn scored_predict(&self, model: ModelId, row: &Row) -> ClassId {
        let t0 = Instant::now();
        let c = self.catalog.predict(model, row);
        self.scorer_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        c
    }
}

impl MemoScorer<'_> {
    /// The memo/scorer path without the cascade front end: called for
    /// band rows (already counted by the caller) and for models with no
    /// verified proxy.
    fn predict_via_memo(&self, model: ModelId, row: &Row) -> ClassId {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return self.scored_predict(model, row);
        }
        {
            let state = self.memo.read().unwrap_or_else(|e| e.into_inner());
            if let Some(&c) = state.per_model.get(model).and_then(|m| m.get(row)) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return c;
            }
        }
        let mut state = self.memo.write().unwrap_or_else(|e| e.into_inner());
        if let Some(&c) = state.per_model.get(model).and_then(|m| m.get(row)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return c;
        }
        // Counted before the (possibly panicking) model runs, matching
        // the reference interpreter's increment-then-predict order.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let c = self.scored_predict(model, row);
        if state.len < self.capacity {
            if state.per_model.len() <= model {
                state.per_model.resize_with(model + 1, ModelMemo::new);
            }
            state.per_model[model].insert(Box::from(row), c);
            state.len += 1;
        }
        c
    }
}

impl ModelOracle for MemoScorer<'_> {
    fn predict(&self, model: ModelId, row: &Row) -> ClassId {
        // A unique proxy argmax IS the model's prediction (bit-identical
        // score tables), so `ModelsAgree`-style direct predictions ride
        // the cascade too. Only tied rows — the band — reach the
        // memo/scorer path, and they are counted here so `band_rows`
        // equals the fallback-scorer set on every query shape.
        if let Some(Some(proxy)) = self.cascades.get(model) {
            match proxy.decide(row) {
                ProxyDecision::Unique(c) => return c,
                ProxyDecision::Band => {
                    self.band_rows.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.predict_via_memo(model, row)
    }

    fn class_for_member(&self, model: ModelId, column: AttrId, m: Member) -> Option<ClassId> {
        // Pure metadata lookup — not an invocation; no memo needed.
        self.catalog.class_for_member(model, column, m)
    }

    fn predict_in(&self, model: ModelId, row: &Row, accept: &[ClassId]) -> bool {
        if let Some(Some(proxy)) = self.cascades.get(model) {
            match proxy.decide(row) {
                // A unique proxy argmax IS the model's prediction
                // (bit-identical score tables): answer membership
                // without scoring, memoizing, or counting an invocation.
                ProxyDecision::Unique(c) => {
                    let hit = accept.contains(&c);
                    if hit {
                        self.cascade_accepts.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.cascade_rejects.fetch_add(1, Ordering::Relaxed);
                    }
                    return hit;
                }
                // Tied scores: only the model's tie-break can decide.
                // Counted here, so the fallback must skip the cascade
                // front end (`predict` would count the band row twice).
                ProxyDecision::Band => {
                    self.band_rows.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        accept.contains(&self.predict_via_memo(model, row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Atom, AtomPred, MiningPred};
    use crate::table::Table;
    use mpq_types::{AttrDomain, Attribute, Dataset};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("a", AttrDomain::categorical(["p", "q", "r", "s"])),
            Attribute::new("b", AttrDomain::categorical(["x", "y", "z"])),
        ])
        .unwrap()
    }

    fn table() -> Table {
        let rows = (0..64u16).map(|i| vec![i % 4, (i / 4) % 3]);
        Table::with_page_bytes("t", &Dataset::from_rows(schema(), rows).unwrap(), 256)
    }

    struct NoModels;
    impl ModelOracle for NoModels {
        fn predict(&self, _: ModelId, _: &Row) -> ClassId {
            unreachable!("no mining predicates here")
        }
        fn class_for_member(&self, _: ModelId, _: AttrId, _: Member) -> Option<ClassId> {
            None
        }
    }

    fn run(pred: &CompiledPredicate, t: &Table) -> Vec<RowId> {
        run_counting(pred, t).0
    }

    fn run_counting(pred: &CompiledPredicate, t: &Table) -> (Vec<RowId>, u64) {
        let mut after = || Ok(());
        let mut ctx = BatchCtx {
            table: t,
            oracle: &NoModels,
            row_buf: vec![0; t.schema().len()],
            after_scalar_row: &mut after,
            factor_pass: vec![None; pred.factor_slots()],
            factor_hits: 0,
            cancel: None,
        };
        let mut sel: Vec<RowId> = (0..t.n_rows() as RowId).collect();
        pred.filter_batch(&mut sel, &mut ctx).unwrap();
        (sel, ctx.factor_hits)
    }

    /// Drives the adaptive path end to end: calibration window of
    /// `calib` rows, one straddling batch over the whole table.
    fn run_adaptive(pred: &CompiledPredicate, t: &Table, calib: u64) -> (Vec<RowId>, u64) {
        let mut after = || Ok(());
        let mut ctx = BatchCtx {
            table: t,
            oracle: &NoModels,
            row_buf: vec![0; t.schema().len()],
            after_scalar_row: &mut after,
            factor_pass: vec![None; pred.factor_slots()],
            factor_hits: 0,
            cancel: None,
        };
        let clock = CalibClock::new(calib.min(t.n_rows() as u64));
        let mut sel: Vec<RowId> = (0..t.n_rows() as RowId).collect();
        pred.filter_batch_at(&mut sel, &mut ctx, 0, &clock).unwrap();
        (sel, pred.reordered_clauses())
    }

    fn reference(e: &Expr, t: &Table) -> Vec<RowId> {
        let mut inv = 0;
        (0..t.n_rows() as RowId)
            .filter(|&r| e.eval(&t.row(r), &NoModels, &mut inv))
            .collect()
    }

    #[test]
    fn compiled_filter_matches_tree_walk() {
        let s = schema();
        let t = table();
        let a = |attr, pred| Expr::Atom(Atom { attr: AttrId(attr), pred });
        let exprs = [
            Expr::Const(true),
            Expr::Const(false),
            a(0, AtomPred::Eq(2)),
            a(1, AtomPred::Range { lo: 1, hi: 2 }),
            Expr::and(vec![a(0, AtomPred::Eq(1)), a(1, AtomPred::Eq(0))]),
            Expr::or(vec![a(0, AtomPred::Eq(0)), a(1, AtomPred::Eq(2))]),
            Expr::and(vec![
                Expr::or(vec![a(0, AtomPred::Eq(0)), a(0, AtomPred::Eq(3))]),
                a(1, AtomPred::In(mpq_types::MemberSet::of(3, [0, 2]))),
            ]),
        ];
        for e in &exprs {
            let fixed = CompiledPredicate::compile(e, &s, false);
            let adaptive = CompiledPredicate::compile(e, &s, true);
            let want = reference(e, &t);
            assert_eq!(run(&fixed, &t), want, "fixed {e:?}");
            assert_eq!(run(&adaptive, &t), want, "adaptive fixed-path {e:?}");
            let (rows, _) = run_adaptive(&adaptive, &t, 16);
            assert_eq!(rows, want, "adaptive replanned {e:?}");
        }
    }

    #[test]
    fn adaptive_replans_and_stays_exact() {
        let s = schema();
        let t = table();
        let a = |attr, pred| Expr::Atom(Atom { attr: AttrId(attr), pred });
        // First conjunct keeps ~3/4 of rows, second ~1/4: rank ordering
        // must swap them once calibrated.
        let e = Expr::and(vec![
            a(0, AtomPred::In(mpq_types::MemberSet::of(4, [0, 1, 2]))),
            a(0, AtomPred::Eq(1)),
        ]);
        let pred = CompiledPredicate::compile(&e, &s, true);
        let (rows, moved) = run_adaptive(&pred, &t, 16);
        assert_eq!(rows, reference(&e, &t));
        assert_eq!(moved, 2, "both conjuncts change position");
        // Publishing is sticky and deterministic.
        assert_eq!(pred.reordered_clauses(), 2);
    }

    #[test]
    fn factoring_shares_subtrees_across_disjuncts() {
        let s = schema();
        let t = table();
        let a = |attr, pred| Expr::Atom(Atom { attr: AttrId(attr), pred });
        let shared = || {
            Expr::and(vec![
                a(0, AtomPred::In(mpq_types::MemberSet::of(4, [1, 2]))),
                a(1, AtomPred::Range { lo: 0, hi: 1 }),
            ])
        };
        // Or(And(shared, b=x), And(shared, b=z)) — the shared conjunct
        // appears in both disjuncts and must get one factor slot.
        let e = Expr::or(vec![
            Expr::and(vec![shared(), a(1, AtomPred::Eq(0))]),
            Expr::and(vec![shared(), a(1, AtomPred::Eq(2))]),
        ]);
        let pred = CompiledPredicate::compile(&e, &s, true);
        assert_eq!(pred.factor_slots(), 1);
        let (rows, hits) = run_counting(&pred, &t);
        assert_eq!(rows, reference(&e, &t));
        assert!(hits > 0, "factor cache must answer rows");
        // Fixed-order compile has no factors and agrees.
        let fixed = CompiledPredicate::compile(&e, &s, false);
        assert_eq!(fixed.factor_slots(), 0);
        assert_eq!(run(&fixed, &t), rows);
        // The adaptive replanned path agrees too.
        let (rows2, _) = run_adaptive(&pred, &t, 16);
        assert_eq!(rows2, rows);
    }

    #[test]
    fn feedback_reports_root_and_clauses() {
        let s = schema();
        let t = table();
        let a = |attr, pred| Expr::Atom(Atom { attr: AttrId(attr), pred });
        let e = Expr::and(vec![a(0, AtomPred::Eq(1)), a(1, AtomPred::Eq(0))]);
        let pred = CompiledPredicate::compile(&e, &s, true);
        let (_, _) = run_adaptive(&pred, &t, 64);
        let obs = pred.feedback();
        // Root + 2 conjuncts, all observed over the full table.
        assert_eq!(obs.len(), 3);
        assert_eq!(obs[0].fingerprint, e.fingerprint());
        assert_eq!(obs[0].rows_in, 64);
        // a==1 matches 16 of 64; root matches those with b==0.
        assert_eq!(obs[1].rows_out, 16);
        assert_eq!(obs[2].rows_in, 16);
        assert_eq!(obs[0].rows_out, obs[2].rows_out);
    }

    #[test]
    fn zone_pruning_is_sound_and_effective() {
        let s = schema();
        let t = table(); // 4 rows/page: column a cycles fully per page
        let eq0 = CompiledPredicate::compile(
            &Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }),
            &s,
            true,
        );
        // Every page holds member 0 of column a → nothing prunable.
        for page in 0..t.n_pages() {
            assert!(eq0.page_may_match(t.page_zones(page)));
        }
        // Column b is clustered in runs of 4 rows = 1 page.
        let b1 = CompiledPredicate::compile(
            &Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(1) }),
            &s,
            true,
        );
        let prunable: Vec<bool> =
            (0..t.n_pages()).map(|p| !b1.page_may_match(t.page_zones(p))).collect();
        assert!(prunable.iter().any(|&x| x), "clustered member must prune pages");
        // Soundness: no pruned page may contain a matching row.
        for (page, pruned) in prunable.iter().enumerate() {
            if *pruned {
                let start = page * t.rows_per_page();
                let end = (start + t.rows_per_page()).min(t.n_rows());
                assert!((start..end).all(|r| t.cell(r as RowId, 1) != 1));
            }
        }
        // Scalar leaves never prune.
        let mining = CompiledPredicate::compile(
            &Expr::Mining(MiningPred::ClassEq { model: 0, class: ClassId(0) }),
            &s,
            true,
        );
        assert!((0..t.n_pages()).all(|p| mining.page_may_match(t.page_zones(p))));
    }

    #[test]
    fn subtract_sorted_removes_subset() {
        let mut rem: Vec<RowId> = vec![1, 3, 5, 7, 9];
        subtract_sorted(&mut rem, &[3, 9]);
        assert_eq!(rem, vec![1, 5, 7]);
        subtract_sorted(&mut rem, &[]);
        assert_eq!(rem, vec![1, 5, 7]);
        subtract_sorted(&mut rem, &[1, 5, 7]);
        assert!(rem.is_empty());
    }

    #[test]
    fn intersect_sorted_keeps_common_rows() {
        let mut sel: Vec<RowId> = vec![1, 2, 5, 8, 9];
        intersect_sorted(&mut sel, &[0, 2, 3, 8, 11]);
        assert_eq!(sel, vec![2, 8]);
        intersect_sorted(&mut sel, &[]);
        assert!(sel.is_empty());
    }

    #[test]
    fn rank_orders_by_exact_cross_multiplication() {
        use std::cmp::Ordering as O;
        let r = |cost, den| Rank { cost, den };
        assert_eq!(r(1, 2).cmp(r(2, 4)), O::Equal);
        assert_eq!(r(1, 3).cmp(r(1, 2)), O::Less);
        assert_eq!(r(5, 1).cmp(r(1, 0)), O::Less, "finite beats infinite");
        assert_eq!(r(1, 0).cmp(r(2, 0)), O::Equal, "infinities tie (stable order)");
    }
}
