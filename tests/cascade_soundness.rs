//! Cascade soundness oracle: the tabulated proxy score for the additive
//! models (naive Bayes, k-means, GMM) must agree with the real scorer on
//! every decided row — a `Unique` decision *is* the model's prediction —
//! and the uncertainty band must be exactly the set of rows the
//! executor falls back to the real scorer for. Execution through the
//! cascade must be row-identical to the cascade-free reference at every
//! degree of parallelism, with the memo cache on and off.

use mining_predicates::prelude::*;
use mpq_engine::{execute_opts, ExecOptions, ModelOracle, StatementOutcome};
use mpq_core::{ProxyDecision, ProxyScore};
use proptest::prelude::*;

const DOPS: [usize; 4] = [1, 2, 4, 8];

fn reference_opts() -> ExecOptions {
    ExecOptions { parallelism: 1, vectorized: false, ..ExecOptions::default() }
}

/// Two categorical feature columns plus a label for the Bayes model.
fn schema() -> Schema {
    Schema::new(vec![
        Attribute::new("a", AttrDomain::categorical(["a0", "a1", "a2", "a3"])),
        Attribute::new("b", AttrDomain::categorical(["b0", "b1", "b2"])),
        Attribute::new("label", AttrDomain::categorical(["neg", "pos"])),
    ])
    .unwrap()
}

/// All-ordered companion schema for the Gaussian-mixture model.
fn numeric_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("x", AttrDomain::binned(vec![1.0, 2.0, 3.0]).unwrap()),
        Attribute::new("y", AttrDomain::binned(vec![1.0, 2.0]).unwrap()),
    ])
    .unwrap()
}

/// Trains one model per additive-score algorithm over the generated
/// rows: naive Bayes (model 0) and k-means (model 1) on `t`, a Gaussian
/// mixture (model 2) on `tn`. Returns the engine; every model carries a
/// stored proxy table built at registration.
fn engine_with_models(extra: &[(u16, u16)]) -> Engine {
    let mut ds = Dataset::new(schema());
    let mut dsn = Dataset::new(numeric_schema());
    for a in 0..4u16 {
        for b in 0..3u16 {
            for label in 0..2u16 {
                ds.push_encoded(&[a, b, label]).unwrap();
            }
            dsn.push_encoded(&[a, b]).unwrap();
        }
    }
    for &(a, b) in extra {
        let label = u16::from(a >= 2 && b != 1);
        ds.push_encoded(&[a, b, label]).unwrap();
        dsn.push_encoded(&[a, b]).unwrap();
    }
    let mut cat = Catalog::new();
    cat.add_table(Table::with_page_bytes("t", &ds, 256)).unwrap();
    cat.add_table(Table::with_page_bytes("tn", &dsn, 256)).unwrap();
    let e = Engine::new(cat);
    for ddl in [
        "CREATE MINING MODEL m_bayes ON t PREDICT label USING bayes",
        "CREATE MINING MODEL m_km ON t WITH 2 CLUSTERS USING kmeans",
        "CREATE MINING MODEL m_gmm ON tn WITH 2 CLUSTERS USING gmm",
    ] {
        let out = e.execute_sql(ddl).expect(ddl);
        assert!(matches!(out, StatementOutcome::ModelCreated { .. }), "{ddl}");
    }
    e
}

/// (model id, table id) pairs for the three cascaded models.
const MODELS: [(usize, usize); 3] = [(0, 0), (1, 0), (2, 1)];

/// Two Bayes models over the *same* class vocabulary for the agreement
/// predicate: `label` and `label2` encode different concepts, so the
/// models learn different surfaces and `MODELS AGREE` has a non-trivial
/// answer. Each model sees the other's label column as an ordinary
/// feature — the projected-model proxy lift must neutralize its own.
fn engine_with_agreeing_models(extra: &[(u16, u16)]) -> Engine {
    let schema = Schema::new(vec![
        Attribute::new("a", AttrDomain::categorical(["a0", "a1", "a2", "a3"])),
        Attribute::new("b", AttrDomain::categorical(["b0", "b1", "b2"])),
        Attribute::new("label", AttrDomain::categorical(["neg", "pos"])),
        Attribute::new("label2", AttrDomain::categorical(["neg", "pos"])),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    for &(a, b) in extra {
        let label = u16::from(a >= 2);
        let label2 = u16::from(b == 1);
        ds.push_encoded(&[a, b, label, label2]).unwrap();
    }
    let mut cat = Catalog::new();
    cat.add_table(Table::with_page_bytes("t", &ds, 256)).unwrap();
    let e = Engine::new(cat);
    for ddl in [
        "CREATE MINING MODEL m1 ON t PREDICT label USING bayes",
        "CREATE MINING MODEL m2 ON t PREDICT label2 USING bayes",
    ] {
        let out = e.execute_sql(ddl).expect(ddl);
        assert!(matches!(out, StatementOutcome::ModelCreated { .. }), "{ddl}");
    }
    e
}

/// The model's proxy table, rebuilt fresh from the model itself.
fn fresh_proxy(e: &Engine, model: usize) -> ProxyScore {
    e.catalog().model(model).model.proxy().expect("additive model must tabulate a proxy")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The heart of the soundness claim, checked directly against the
    /// scorer: on every row of the table, a `Unique` proxy decision
    /// names exactly the class the real model predicts. (Band rows make
    /// no claim — they are the fallback set by definition.)
    #[test]
    fn unique_decisions_agree_with_the_real_scorer(
        extra in proptest::collection::vec((0u16..4, 0u16..3), 40..120),
    ) {
        let e = engine_with_models(&extra);
        let catalog = e.catalog();
        for (model, table) in MODELS {
            let proxy = fresh_proxy(&e, model);
            let t = &catalog.table(table).table;
            let mut decided = 0u64;
            for r in 0..t.n_rows() as u32 {
                let row = t.row(r);
                match proxy.decide(&row) {
                    ProxyDecision::Unique(c) => {
                        decided += 1;
                        prop_assert_eq!(
                            c,
                            catalog.predict(model, &row),
                            "proxy and scorer diverged on model {} row {:?}", model, row
                        );
                    }
                    ProxyDecision::Band => {}
                }
            }
            // The cascade must actually decide something on these grids,
            // or the test proves nothing.
            prop_assert!(decided > 0, "model {} decided no rows at all", model);
        }
    }

    /// End to end through the executors: a cascaded plan returns the
    /// same rows as the cascade-free reference at every dop; every
    /// scored row is accounted as exactly one of accept, reject or
    /// band; and with the memo disabled the real scorer runs exactly
    /// once per band row — the band *is* the fallback-scorer set.
    #[test]
    fn cascade_execution_is_sound_and_band_equals_fallback_set(
        extra in proptest::collection::vec((0u16..4, 0u16..3), 40..120),
    ) {
        let e = engine_with_models(&extra);
        e.set_use_envelopes(false); // full scan: every row reaches the scorer
        for (model, table) in MODELS {
            for class in 0..2u16 {
                let expr = Expr::Mining(MiningPred::ClassEq { model, class: ClassId(class) });
                e.set_compile_models(false);
                let plan_ref = e.plan_predicate(table, expr.clone());
                e.set_compile_models(true);
                let plan_casc = e.plan_predicate(table, expr.clone());
                let catalog = e.catalog();
                let reference =
                    execute_opts(&plan_ref, &catalog, QueryGuard::unlimited(), &reference_opts())
                        .expect("reference run cannot fail");
                prop_assert_eq!(
                    reference.metrics.band_rows, 0,
                    "cascade-free reference must not report band rows"
                );

                let mut serial_counters = None;
                for dop in DOPS {
                    let got = execute_opts(
                        &plan_casc,
                        &catalog,
                        QueryGuard::unlimited(),
                        &ExecOptions::with_parallelism(dop),
                    )
                    .expect("cascaded run cannot fail");
                    prop_assert_eq!(
                        &got.rows, &reference.rows,
                        "cascade changed the row set: model {}, class {}, dop {}",
                        model, class, dop
                    );
                    let m = &got.metrics;
                    prop_assert_eq!(
                        m.cascade_accepts + m.cascade_rejects + m.band_rows,
                        m.rows_examined,
                        "every scored row is accept, reject or band: model {}", model
                    );
                    // Cascade decisions are deterministic: identical at
                    // every dop.
                    let counters = (m.cascade_accepts, m.cascade_rejects, m.band_rows);
                    match serial_counters {
                        None => serial_counters = Some(counters),
                        Some(expected) => prop_assert_eq!(
                            counters, expected,
                            "cascade counters diverged at dop {}", dop
                        ),
                    }
                }

                // Memo off: the real scorer runs exactly once per band
                // row — nothing more (Unique rows never invoke), nothing
                // less (every band row falls back).
                let no_memo = execute_opts(
                    &plan_casc,
                    &catalog,
                    QueryGuard::unlimited(),
                    &ExecOptions { memo_capacity: 0, ..ExecOptions::default() },
                )
                .expect("memo-free cascaded run cannot fail");
                prop_assert_eq!(&no_memo.rows, &reference.rows, "memo off changed rows");
                prop_assert_eq!(
                    no_memo.metrics.model_invocations,
                    no_memo.metrics.band_rows,
                    "band rows must equal the fallback-scorer set exactly: model {}", model
                );
                prop_assert_eq!(no_memo.metrics.memo_hits, 0, "disabled memo reported hits");

                // Memo on: decisions (and thus counters) are unchanged;
                // the memo can only absorb band-row scorer calls.
                let memo = execute_opts(
                    &plan_casc,
                    &catalog,
                    QueryGuard::unlimited(),
                    &reference_opts(),
                )
                .expect("memoized cascaded run cannot fail");
                prop_assert_eq!(&memo.rows, &reference.rows, "memo on changed rows");
                prop_assert_eq!(
                    (memo.metrics.cascade_accepts, memo.metrics.cascade_rejects,
                     memo.metrics.band_rows),
                    serial_counters.expect("dop sweep ran"),
                    "memo must not change cascade decisions"
                );
                prop_assert!(
                    memo.metrics.model_invocations <= memo.metrics.band_rows,
                    "memoized scorer calls cannot exceed the band: {} > {}",
                    memo.metrics.model_invocations, memo.metrics.band_rows
                );
            }
        }
    }

    /// `MODELS AGREE` is never compiled away (agreement is decided on
    /// raw class ids at prediction time), so its *direct* predictions
    /// must ride the cascade's predict path: a unique proxy argmax is
    /// the prediction, and with the memo off the real scorer runs
    /// exactly once per banded predict call — across both models.
    #[test]
    fn models_agree_rides_the_predict_path_cascade(
        extra in proptest::collection::vec((0u16..4, 0u16..3), 60..140),
    ) {
        let e = engine_with_agreeing_models(&extra);
        e.set_use_envelopes(false); // full scan: every row reaches eval
        let expr = Expr::Mining(MiningPred::ModelsAgree { m1: 0, m2: 1 });
        e.set_compile_models(false);
        let plan_ref = e.plan_predicate(0, expr.clone());
        e.set_compile_models(true);
        let plan_casc = e.plan_predicate(0, expr);
        let catalog = e.catalog();
        let reference =
            execute_opts(&plan_ref, &catalog, QueryGuard::unlimited(), &reference_opts())
                .expect("reference run cannot fail");
        prop_assert_eq!(reference.metrics.band_rows, 0, "reference must not cascade");

        for dop in DOPS {
            let got = execute_opts(
                &plan_casc,
                &catalog,
                QueryGuard::unlimited(),
                &ExecOptions::with_parallelism(dop),
            )
            .expect("cascaded run cannot fail");
            prop_assert_eq!(
                &got.rows, &reference.rows,
                "cascade changed the agreement row set at dop {}", dop
            );
        }

        // Memo off: each row makes two predict calls; every one either
        // decides uniquely (no scorer) or lands in the band and invokes
        // the scorer exactly once.
        let no_memo = execute_opts(
            &plan_casc,
            &catalog,
            QueryGuard::unlimited(),
            &ExecOptions { memo_capacity: 0, ..ExecOptions::default() },
        )
        .expect("memo-free cascaded run cannot fail");
        prop_assert_eq!(&no_memo.rows, &reference.rows, "memo off changed rows");
        prop_assert_eq!(
            no_memo.metrics.model_invocations,
            no_memo.metrics.band_rows,
            "banded predict calls must equal the fallback-scorer set exactly"
        );
        prop_assert!(
            no_memo.metrics.band_rows <= 2 * no_memo.metrics.rows_examined,
            "at most two predict calls per examined row"
        );
        prop_assert_eq!(no_memo.metrics.memo_hits, 0, "disabled memo reported hits");
    }
}
