//! Admission control: bounding concurrent query execution.
//!
//! Every connection thread must obtain a [`Permit`] before running a
//! statement against the engine. The controller enforces two limits:
//!
//! * `max_in_flight` — queries executing at once. Beyond it, requests
//!   wait in a queue.
//! * `max_queue` — requests allowed to wait. Beyond it, requests are
//!   refused immediately with [`AdmissionError::Busy`].
//!
//! A queued request that does not get a slot within `queue_timeout`
//! fails with [`AdmissionError::Timeout`]. Both rejections are typed
//! and retryable — the point is to convert overload into fast, honest
//! refusals instead of unbounded latency.
//!
//! The implementation is a mutex-guarded counter pair plus a condvar;
//! permits release their slot (and wake one waiter) on `Drop`, so a
//! panicking query still frees its slot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Limits enforced by the [`AdmissionController`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Queries allowed to execute concurrently.
    pub max_in_flight: usize,
    /// Requests allowed to wait for a slot before `Busy` refusals.
    pub max_queue: usize,
    /// How long a queued request may wait before `Timeout`.
    pub queue_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_in_flight: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_queue: 64,
            queue_timeout: Duration::from_secs(2),
        }
    }
}

impl AdmissionConfig {
    /// A config that effectively disables admission control (for
    /// benchmark comparison): limits far above any realistic load.
    pub fn unbounded() -> AdmissionConfig {
        AdmissionConfig {
            max_in_flight: usize::MAX / 2,
            max_queue: usize::MAX / 2,
            queue_timeout: Duration::from_secs(3600),
        }
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// In-flight limit reached and the queue is full.
    Busy {
        /// Queries executing at refusal time.
        in_flight: u64,
        /// Requests already queued at refusal time.
        queued: u64,
    },
    /// Queued, but no slot opened within the timeout.
    Timeout {
        /// Total time spent waiting, in milliseconds.
        waited_ms: u64,
    },
}

#[derive(Debug, Default)]
struct Slots {
    in_flight: usize,
    queued: usize,
}

/// Shared admission state. Cheap to clone (`Arc` inside).
#[derive(Debug, Clone)]
pub struct AdmissionController {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    cfg: AdmissionConfig,
    slots: Mutex<Slots>,
    freed: Condvar,
    admitted: AtomicU64,
    rejected_busy: AtomicU64,
    rejected_timeout: AtomicU64,
}

/// Point-in-time statistics, reported in the server's drain report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Permits granted over the controller's lifetime.
    pub admitted: u64,
    /// Requests refused because the queue was full.
    pub rejected_busy: u64,
    /// Requests refused after waiting out the queue timeout.
    pub rejected_timeout: u64,
}

impl AdmissionController {
    /// A controller enforcing `cfg`.
    pub fn new(cfg: AdmissionConfig) -> AdmissionController {
        AdmissionController {
            inner: Arc::new(Inner {
                cfg,
                slots: Mutex::new(Slots::default()),
                freed: Condvar::new(),
                admitted: AtomicU64::new(0),
                rejected_busy: AtomicU64::new(0),
                rejected_timeout: AtomicU64::new(0),
            }),
        }
    }

    /// Acquires an execution slot, waiting in the queue if necessary.
    pub fn admit(&self) -> Result<Permit, AdmissionError> {
        let inner = &self.inner;
        let mut slots = inner.slots.lock().unwrap_or_else(|p| p.into_inner());
        if slots.in_flight < inner.cfg.max_in_flight {
            slots.in_flight += 1;
            inner.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(Permit { inner: Arc::clone(inner) });
        }
        if slots.queued >= inner.cfg.max_queue {
            inner.rejected_busy.fetch_add(1, Ordering::Relaxed);
            return Err(AdmissionError::Busy {
                in_flight: slots.in_flight as u64,
                queued: slots.queued as u64,
            });
        }
        // Queue up and wait for a slot or the deadline.
        slots.queued += 1;
        let started = Instant::now();
        let deadline = started + inner.cfg.queue_timeout;
        loop {
            let now = Instant::now();
            if slots.in_flight < inner.cfg.max_in_flight {
                slots.queued -= 1;
                slots.in_flight += 1;
                inner.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(Permit { inner: Arc::clone(inner) });
            }
            if now >= deadline {
                slots.queued -= 1;
                inner.rejected_timeout.fetch_add(1, Ordering::Relaxed);
                return Err(AdmissionError::Timeout {
                    waited_ms: started.elapsed().as_millis() as u64,
                });
            }
            let (guard, _timed_out) = inner
                .freed
                .wait_timeout(slots, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            slots = guard;
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.inner.admitted.load(Ordering::Relaxed),
            rejected_busy: self.inner.rejected_busy.load(Ordering::Relaxed),
            rejected_timeout: self.inner.rejected_timeout.load(Ordering::Relaxed),
        }
    }

    /// Queries currently executing (diagnostic).
    pub fn in_flight(&self) -> usize {
        self.inner.slots.lock().unwrap_or_else(|p| p.into_inner()).in_flight
    }
}

/// An execution slot. Releases the slot (and wakes one queued waiter)
/// when dropped — including on panic, so a crashing query cannot leak
/// capacity.
#[derive(Debug)]
pub struct Permit {
    inner: Arc<Inner>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut slots = self.inner.slots.lock().unwrap_or_else(|p| p.into_inner());
        slots.in_flight = slots.in_flight.saturating_sub(1);
        drop(slots);
        self.inner.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn cfg(max_in_flight: usize, max_queue: usize, timeout_ms: u64) -> AdmissionConfig {
        AdmissionConfig {
            max_in_flight,
            max_queue,
            queue_timeout: Duration::from_millis(timeout_ms),
        }
    }

    #[test]
    fn admits_up_to_limit_then_queues_then_busies() {
        let ctl = AdmissionController::new(cfg(2, 1, 50));
        let p1 = ctl.admit().unwrap();
        let p2 = ctl.admit().unwrap();
        assert_eq!(ctl.in_flight(), 2);

        // Third request queues; fill the single queue slot from another
        // thread so a fourth is refused Busy immediately.
        let ctl2 = ctl.clone();
        let queued = thread::spawn(move || ctl2.admit());
        // Wait until the thread is actually queued.
        for _ in 0..200 {
            if ctl.inner.slots.lock().unwrap().queued == 1 {
                break;
            }
            thread::sleep(Duration::from_millis(1));
        }
        match ctl.admit() {
            Err(AdmissionError::Busy { in_flight, queued }) => {
                assert_eq!((in_flight, queued), (2, 1));
            }
            other => panic!("expected Busy, got {other:?}"),
        }

        // Free a slot: the queued thread gets it.
        drop(p1);
        let p3 = queued.join().unwrap().expect("queued request admitted after release");
        drop(p2);
        drop(p3);
        assert_eq!(ctl.in_flight(), 0);
        let stats = ctl.stats();
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.rejected_busy, 1);
    }

    #[test]
    fn queue_timeout_is_typed_and_bounded() {
        let ctl = AdmissionController::new(cfg(1, 4, 40));
        let _held = ctl.admit().unwrap();
        let started = Instant::now();
        match ctl.admit() {
            Err(AdmissionError::Timeout { waited_ms }) => {
                assert!(waited_ms >= 40, "waited at least the timeout, got {waited_ms}");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(started.elapsed() < Duration::from_secs(5), "did not hang");
        assert_eq!(ctl.stats().rejected_timeout, 1);
    }

    #[test]
    fn permit_drop_wakes_waiters_even_after_panic() {
        let ctl = AdmissionController::new(cfg(1, 4, 2_000));
        let ctl2 = ctl.clone();
        let crasher = thread::spawn(move || {
            let _permit = ctl2.admit().unwrap();
            panic!("query died");
        });
        assert!(crasher.join().is_err());
        // The slot the panicking thread held must be free again.
        let p = ctl.admit().expect("slot freed by panicked holder");
        drop(p);
        assert_eq!(ctl.in_flight(), 0);
    }

    #[test]
    fn unbounded_config_never_refuses() {
        let ctl = AdmissionController::new(AdmissionConfig::unbounded());
        let permits: Vec<_> = (0..256).map(|_| ctl.admit().unwrap()).collect();
        assert_eq!(ctl.in_flight(), 256);
        drop(permits);
        assert_eq!(ctl.in_flight(), 0);
    }
}
