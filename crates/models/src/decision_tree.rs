//! Binary decision trees (paper §3.1, after Quinlan's C4.5).
//!
//! Internal nodes test a single attribute: ordered attributes get a
//! `member <= cut` test (rendered in SQL against the original cut value),
//! categorical attributes get a member-subset test. Training greedily
//! minimizes class entropy, with depth / leaf-size stopping rules and
//! simple pessimistic-error subtree collapsing.

use crate::Classifier;
use mpq_types::{AttrId, ClassId, LabeledDataset, Member, MemberSet, Row, Schema, TypesError};

/// The test at an internal node. A row goes left when the test holds.
#[derive(Debug, Clone, PartialEq)]
pub enum Split {
    /// Ordered attribute: left iff `row[attr] <= cut_member`.
    LeMember {
        /// The attribute tested.
        attr: AttrId,
        /// Largest member index routed left.
        cut_member: Member,
    },
    /// Categorical attribute: left iff `row[attr] ∈ members`.
    InSet {
        /// The attribute tested.
        attr: AttrId,
        /// Members routed left.
        members: MemberSet,
    },
}

impl Split {
    /// The attribute this split tests.
    pub fn attr(&self) -> AttrId {
        match self {
            Split::LeMember { attr, .. } | Split::InSet { attr, .. } => *attr,
        }
    }

    /// Whether `row` goes down the left branch.
    #[inline]
    pub fn goes_left(&self, row: &Row) -> bool {
        match self {
            Split::LeMember { attr, cut_member } => row[attr.index()] <= *cut_member,
            Split::InSet { attr, members } => members.contains(row[attr.index()]),
        }
    }
}

/// A decision-tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A leaf predicting `class`; `support` counts training rows that
    /// landed here.
    Leaf {
        /// Predicted class.
        class: ClassId,
        /// Training rows that reached this leaf.
        support: usize,
    },
    /// An internal node.
    Internal {
        /// The test.
        split: Split,
        /// Branch taken when the test holds.
        left: Box<Node>,
        /// Branch taken otherwise.
        right: Box<Node>,
    },
}

impl Node {
    /// Number of leaves under (and including) this node.
    pub fn n_leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { left, right, .. } => left.n_leaves() + right.n_leaves(),
        }
    }

    /// Height of the subtree (a leaf has height 0).
    pub fn height(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Internal { left, right, .. } => 1 + left.height().max(right.height()),
        }
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Do not split nodes with fewer rows than this.
    pub min_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 12, min_leaf: 2 }
    }
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    schema: Schema,
    class_names: Vec<String>,
    root: Node,
}

impl DecisionTree {
    /// Trains a tree on `data` with the given parameters.
    pub fn train(data: &LabeledDataset, params: TreeParams) -> Result<Self, TypesError> {
        if data.is_empty() || data.n_classes() == 0 {
            return Err(TypesError::ArityMismatch { expected: 1, got: 0 });
        }
        let schema = data.data.schema().clone();
        let idx: Vec<u32> = (0..data.len() as u32).collect();
        let root = build(data, &schema, &idx, params, 0);
        Ok(DecisionTree { schema, class_names: data.class_names.clone(), root })
    }

    /// Builds a tree directly from a node structure — used by PMML import
    /// and by tests that need the paper's Figure 1 example verbatim.
    pub fn from_parts(schema: Schema, class_names: Vec<String>, root: Node) -> Result<Self, TypesError> {
        validate_node(&schema, class_names.len(), &root)?;
        Ok(DecisionTree { schema, class_names, root })
    }

    /// The root node; envelope extraction walks this.
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.root.n_leaves()
    }
}

fn validate_node(schema: &Schema, n_classes: usize, node: &Node) -> Result<(), TypesError> {
    match node {
        Node::Leaf { class, .. } => {
            if class.index() >= n_classes {
                return Err(TypesError::UnknownMember { member: format!("{class}") });
            }
            Ok(())
        }
        Node::Internal { split, left, right } => {
            let attr = split.attr();
            if attr.index() >= schema.len() {
                return Err(TypesError::UnknownMember { member: format!("{attr}") });
            }
            let card = schema.attr(attr).domain.cardinality();
            match split {
                Split::LeMember { cut_member, .. } => {
                    // A cut at the last member would route everything left.
                    if *cut_member + 1 >= card {
                        return Err(TypesError::UnknownMember {
                            member: format!("cut {cut_member} degenerate for domain {card}"),
                        });
                    }
                }
                Split::InSet { members, .. } => {
                    if members.domain() != card || members.is_empty() || members.is_full() {
                        return Err(TypesError::UnknownMember {
                            member: "degenerate set split".into(),
                        });
                    }
                }
            }
            validate_node(schema, n_classes, left)?;
            validate_node(schema, n_classes, right)
        }
    }
}

fn class_counts(data: &LabeledDataset, idx: &[u32]) -> Vec<usize> {
    let mut counts = vec![0usize; data.n_classes()];
    for &i in idx {
        counts[data.labels[i as usize].index()] += 1;
    }
    counts
}

fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.ln()
        })
        .sum()
}

fn majority(counts: &[usize]) -> ClassId {
    let best = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    ClassId(best as u16)
}

struct BestSplit {
    split: Split,
    weighted_entropy: f64,
}

fn build(data: &LabeledDataset, schema: &Schema, idx: &[u32], params: TreeParams, depth: usize) -> Node {
    let counts = class_counts(data, idx);
    let node_entropy = entropy(&counts);
    let leaf = Node::Leaf { class: majority(&counts), support: idx.len() };
    if node_entropy == 0.0 || depth >= params.max_depth || idx.len() < params.min_leaf * 2 {
        return leaf;
    }
    let Some(best) = find_best_split(data, schema, idx, &counts) else {
        return leaf;
    };
    // Zero-gain splits are allowed (XOR-style concepts have no first-split
    // gain); recursion still terminates because min_leaf keeps both sides
    // nonempty, and the collapse rule below undoes useless subtrees.
    debug_assert!(best.weighted_entropy <= node_entropy + 1e-9);
    let (li, ri): (Vec<u32>, Vec<u32>) =
        idx.iter().partition(|&&i| best.split.goes_left(data.data.row(i as usize)));
    if li.len() < params.min_leaf || ri.len() < params.min_leaf {
        return leaf;
    }
    let left = build(data, schema, &li, params, depth + 1);
    let right = build(data, schema, &ri, params, depth + 1);
    // Collapse: if both children predict the same class, the split bought
    // nothing the predictor can observe.
    if let (Node::Leaf { class: cl, .. }, Node::Leaf { class: cr, .. }) = (&left, &right) {
        if cl == cr {
            return leaf;
        }
    }
    Node::Internal { split: best.split, left: Box::new(left), right: Box::new(right) }
}

fn find_best_split(
    data: &LabeledDataset,
    schema: &Schema,
    idx: &[u32],
    total_counts: &[usize],
) -> Option<BestSplit> {
    let k = data.n_classes();
    let n = idx.len() as f64;
    let mut best: Option<BestSplit> = None;
    for (attr, a) in schema.iter() {
        let card = a.domain.cardinality() as usize;
        if card < 2 {
            continue;
        }
        // Per-member class histograms for this attribute.
        let mut hist = vec![0usize; card * k];
        for &i in idx {
            let m = data.data.row(i as usize)[attr.index()] as usize;
            hist[m * k + data.labels[i as usize].index()] += 1;
        }
        if a.domain.is_ordered() {
            // Prefix scan over member order: candidate cuts after each member.
            let mut left = vec![0usize; k];
            let mut left_n = 0usize;
            for m in 0..card - 1 {
                for c in 0..k {
                    left[c] += hist[m * k + c];
                }
                left_n += hist[m * k..(m + 1) * k].iter().sum::<usize>();
                if left_n == 0 || left_n == idx.len() {
                    continue;
                }
                let right: Vec<usize> = total_counts.iter().zip(&left).map(|(t, l)| t - l).collect();
                let w = (left_n as f64 * entropy(&left) + (n - left_n as f64) * entropy(&right)) / n;
                if best.as_ref().is_none_or(|b| w < b.weighted_entropy) {
                    best = Some(BestSplit {
                        split: Split::LeMember { attr, cut_member: m as Member },
                        weighted_entropy: w,
                    });
                }
            }
        } else {
            // Categorical: order members by purity toward the locally
            // dominant class, then scan prefixes (a standard Breiman-style
            // heuristic that avoids the 2^card subset enumeration).
            let dom = majority(total_counts).index();
            let mut members: Vec<usize> = (0..card).collect();
            let frac = |m: usize| {
                let tot: usize = hist[m * k..(m + 1) * k].iter().sum();
                if tot == 0 {
                    0.0
                } else {
                    hist[m * k + dom] as f64 / tot as f64
                }
            };
            members.sort_by(|&a, &b| frac(b).partial_cmp(&frac(a)).expect("finite fractions"));
            let mut left = vec![0usize; k];
            let mut left_n = 0usize;
            let mut in_left = MemberSet::empty(card as u16);
            for &m in members.iter().take(card - 1) {
                for c in 0..k {
                    left[c] += hist[m * k + c];
                }
                left_n += hist[m * k..(m + 1) * k].iter().sum::<usize>();
                in_left.insert(m as Member);
                if left_n == 0 || left_n == idx.len() {
                    continue;
                }
                let right: Vec<usize> = total_counts.iter().zip(&left).map(|(t, l)| t - l).collect();
                let w = (left_n as f64 * entropy(&left) + (n - left_n as f64) * entropy(&right)) / n;
                if best.as_ref().is_none_or(|b| w < b.weighted_entropy) {
                    best = Some(BestSplit {
                        split: Split::InSet { attr, members: in_left.clone() },
                        weighted_entropy: w,
                    });
                }
            }
        }
    }
    best
}

impl Classifier for DecisionTree {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    fn class_name(&self, c: ClassId) -> &str {
        &self.class_names[c.index()]
    }

    fn predict(&self, row: &Row) -> ClassId {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class, .. } => return *class,
                Node::Internal { split, left, right } => {
                    node = if split.goes_left(row) { left } else { right };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_types::{AttrDomain, Attribute, Dataset};

    fn xor_data() -> LabeledDataset {
        let schema = Schema::new(vec![
            Attribute::new("a", AttrDomain::categorical(["f", "t"])),
            Attribute::new("b", AttrDomain::categorical(["f", "t"])),
        ])
        .unwrap();
        let mut ds = Dataset::new(schema);
        let mut labels = Vec::new();
        for a in 0..2u16 {
            for b in 0..2u16 {
                for _ in 0..10 {
                    ds.push_encoded(&[a, b]).unwrap();
                    labels.push(ClassId(a ^ b));
                }
            }
        }
        LabeledDataset::new(ds, labels, vec!["zero".into(), "one".into()]).unwrap()
    }

    #[test]
    fn learns_xor_exactly() {
        let data = xor_data();
        let tree = DecisionTree::train(&data, TreeParams::default()).unwrap();
        assert_eq!(crate::accuracy(&tree, &data), 1.0);
        assert!(tree.n_leaves() >= 4, "xor needs at least 4 leaves, got {}", tree.n_leaves());
    }

    #[test]
    fn ordered_split_finds_threshold() {
        let schema = Schema::new(vec![Attribute::new(
            "age",
            AttrDomain::binned(vec![20.0, 40.0, 60.0, 80.0]).unwrap(),
        )])
        .unwrap();
        let mut ds = Dataset::new(schema);
        let mut labels = Vec::new();
        for m in 0..5u16 {
            for _ in 0..8 {
                ds.push_encoded(&[m]).unwrap();
                labels.push(ClassId(u16::from(m >= 3)));
            }
        }
        let data = LabeledDataset::new(ds, labels, vec!["young".into(), "old".into()]).unwrap();
        let tree = DecisionTree::train(&data, TreeParams::default()).unwrap();
        assert_eq!(crate::accuracy(&tree, &data), 1.0);
        match tree.root() {
            Node::Internal { split: Split::LeMember { cut_member, .. }, .. } => {
                assert_eq!(*cut_member, 2);
            }
            other => panic!("expected an ordered root split, got {other:?}"),
        }
    }

    #[test]
    fn depth_limit_is_respected() {
        let data = xor_data();
        let tree = DecisionTree::train(&data, TreeParams { max_depth: 1, min_leaf: 1 }).unwrap();
        assert!(tree.root().height() <= 1);
    }

    #[test]
    fn min_leaf_prevents_sliver_splits() {
        let data = xor_data(); // 40 rows
        let tree = DecisionTree::train(&data, TreeParams { max_depth: 10, min_leaf: 30 }).unwrap();
        // No split can give both sides >= 30 of 40 rows.
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn pure_data_yields_single_leaf() {
        let schema = Schema::new(vec![Attribute::new("x", AttrDomain::categorical(["a", "b"]))]).unwrap();
        let ds = Dataset::from_rows(schema, vec![vec![0], vec![1], vec![0]]).unwrap();
        let data = LabeledDataset::new(ds, vec![ClassId(0); 3], vec!["only".into(), "other".into()]).unwrap();
        let tree = DecisionTree::train(&data, TreeParams::default()).unwrap();
        assert!(matches!(tree.root(), Node::Leaf { class: ClassId(0), .. }));
    }

    /// The paper's Figure 1 tree:
    /// lowerBP > 91 ? (age > 63 ? (overweight ? c1 : c2) : c2)
    ///              : (upperBP > 130 ? c1 : c2)
    pub(crate) fn paper_figure1() -> DecisionTree {
        let schema = Schema::new(vec![
            Attribute::new("lowerBP", AttrDomain::binned(vec![91.0]).unwrap()),
            Attribute::new("age", AttrDomain::binned(vec![63.0]).unwrap()),
            Attribute::new("overweight", AttrDomain::categorical(["no", "yes"])),
            Attribute::new("upperBP", AttrDomain::binned(vec![130.0]).unwrap()),
        ])
        .unwrap();
        let c1 = |support| Node::Leaf { class: ClassId(0), support };
        let c2 = |support| Node::Leaf { class: ClassId(1), support };
        let overweight_node = Node::Internal {
            split: Split::InSet { attr: AttrId(2), members: MemberSet::of(2, [1]) },
            left: Box::new(c1(10)),
            right: Box::new(c2(10)),
        };
        let age_node = Node::Internal {
            // age > 63 goes left in the paper; we phrase it as `age <= 63`
            // routing left to c2.
            split: Split::LeMember { attr: AttrId(1), cut_member: 0 },
            left: Box::new(c2(10)),
            right: Box::new(overweight_node),
        };
        let upper_node = Node::Internal {
            split: Split::LeMember { attr: AttrId(3), cut_member: 0 },
            left: Box::new(c2(10)),
            right: Box::new(c1(10)),
        };
        let root = Node::Internal {
            split: Split::LeMember { attr: AttrId(0), cut_member: 0 },
            left: Box::new(upper_node),
            right: Box::new(age_node),
        };
        DecisionTree::from_parts(schema, vec!["c1".into(), "c2".into()], root).unwrap()
    }

    #[test]
    fn figure1_tree_predicts_as_described() {
        let t = paper_figure1();
        // lowerBP > 91 (member 1), age > 63 (member 1), overweight=yes (1): c1
        assert_eq!(t.predict(&[1, 1, 1, 0]), ClassId(0));
        // lowerBP > 91, age > 63, not overweight: c2
        assert_eq!(t.predict(&[1, 1, 0, 0]), ClassId(1));
        // lowerBP > 91, age <= 63: c2
        assert_eq!(t.predict(&[1, 0, 1, 1]), ClassId(1));
        // lowerBP <= 91, upperBP > 130: c1
        assert_eq!(t.predict(&[0, 0, 0, 1]), ClassId(0));
        // lowerBP <= 91, upperBP <= 130: c2
        assert_eq!(t.predict(&[0, 1, 1, 0]), ClassId(1));
    }

    #[test]
    fn from_parts_validates_structure() {
        let schema = Schema::new(vec![Attribute::new("x", AttrDomain::categorical(["a", "b"]))]).unwrap();
        // Class out of range.
        let bad = Node::Leaf { class: ClassId(7), support: 0 };
        assert!(DecisionTree::from_parts(schema.clone(), vec!["c".into()], bad).is_err());
        // Degenerate full-set split.
        let bad = Node::Internal {
            split: Split::InSet { attr: AttrId(0), members: MemberSet::full(2) },
            left: Box::new(Node::Leaf { class: ClassId(0), support: 0 }),
            right: Box::new(Node::Leaf { class: ClassId(0), support: 0 }),
        };
        assert!(DecisionTree::from_parts(schema, vec!["c".into()], bad).is_err());
    }
}
