//! The downstream-adoption path: a raw CSV file becomes an encoded
//! dataset, a trained model, a registered engine, and an optimized
//! mining query — no synthetic generators involved.

use mining_predicates::prelude::*;
use mpq_types::{load_csv, CsvData, CsvOptions, DiscretizeMethod};
use std::fmt::Write as _;
use std::sync::Arc;

/// Builds a churn-style CSV in memory: churn correlates with low spend
/// and many support tickets.
fn churn_csv(rows: usize) -> String {
    let mut out = String::from("age,plan,spend,tickets,churn\n");
    for i in 0..rows {
        let age = 20 + (i * 7) % 50;
        let plan = ["basic", "plus", "pro"][i % 3];
        let spend = if i % 10 < 2 { 5 + (i % 30) } else { 80 + (i * 13) % 400 };
        let tickets = if i % 10 < 2 { 4 + (i % 5) } else { i % 3 };
        let churn = if spend < 40 && tickets >= 3 { "yes" } else { "no" };
        writeln!(out, "{age},{plan},{spend},{tickets},{churn}").expect("string write");
    }
    out
}

#[test]
fn csv_to_optimized_query() {
    let text = churn_csv(5000);
    let opts = CsvOptions {
        label_column: Some("churn".into()),
        discretize: DiscretizeMethod::Entropy { max_bins: 6 },
        ..Default::default()
    };
    let CsvData::Labeled(train) = load_csv(&text, &opts).expect("valid csv") else {
        panic!("expected labeled data");
    };
    assert_eq!(train.n_classes(), 2);

    let tree = DecisionTree::train(&train, mpq_models::TreeParams::default()).expect("data");
    assert!(accuracy(&tree, &train) > 0.95, "the concept is nearly deterministic");

    // The same file re-loaded without the label is the queryable table.
    let unlabeled_opts = CsvOptions {
        label_column: Some("churn".into()),
        discretize: opts.discretize,
        ..Default::default()
    };
    let CsvData::Labeled(data2) = load_csv(&text, &unlabeled_opts).expect("valid csv") else {
        panic!("expected labeled");
    };
    let mut cat = Catalog::new();
    cat.add_table(Table::from_dataset("customers", &data2.data)).expect("fresh");
    cat.add_model("churn_model", Arc::new(tree), DeriveOptions::default()).expect("fresh");
    let engine = Engine::new(cat);

    let optimized =
        engine.query("SELECT * FROM customers WHERE PREDICT(churn_model) = 'yes'").expect("sql");
    engine.set_use_envelopes(false);
    let baseline =
        engine.query("SELECT * FROM customers WHERE PREDICT(churn_model) = 'yes'").expect("sql");
    assert_eq!(optimized.rows, baseline.rows);
    // ~20% churn: the envelope prunes most rows before the model runs.
    assert!(
        optimized.metrics.model_invocations < baseline.metrics.model_invocations,
        "envelope should prune model invocations: {} vs {}",
        optimized.metrics.model_invocations,
        baseline.metrics.model_invocations
    );
}

#[test]
fn csv_errors_are_reported() {
    let opts = CsvOptions { label_column: Some("missing".into()), ..Default::default() };
    assert!(load_csv("a,b\n1,2\n", &opts).is_err());
    assert!(load_csv("a,b\n1\n", &CsvOptions::default()).is_err());
}
