//! Wire-level robustness: the handshake timebox (a stalled client
//! cannot pin an accept slot), exactly-once retries over real sockets
//! (a response lost mid-flight must not double-apply the INSERT), and
//! the bounded dedup cache's refusal to silently re-apply an evicted
//! statement.

use mpq_client::{Client, ClientError, ReliableClient, RetryPolicy};
use mpq_engine::{Catalog, Engine, EngineError, StatementId, StatementOutcome, Table};
use mpq_server::{Server, ServerConfig, ServerError};
use mpq_types::{AttrDomain, Attribute, Dataset, Schema};
use std::io::Read;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "mpq-robust-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

fn demo_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("a", AttrDomain::categorical(["a0", "a1", "a2"])),
        Attribute::new("label", AttrDomain::categorical(["neg", "pos"])),
    ])
    .unwrap()
}

fn demo_table(name: &str) -> Table {
    let mut ds = Dataset::new(demo_schema());
    for i in 0..9u16 {
        ds.push_encoded(&[i % 3, u16::from(i % 3 == 2)]).unwrap();
    }
    Table::from_dataset(name, &ds)
}

fn rows_in(e: &Engine) -> usize {
    e.catalog().table(0).table.n_rows()
}

/// Satellite: a client that connects and then stalls — zero bytes, or
/// a dribble that never completes the `Hello` — is cut off within the
/// request-read budget. The accept slot frees, other clients are
/// unaffected, and the drain doesn't wait on the staller.
#[test]
fn stalled_handshake_cannot_pin_an_accept_slot() {
    let engine = Arc::new(Engine::new(Catalog::new()));
    let cfg = ServerConfig {
        request_read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), cfg).unwrap();
    let addr = server.local_addr();

    // Two stallers: one totally silent, one dribbling a single byte.
    let silent = TcpStream::connect(addr).expect("silent staller connects");
    let mut dribble = TcpStream::connect(addr).expect("dribbling staller connects");
    use std::io::Write;
    dribble.write_all(&[0x01]).expect("one lonely byte");

    // Both must be severed within the budget (plus scheduling slack):
    // the server replies with a Protocol error frame and closes, so a
    // blocking read drains a few bytes and then hits EOF.
    let started = Instant::now();
    for (mut stream, tag) in [(silent, "silent"), (dribble, "dribble")] {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("set deadline");
        let mut sink = Vec::new();
        stream.read_to_end(&mut sink).expect(tag);
    }
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "stalled handshakes must be cut in ~200ms, took {:?}",
        started.elapsed()
    );

    // A well-behaved client is completely unaffected before and after.
    let mut ok = Client::connect(addr).expect("healthy client connects");
    ok.statement("SET PARALLELISM 2").expect("healthy client executes");
    drop(ok);

    // The drain must not hang on a phantom connection.
    let report = server.shutdown();
    assert_eq!(report.connections, 3, "both stallers were counted and released");
}

/// The acceptance-criterion retry, over real sockets: the server
/// applies the INSERT, then the connection drops before the response
/// arrives. The client cannot tell "lost request" from "lost reply" —
/// it retries with the same statement id, and the mutation must apply
/// exactly once.
#[test]
fn retried_insert_after_dropped_response_applies_exactly_once() {
    let dir = temp_dir("dropped");
    let engine = Arc::new(Engine::open(&dir).expect("durable engine"));
    engine.create_table(demo_table("t")).unwrap();
    let before = rows_in(&engine);

    let server = Server::start(Arc::clone(&engine), ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let policy = RetryPolicy {
        initial_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(20),
        ..RetryPolicy::default()
    };
    let mut client = ReliableClient::with_nonce(addr.to_string(), policy, 7);

    // Session state set before the fault: the reconnect must replay it.
    client.statement("SET PARALLELISM 2").expect("set parallelism");

    engine.fault_injector().set_conn_drop_mid_response(true);
    let out = client
        .statement("INSERT INTO t VALUES ('a1', 'pos')")
        .expect("the retry succeeds after the drop");
    assert!(
        matches!(&out, StatementOutcome::Inserted { table, rows_inserted: 1, .. } if table == "t"),
        "got {out:?}"
    );
    assert_eq!(rows_in(&engine), before + 1, "exactly once, not twice");
    assert_eq!(client.reconnects(), 2, "initial connect + one recovery reconnect");

    // The write survives a crash without duplicating: the WAL holds one
    // stamped record, and replay records (not re-applies) its outcome.
    drop(client);
    server.shutdown();
    Arc::try_unwrap(engine).ok().expect("last handle").simulate_crash();
    let reopened = Engine::open(&dir).expect("reopen");
    assert_eq!(rows_in(&reopened), before + 1, "recovery preserves exactly-once");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: the per-session dedup window is bounded (256 outcomes).
/// A retry that arrives after its outcome was evicted gets a typed
/// refusal over the wire — never a silent second application.
#[test]
fn evicted_dedup_outcome_is_refused_over_the_wire() {
    let mut cat = Catalog::new();
    cat.add_table(demo_table("t")).unwrap();
    let engine = Arc::new(Engine::new(cat));
    let server = Server::start(Arc::clone(&engine), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let id = |seq: u64| StatementId { nonce: 42, seq };
    let first = client
        .statement_stamped("INSERT INTO t VALUES ('a0', 'neg')", id(0))
        .expect("seq 0 applies");

    // An immediate retry is a replay of the original outcome.
    let replay = client
        .statement_stamped("INSERT INTO t VALUES ('a0', 'neg')", id(0))
        .expect("fresh retry replays");
    assert_eq!(replay, first);

    // Push seq 0 out of the bounded window...
    for seq in 1..=256u64 {
        client
            .statement_stamped("INSERT INTO t VALUES ('a0', 'neg')", id(seq))
            .expect("fill the window");
    }
    let rows = rows_in(&engine);

    // ...and the late retry is refused, typed, with nothing applied.
    match client.statement_stamped("INSERT INTO t VALUES ('a0', 'neg')", id(0)) {
        Err(ClientError::Remote(ServerError::Engine(EngineError::Internal { detail }))) => {
            assert!(detail.contains("evicted"), "detail: {detail}");
        }
        other => panic!("expected typed eviction refusal, got {other:?}"),
    }
    assert_eq!(rows_in(&engine), rows, "the refused retry applied nothing");

    // The connection survives its refusal.
    client.statement("SET PARALLELISM 2").expect("session still usable");
    server.shutdown();
}
