//! Wire-level tests for standing subscriptions: `SUBSCRIBE` over the
//! protocol, server-push `Notify` frames to the subscribing session,
//! the lagging-subscriber gap marker, the one-shot overflow-pulse
//! fault, and the v6 gate.

use mpq_client::{Client, ClientError, Notification};
use mpq_engine::{Catalog, Engine, EngineError, StatementOutcome, Table};
use mpq_server::protocol::{
    decode_frame, encode_frame, Request, Response, DEFAULT_MAX_FRAME_LEN, PROTO_VERSION_V5,
};
use mpq_server::{Server, ServerConfig, ServerError};
use mpq_types::{AttrDomain, Attribute, Dataset, Schema};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn demo_engine() -> Arc<Engine> {
    let schema = Schema::new(vec![
        Attribute::new("x", AttrDomain::binned(vec![2.0, 4.0]).unwrap()),
        Attribute::new("f", AttrDomain::categorical(["a", "b"])),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    for i in 0..60u16 {
        ds.push_encoded(&[i % 3, i % 2]).unwrap();
    }
    let mut cat = Catalog::new();
    cat.add_table(Table::from_dataset("t", &ds)).unwrap();
    Arc::new(Engine::new(cat))
}

fn start_with_cap(engine: Arc<Engine>, cap: usize) -> Server {
    let cfg = ServerConfig { notify_queue_cap: cap, ..ServerConfig::default() };
    Server::start(engine, cfg).expect("bind loopback")
}

/// Polls until the stream of notifications has been quiet for a while.
fn collect_notifications(client: &mut Client, quiet: Duration) -> Vec<Notification> {
    let mut out = Vec::new();
    let mut last = Instant::now();
    while last.elapsed() < quiet {
        match client.poll_notification().expect("poll") {
            Some(n) => {
                out.push(n);
                last = Instant::now();
            }
            None => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    out
}

/// The happy path over the wire: subscribe, have *another* session
/// insert, and receive exactly the matching rows as push frames — with
/// the insert's own ack carrying the subscription counters.
#[test]
fn subscriber_receives_matches_pushed_after_acked_inserts() {
    let engine = demo_engine();
    let server = start_with_cap(engine, 256);
    let addr = server.local_addr();

    let mut subscriber = Client::connect_named(addr, "sub").unwrap();
    let sub_id = match subscriber.statement("SUBSCRIBE SELECT * FROM t WHERE x > 4").unwrap() {
        StatementOutcome::Subscribed { id } => id,
        other => panic!("{other:?}"),
    };

    let mut writer = Client::connect_named(addr, "writer").unwrap();
    let out = writer
        .statement("INSERT INTO t VALUES (5, 'a'), (1, 'b'), (5, 'b')")
        .unwrap();
    let StatementOutcome::Inserted { rows_inserted, subs_matched, .. } = out else {
        panic!("{out:?}");
    };
    assert_eq!(rows_inserted, 3);
    assert_eq!(subs_matched, 2, "two of the three inserted rows have x > 4");

    let delivered = collect_notifications(&mut subscriber, Duration::from_millis(200));
    let rows: Vec<(u64, u32, Vec<u16>)> = delivered
        .iter()
        .map(|n| match n {
            Notification::Match { subscription, row_id, row, table, .. } => {
                assert_eq!(table, "t");
                (*subscription, *row_id, row.clone())
            }
            g => panic!("unexpected {g:?}"),
        })
        .collect();
    // Members: x=5 encodes to 2, f 'a'/'b' to 0/1; seed table had 60
    // rows, so the inserted rows are 60, 61, 62.
    assert_eq!(rows, vec![(sub_id, 60, vec![2, 0]), (sub_id, 62, vec![2, 1])]);

    // Unsubscribe: later inserts push nothing.
    assert_eq!(
        subscriber.statement(&format!("UNSUBSCRIBE {sub_id}")).unwrap(),
        StatementOutcome::Unsubscribed { id: sub_id }
    );
    writer.statement("INSERT INTO t VALUES (5, 'a')").unwrap();
    assert!(collect_notifications(&mut subscriber, Duration::from_millis(120)).is_empty());

    // Unknown ids refuse with the typed engine error, over the wire.
    match subscriber.statement("UNSUBSCRIBE 9999") {
        Err(ClientError::Remote(ServerError::Engine(EngineError::UnknownSubscription(
            9999,
        )))) => {}
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

/// A subscriber that lags behind a bounded queue loses matches to a
/// single gap marker — and everything it *does* receive is in true
/// insert order. The writers never block.
#[test]
fn lagging_subscriber_gets_gap_marker_not_backpressure() {
    let engine = demo_engine();
    let server = start_with_cap(engine, 2);
    let addr = server.local_addr();

    let mut subscriber = Client::connect_named(addr, "laggard").unwrap();
    subscriber.statement("SUBSCRIBE SELECT * FROM t").unwrap();

    // One statement, ten matching rows: the engine hands all ten to the
    // sink back-to-back, far faster than the subscriber's 25 ms flush
    // tick, so the 2-slot queue must overflow.
    let mut writer = Client::connect_named(addr, "writer").unwrap();
    let values: Vec<String> = (0..10).map(|i| format!("({}, 'a')", [1, 3, 5][i % 3])).collect();
    writer.statement(&format!("INSERT INTO t VALUES {}", values.join(", "))).unwrap();

    let delivered = collect_notifications(&mut subscriber, Duration::from_millis(300));
    let (mut matches, mut dropped) = (0u64, 0u64);
    let mut row_ids = Vec::new();
    for n in &delivered {
        match n {
            Notification::Match { row_id, .. } => {
                matches += 1;
                row_ids.push(*row_id);
            }
            Notification::Gap { dropped: d } => dropped += d,
        }
    }
    assert_eq!(matches + dropped, 10, "every match is accounted for: {delivered:?}");
    assert!(dropped > 0, "a 2-slot queue cannot hold 10 matches: {delivered:?}");
    let mut sorted = row_ids.clone();
    sorted.sort_unstable();
    assert_eq!(row_ids, sorted, "survivors arrive in insert order");
    server.shutdown();
}

/// The injected overflow pulse drops exactly one notification and
/// surfaces as a gap marker on the wire — the degraded shape clients
/// must handle, produced on demand.
#[test]
fn overflow_pulse_fault_surfaces_as_wire_gap() {
    let engine = demo_engine();
    let faults = engine.fault_injector();
    let server = start_with_cap(Arc::clone(&engine), 256);
    let addr = server.local_addr();

    let mut subscriber = Client::connect_named(addr, "sub").unwrap();
    subscriber.statement("SUBSCRIBE SELECT * FROM t WHERE x > 4").unwrap();

    faults.set_notify_overflow_pulse(true);
    let mut writer = Client::connect_named(addr, "writer").unwrap();
    writer.statement("INSERT INTO t VALUES (5, 'a'), (5, 'b')").unwrap();

    let delivered = collect_notifications(&mut subscriber, Duration::from_millis(200));
    assert_eq!(delivered.len(), 2, "{delivered:?}");
    assert_eq!(delivered[0], Notification::Gap { dropped: 1 });
    assert!(
        matches!(&delivered[1], Notification::Match { row_id: 61, .. }),
        "{delivered:?}"
    );
    assert!(!faults.notify_overflow_pulse_armed(), "the pulse is one-shot");
    server.shutdown();
}

/// A pre-v6 peer cannot receive Notify frames, so its SUBSCRIBE is a
/// protocol violation, refused before it reaches the engine.
#[test]
fn pre_v6_peer_may_not_subscribe() {
    let engine = demo_engine();
    let server = start_with_cap(engine, 256);
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    let mut buf = Vec::new();
    let exchange = |stream: &mut TcpStream, buf: &mut Vec<u8>, req: &Request| -> Response {
        stream.write_all(&encode_frame(&req.encode())).unwrap();
        stream.flush().unwrap();
        let mut chunk = [0u8; 4096];
        loop {
            if let Ok((payload, consumed)) = decode_frame(buf, DEFAULT_MAX_FRAME_LEN) {
                buf.drain(..consumed);
                return Response::decode(&payload).unwrap();
            }
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server hung up mid-exchange");
            buf.extend_from_slice(&chunk[..n]);
        }
    };

    let hello = exchange(
        &mut stream,
        &mut buf,
        &Request::Hello { proto_version: PROTO_VERSION_V5, client: "old".into() },
    );
    assert!(matches!(hello, Response::Hello { .. }), "v5 still handshakes: {hello:?}");

    let resp = exchange(
        &mut stream,
        &mut buf,
        &Request::Statement { sql: "SUBSCRIBE SELECT * FROM t".into(), stmt_id: None },
    );
    match resp {
        Response::Error(ServerError::Protocol { detail }) => {
            assert!(detail.contains("protocol v6"), "{detail}");
        }
        other => panic!("expected a protocol refusal, got {other:?}"),
    }
    server.shutdown();
}
