//! A minimal XML reader/writer — just enough for the PMML subset.
//!
//! Supports elements, attributes, text content and the five standard
//! entities. No namespaces, processing instructions (skipped), comments
//! (skipped) or DTDs — PMML documents in the wild use plain elements.

use crate::PmmlError;

/// An XML element.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct XmlNode {
    /// Element name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements.
    pub children: Vec<XmlNode>,
    /// Concatenated text content (trimmed).
    pub text: String,
}

impl XmlNode {
    /// Creates an element with a name.
    pub fn new(name: impl Into<String>) -> XmlNode {
        XmlNode { name: name.into(), ..Default::default() }
    }

    /// Builder: adds an attribute.
    pub fn attr(mut self, k: impl Into<String>, v: impl std::fmt::Display) -> XmlNode {
        self.attrs.push((k.into(), v.to_string()));
        self
    }

    /// Builder: adds a child.
    pub fn child(mut self, c: XmlNode) -> XmlNode {
        self.children.push(c);
        self
    }

    /// Builder: sets text content.
    pub fn with_text(mut self, t: impl Into<String>) -> XmlNode {
        self.text = t.into();
        self
    }

    /// Looks up an attribute value.
    pub fn get_attr(&self, k: &str) -> Option<&str> {
        self.attrs.iter().find(|(n, _)| n == k).map(|(_, v)| v.as_str())
    }

    /// Required attribute, with a useful error.
    pub fn req_attr(&self, k: &str) -> Result<&str, PmmlError> {
        self.get_attr(k).ok_or_else(|| PmmlError::Structure {
            detail: format!("<{}> missing attribute {k:?}", self.name),
        })
    }

    /// First child with the given element name.
    pub fn find(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Required child, with a useful error.
    pub fn req_child(&self, name: &str) -> Result<&XmlNode, PmmlError> {
        self.find(name).ok_or_else(|| PmmlError::Structure {
            detail: format!("<{}> missing child <{name}>", self.name),
        })
    }

    /// All children with the given element name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Serializes the tree with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if !self.text.is_empty() {
            out.push_str(&escape(&self.text));
        }
        if !self.children.is_empty() {
            out.push('\n');
            for c in &self.children {
                c.write(out, depth + 1);
            }
            for _ in 0..depth {
                out.push_str("  ");
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
        .replace('\'', "&apos;")
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Parses a single-rooted XML document.
pub fn parse(input: &str) -> Result<XmlNode, PmmlError> {
    let mut p = XmlParser { bytes: input.as_bytes(), pos: 0 };
    p.skip_misc();
    let root = p.element()?;
    p.skip_misc();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct XmlParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl XmlParser<'_> {
    fn err(&self, detail: impl Into<String>) -> PmmlError {
        PmmlError::Xml { at: self.pos, detail: detail.into() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Skips whitespace, XML declarations, comments and DOCTYPE noise.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>");
            } else if self.starts_with("<!--") {
                self.skip_until("-->");
            } else if self.starts_with("<!") {
                self.skip_until(">");
            } else {
                return;
            }
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes.get(self.pos..).is_some_and(|rest| rest.starts_with(s.as_bytes()))
    }

    fn skip_until(&mut self, end: &str) {
        while self.pos < self.bytes.len() && !self.starts_with(end) {
            self.pos += 1;
        }
        self.pos = (self.pos + end.len()).min(self.bytes.len());
    }

    fn name(&mut self) -> Result<String, PmmlError> {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let c = self.bytes[self.pos] as char;
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == ':' || c == '.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn element(&mut self) -> Result<XmlNode, PmmlError> {
        if !self.starts_with("<") {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let mut node = XmlNode::new(self.name()?);
        // Attributes.
        loop {
            self.skip_ws();
            if self.starts_with("/>") {
                self.pos += 2;
                return Ok(node);
            }
            if self.starts_with(">") {
                self.pos += 1;
                break;
            }
            let k = self.name()?;
            self.skip_ws();
            if !self.starts_with("=") {
                return Err(self.err("expected '=' in attribute"));
            }
            self.pos += 1;
            self.skip_ws();
            let quote = *self.bytes.get(self.pos).ok_or_else(|| self.err("eof in attribute"))?;
            if quote != b'"' && quote != b'\'' {
                return Err(self.err("expected quoted attribute value"));
            }
            self.pos += 1;
            let start = self.pos;
            while self.pos < self.bytes.len() && self.bytes[self.pos] != quote {
                self.pos += 1;
            }
            if self.pos >= self.bytes.len() {
                return Err(self.err("eof inside attribute value"));
            }
            let v = unescape(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
            self.pos += 1; // closing quote
            node.attrs.push((k, v));
        }
        // Content.
        loop {
            if self.starts_with("<!--") {
                self.skip_until("-->");
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != node.name {
                    return Err(self.err(format!(
                        "mismatched close tag: <{}> closed by </{close}>",
                        node.name
                    )));
                }
                self.skip_ws();
                if !self.starts_with(">") {
                    return Err(self.err("expected '>' after close tag"));
                }
                self.pos += 1;
                node.text = node.text.trim().to_string();
                return Ok(node);
            }
            if self.starts_with("<") {
                node.children.push(self.element()?);
                continue;
            }
            if self.pos >= self.bytes.len() {
                return Err(self.err(format!("eof inside <{}>", node.name)));
            }
            let start = self.pos;
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
                self.pos += 1;
            }
            node.text.push_str(&unescape(&String::from_utf8_lossy(&self.bytes[start..self.pos])));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_document() {
        let doc = XmlNode::new("PMML")
            .attr("version", "2.0")
            .child(XmlNode::new("Header").attr("copyright", "x&y"))
            .child(XmlNode::new("Value").with_text("a < b"));
        let text = doc.to_string_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_declarations_and_comments() {
        let input = r#"<?xml version="1.0"?>
            <!-- a comment -->
            <root a="1"><!-- inner --><child/></root>"#;
        let node = parse(input).unwrap();
        assert_eq!(node.name, "root");
        assert_eq!(node.get_attr("a"), Some("1"));
        assert_eq!(node.children.len(), 1);
    }

    #[test]
    fn escaping_roundtrips() {
        let doc = XmlNode::new("t").attr("v", "\"<&>'").with_text("<tag> & 'quote'");
        let back = parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(back.get_attr("v"), Some("\"<&>'"));
        assert_eq!(back.text, "<tag> & 'quote'");
    }

    #[test]
    fn errors_on_malformed_input() {
        assert!(parse("<a><b></a>").is_err(), "mismatched tags");
        assert!(parse("<a").is_err(), "unterminated tag");
        assert!(parse("<a/>junk").is_err(), "trailing content");
        assert!(parse("<a x=1/>").is_err(), "unquoted attribute");
    }

    #[test]
    fn helpers_navigate_structure() {
        let doc = parse(r#"<m><f n="a"/><f n="b"/><g/></m>"#).unwrap();
        assert_eq!(doc.find_all("f").count(), 2);
        assert!(doc.find("g").is_some());
        assert!(doc.find("h").is_none());
        assert!(doc.req_child("h").is_err());
        assert!(doc.find("f").unwrap().req_attr("n").is_ok());
        assert!(doc.find("f").unwrap().req_attr("zz").is_err());
    }
}
