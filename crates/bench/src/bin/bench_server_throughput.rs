//! Server throughput benchmark: queries-per-second and latency
//! percentiles over the wire at 1/8/32/128 concurrent clients, with and
//! without admission control, writing `BENCH_server_throughput.json`.
//!
//! Each client thread opens its own connection and replays a fixed
//! mining-predicate query back-to-back for a fixed wall-clock window;
//! the harness records every request's latency and reports p50/p99 plus
//! aggregate qps. The admission-controlled leg bounds in-flight
//! execution at the core count (refusals are counted, and the client
//! retries after a refusal, as a well-behaved caller would); the
//! uncontrolled leg lets every connection execute at once — the
//! comparison shows what the controller buys at high fan-in: bounded
//! tail latency instead of thundering-herd collapse.
//!
//! Usage: `bench_server_throughput [out.json]` (default
//! `BENCH_server_throughput.json` in the current directory).

use mpq_client::{Client, ClientError};
use mpq_engine::{Catalog, Engine, Table};
use mpq_server::{AdmissionConfig, Server, ServerConfig, ServerError};
use mpq_types::{AttrDomain, AttrId, Attribute, Dataset, Schema};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_ROWS: usize = 120_000;
const CLIENTS: [usize; 4] = [1, 8, 32, 128];
const MEASURE_WINDOW: Duration = Duration::from_millis(1500);

fn build_engine() -> Arc<Engine> {
    let schema = Schema::new(vec![
        Attribute::new("a", AttrDomain::categorical(["a0", "a1", "a2", "a3"])),
        Attribute::new("b", AttrDomain::categorical(["b0", "b1", "b2"])),
        Attribute::new("label", AttrDomain::categorical(["neg", "pos"])),
    ])
    .expect("schema");
    let mut ds = Dataset::new(schema);
    for i in 0..N_ROWS {
        let (a, b) = ((i % 4) as u16, ((i / 4) % 3) as u16);
        let label = u16::from(a >= 2 && b != 1);
        ds.push_encoded(&[a, b, label]).expect("row");
    }
    let mut cat = Catalog::new();
    let t = cat.add_table(Table::from_dataset("t", &ds)).expect("table");
    cat.create_index(t, &[AttrId(0)]);
    cat.create_index(t, &[AttrId(1)]);
    let e = Engine::new(cat);
    // Each query stays single-threaded: concurrency comes from the
    // clients, not from nesting a parallel scan under 128 connections.
    e.set_parallelism(1);
    e.execute_sql("CREATE MINING MODEL m ON t PREDICT label USING decision_tree")
        .expect("model");
    Arc::new(e)
}

const SQL: &str = "SELECT * FROM t WHERE PREDICT(m) = 'pos' AND a = 'a2'";

struct Leg {
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    requests: u64,
    refusals: u64,
}

/// Runs `n_clients` connections against `addr` for the measurement
/// window; returns aggregate qps and latency percentiles.
fn run_leg(addr: std::net::SocketAddr, n_clients: usize) -> Leg {
    let stop_at = Instant::now() + MEASURE_WINDOW;
    let threads: Vec<_> = (0..n_clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut latencies_us: Vec<u64> = Vec::new();
                let mut refusals = 0u64;
                while Instant::now() < stop_at {
                    let t0 = Instant::now();
                    match client.statement(SQL) {
                        Ok(_) => latencies_us.push(t0.elapsed().as_micros() as u64),
                        Err(ClientError::Remote(
                            ServerError::Busy { .. } | ServerError::QueueTimeout { .. },
                        )) => {
                            // A typed refusal: back off briefly and retry.
                            refusals += 1;
                            std::thread::sleep(Duration::from_micros(500));
                        }
                        Err(e) => panic!("bench client failed: {e}"),
                    }
                }
                let _ = client.goodbye();
                (latencies_us, refusals)
            })
        })
        .collect();

    let mut latencies: Vec<u64> = Vec::new();
    let mut refusals = 0u64;
    for t in threads {
        let (lat, refused) = t.join().expect("bench client thread");
        latencies.extend(lat);
        refusals += refused;
    }
    // Every client stops at the same deadline, so the window length is
    // the denominator (in-flight tails past it are negligible).
    let elapsed = MEASURE_WINDOW.as_secs_f64();
    latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return f64::NAN;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx] as f64 / 1e3
    };
    Leg {
        qps: latencies.len() as f64 / elapsed,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        requests: latencies.len() as u64,
        refusals,
    }
}

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_server_throughput.json".into());
    eprintln!("building {N_ROWS}-row engine ...");
    let engine = build_engine();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);

    let mut results = Vec::new();
    for (label, admission) in [
        ("admission", AdmissionConfig {
            max_in_flight: cores,
            max_queue: 256,
            queue_timeout: Duration::from_secs(5),
        }),
        ("unbounded", AdmissionConfig::unbounded()),
    ] {
        let cfg = ServerConfig { admission, ..ServerConfig::default() };
        let server = Server::start(Arc::clone(&engine), cfg).expect("bind");
        let addr = server.local_addr();
        // Warm the plan cache so every leg measures execution, not
        // first-time planning.
        let mut warm = Client::connect(addr).expect("warm connect");
        warm.statement(SQL).expect("warmup");
        let _ = warm.goodbye();

        for n_clients in CLIENTS {
            let leg = run_leg(addr, n_clients);
            eprintln!(
                "{label:>9} · {n_clients:>3} clients: {:>7.0} qps, p50 {:>7.2} ms, p99 {:>8.2} ms ({} requests, {} refusals)",
                leg.qps, leg.p50_ms, leg.p99_ms, leg.requests, leg.refusals
            );
            results.push(format!(
                "    {{\"admission\": \"{label}\", \"clients\": {n_clients}, \
                 \"qps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
                 \"requests\": {}, \"refusals\": {}}}",
                leg.qps, leg.p50_ms, leg.p99_ms, leg.requests, leg.refusals
            ));
        }
        let report = server.shutdown();
        eprintln!("{label:>9} · {report}");
    }

    let json = format!(
        "{{\n  \"benchmark\": \"server_throughput\",\n  \"table_rows\": {N_ROWS},\n  \
         \"query\": \"{SQL}\",\n  \"measure_window_ms\": {},\n  \
         \"admission_max_in_flight\": {cores},\n  \"results\": [\n{}\n  ]\n}}\n",
        MEASURE_WINDOW.as_millis(),
        results.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("wrote {out_path}");
}
