//! Region algebra over the discretized attribute grid.
//!
//! A [`Region`] is the paper's unit of envelope construction: a hyper-
//! rectangle in the grid, one constraint per dimension. Ordered (binned)
//! dimensions carry contiguous member ranges so regions stay expressible
//! as SQL range predicates; unordered categorical dimensions carry member
//! sets (SQL `IN` lists). The top-down derivation shrinks, splits and
//! merges regions; rule/tree extraction intersects them; the rewriter
//! subtracts them.

use mpq_types::{AttrId, Member, MemberSet, Row, Schema};

/// Per-dimension constraint of a [`Region`]. Invariant: never empty.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DimSet {
    /// Contiguous member range `lo..=hi` on an ordered dimension.
    Range {
        /// Lowest member included.
        lo: Member,
        /// Highest member included.
        hi: Member,
    },
    /// Arbitrary member set on an unordered dimension.
    Set(MemberSet),
}

impl DimSet {
    /// The full constraint for a domain of `card` members on a dimension
    /// whose orderedness is `ordered`.
    pub fn full(card: u16, ordered: bool) -> Self {
        debug_assert!(card > 0);
        if ordered {
            DimSet::Range { lo: 0, hi: card - 1 }
        } else {
            DimSet::Set(MemberSet::full(card))
        }
    }

    /// Number of members admitted.
    pub fn len(&self) -> u32 {
        match self {
            DimSet::Range { lo, hi } => (*hi - *lo) as u32 + 1,
            DimSet::Set(s) => s.len(),
        }
    }

    /// DimSets are never empty, so this is always false; present for
    /// iterator-style symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether member `m` is admitted.
    #[inline]
    pub fn contains(&self, m: Member) -> bool {
        match self {
            DimSet::Range { lo, hi } => *lo <= m && m <= *hi,
            DimSet::Set(s) => s.contains(m),
        }
    }

    /// Whether this constraint admits the whole domain of `card` members.
    pub fn is_full(&self, card: u16) -> bool {
        match self {
            DimSet::Range { lo, hi } => *lo == 0 && *hi == card - 1,
            DimSet::Set(s) => s.is_full(),
        }
    }

    /// Iterates admitted members in increasing order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = Member> + '_> {
        match self {
            DimSet::Range { lo, hi } => Box::new(*lo..=*hi),
            DimSet::Set(s) => Box::new(s.iter()),
        }
    }

    /// Intersection; `None` when empty.
    pub fn intersect(&self, other: &DimSet) -> Option<DimSet> {
        match (self, other) {
            (DimSet::Range { lo: a, hi: b }, DimSet::Range { lo: c, hi: d }) => {
                let lo = *a.max(c);
                let hi = *b.min(d);
                (lo <= hi).then_some(DimSet::Range { lo, hi })
            }
            (DimSet::Set(a), DimSet::Set(b)) => {
                let mut s = a.clone();
                s.intersect_with(b);
                (!s.is_empty()).then_some(DimSet::Set(s))
            }
            // Mixed kinds never occur on the same dimension.
            _ => unreachable!("mismatched DimSet kinds on one dimension"),
        }
    }

    /// Union when representable (any two sets; ranges only when they
    /// overlap or touch). `None` when the union of ranges would not be
    /// contiguous.
    pub fn union(&self, other: &DimSet) -> Option<DimSet> {
        match (self, other) {
            (DimSet::Range { lo: a, hi: b }, DimSet::Range { lo: c, hi: d }) => {
                // Contiguous iff they overlap or are adjacent.
                if (*c as u32) > (*b as u32) + 1 || (*a as u32) > (*d as u32) + 1 {
                    None
                } else {
                    Some(DimSet::Range { lo: *a.min(c), hi: *b.max(d) })
                }
            }
            (DimSet::Set(a), DimSet::Set(b)) => {
                let mut s = a.clone();
                s.union_with(b);
                Some(DimSet::Set(s))
            }
            _ => unreachable!("mismatched DimSet kinds on one dimension"),
        }
    }

    /// The members of `self` not in `other`, as zero, one or two DimSets
    /// (ranges split into the below/above pieces).
    pub fn subtract(&self, other: &DimSet) -> Vec<DimSet> {
        match (self, other) {
            (DimSet::Range { lo: a, hi: b }, DimSet::Range { lo: c, hi: d }) => {
                let mut out = Vec::new();
                if c > a {
                    out.push(DimSet::Range { lo: *a, hi: (*c - 1).min(*b) });
                }
                if d < b {
                    out.push(DimSet::Range { lo: (*d + 1).max(*a), hi: *b });
                }
                // Disjoint case produces `self` once, not twice.
                if *c > *b || *d < *a {
                    return vec![self.clone()];
                }
                out
            }
            (DimSet::Set(a), DimSet::Set(b)) => {
                let mut s = a.clone();
                s.subtract(b);
                if s.is_empty() {
                    Vec::new()
                } else {
                    vec![DimSet::Set(s)]
                }
            }
            _ => unreachable!("mismatched DimSet kinds on one dimension"),
        }
    }

    /// Whether every member of `self` is admitted by `other`.
    pub fn is_subset(&self, other: &DimSet) -> bool {
        match (self, other) {
            (DimSet::Range { lo: a, hi: b }, DimSet::Range { lo: c, hi: d }) => c <= a && b <= d,
            (DimSet::Set(a), DimSet::Set(b)) => a.is_subset(b),
            _ => unreachable!("mismatched DimSet kinds on one dimension"),
        }
    }
}

/// A hyper-rectangular region of the attribute grid: one [`DimSet`] per
/// attribute. Invariant: no dimension is empty (empty regions are
/// represented as `None` at API boundaries).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Region {
    dims: Vec<DimSet>,
}

impl Region {
    /// The region covering the whole grid of `schema`.
    pub fn full(schema: &Schema) -> Region {
        Region {
            dims: schema
                .attrs()
                .iter()
                .map(|a| DimSet::full(a.domain.cardinality(), a.domain.is_ordered()))
                .collect(),
        }
    }

    /// Builds a region from per-dimension constraints. Panics in debug
    /// builds if the arity is wrong.
    pub fn from_dims(dims: Vec<DimSet>) -> Region {
        Region { dims }
    }

    /// The single-cell region at `cell`.
    pub fn cell(schema: &Schema, cell: &Row) -> Region {
        Region {
            dims: cell
                .iter()
                .zip(schema.attrs())
                .map(|(&m, a)| {
                    if a.domain.is_ordered() {
                        DimSet::Range { lo: m, hi: m }
                    } else {
                        DimSet::Set(MemberSet::of(a.domain.cardinality(), [m]))
                    }
                })
                .collect(),
        }
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// The constraint on dimension `d`.
    pub fn dim(&self, d: usize) -> &DimSet {
        &self.dims[d]
    }

    /// Replaces the constraint on dimension `d`.
    pub fn with_dim(&self, d: usize, set: DimSet) -> Region {
        let mut r = self.clone();
        r.dims[d] = set;
        r
    }

    /// Whether the encoded row/cell lies inside the region.
    #[inline]
    pub fn contains(&self, cell: &Row) -> bool {
        debug_assert_eq!(cell.len(), self.dims.len());
        self.dims.iter().zip(cell).all(|(s, &m)| s.contains(m))
    }

    /// Number of grid cells covered (saturating).
    pub fn cardinality(&self) -> u64 {
        self.dims.iter().fold(1u64, |acc, s| acc.saturating_mul(s.len() as u64))
    }

    /// True if the region is a single cell.
    pub fn is_cell(&self) -> bool {
        self.dims.iter().all(|s| s.len() == 1)
    }

    /// True if the region covers the whole grid of `schema`.
    pub fn is_full(&self, schema: &Schema) -> bool {
        self.dims
            .iter()
            .zip(schema.attrs())
            .all(|(s, a)| s.is_full(a.domain.cardinality()))
    }

    /// Intersection; `None` when empty.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        debug_assert_eq!(self.dims.len(), other.dims.len());
        let mut dims = Vec::with_capacity(self.dims.len());
        for (a, b) in self.dims.iter().zip(&other.dims) {
            dims.push(a.intersect(b)?);
        }
        Some(Region { dims })
    }

    /// Whether `self` is completely inside `other`.
    pub fn is_subset(&self, other: &Region) -> bool {
        self.dims.iter().zip(&other.dims).all(|(a, b)| a.is_subset(b))
    }

    /// `self \ other` as a set of disjoint regions (the standard
    /// orthogonal decomposition: peel one dimension at a time).
    pub fn subtract(&self, other: &Region) -> Vec<Region> {
        let Some(core) = self.intersect(other) else {
            return vec![self.clone()];
        };
        let mut out = Vec::new();
        let mut rest = self.clone();
        for d in 0..self.dims.len() {
            for piece in rest.dims[d].subtract(&core.dims[d]) {
                out.push(rest.with_dim(d, piece));
            }
            // Clamp this dimension to the core and continue peeling the
            // remaining dimensions.
            rest.dims[d] = core.dims[d].clone();
        }
        out
    }

    /// Merges two regions into one when they differ in at most one
    /// dimension whose union is representable. This is the merge step at
    /// the end of the paper's Algorithm 1.
    pub fn try_merge(&self, other: &Region) -> Option<Region> {
        debug_assert_eq!(self.dims.len(), other.dims.len());
        let mut differing: Option<usize> = None;
        for (d, (a, b)) in self.dims.iter().zip(&other.dims).enumerate() {
            if a != b {
                if differing.is_some() {
                    return None;
                }
                differing = Some(d);
            }
        }
        let Some(d) = differing else {
            return Some(self.clone()); // identical regions
        };
        let union = self.dims[d].union(&other.dims[d])?;
        // For ranges, only merge when the union is exactly the two parts
        // (no gap) — `union` already guarantees contiguity.
        Some(self.with_dim(d, union))
    }

    /// Iterates every cell of the region (exponential; used by the
    /// enumeration baseline and small-grid tests only).
    pub fn cells(&self) -> CellIter<'_> {
        CellIter {
            dims: &self.dims,
            current: self.dims.iter().map(|s| s.iter().next().expect("nonempty")).collect(),
            done: false,
        }
    }
}

/// Iterator over all cells of a region, odometer-style.
pub struct CellIter<'a> {
    dims: &'a [DimSet],
    current: Vec<Member>,
    done: bool,
}

impl Iterator for CellIter<'_> {
    type Item = Vec<Member>;

    fn next(&mut self) -> Option<Vec<Member>> {
        if self.done {
            return None;
        }
        let out = self.current.clone();
        // Advance the odometer.
        let mut d = self.dims.len();
        loop {
            if d == 0 {
                self.done = true;
                break;
            }
            d -= 1;
            let cur = self.current[d];
            if let Some(next) = self.dims[d].iter().find(|&m| m > cur) {
                self.current[d] = next;
                for dd in d + 1..self.dims.len() {
                    self.current[dd] = self.dims[dd].iter().next().expect("nonempty");
                }
                break;
            }
        }
        Some(out)
    }
}

/// Convenience: a region constraining a single ordered attribute of
/// `schema` to `lo..=hi`, all other dimensions full.
pub fn range_region(schema: &Schema, attr: AttrId, lo: Member, hi: Member) -> Region {
    Region::full(schema).with_dim(attr.index(), DimSet::Range { lo, hi })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_types::{AttrDomain, Attribute};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("o", AttrDomain::binned(vec![1.0, 2.0, 3.0]).unwrap()), // 4 members
            Attribute::new("c", AttrDomain::categorical(["a", "b", "c"])),         // 3 members
        ])
        .unwrap()
    }

    #[test]
    fn full_region_covers_everything() {
        let s = schema();
        let r = Region::full(&s);
        assert_eq!(r.cardinality(), 12);
        assert!(r.is_full(&s));
        for m0 in 0..4u16 {
            for m1 in 0..3u16 {
                assert!(r.contains(&[m0, m1]));
            }
        }
    }

    #[test]
    fn dimset_intersect_union_subtract() {
        let a = DimSet::Range { lo: 0, hi: 2 };
        let b = DimSet::Range { lo: 2, hi: 3 };
        assert_eq!(a.intersect(&b), Some(DimSet::Range { lo: 2, hi: 2 }));
        assert_eq!(a.union(&b), Some(DimSet::Range { lo: 0, hi: 3 }));
        assert_eq!(a.subtract(&b), vec![DimSet::Range { lo: 0, hi: 1 }]);
        let far = DimSet::Range { lo: 5, hi: 6 };
        assert_eq!(a.union(&far), None, "gap prevents contiguous union");
        assert_eq!(a.intersect(&far), None);
        assert_eq!(a.subtract(&far), vec![a.clone()]);
        // Adjacent ranges merge.
        let adj = DimSet::Range { lo: 3, hi: 4 };
        assert_eq!(a.union(&adj), Some(DimSet::Range { lo: 0, hi: 4 }));
    }

    #[test]
    fn dimset_sets() {
        let a = DimSet::Set(MemberSet::of(5, [0, 2, 4]));
        let b = DimSet::Set(MemberSet::of(5, [2, 3]));
        assert_eq!(a.intersect(&b), Some(DimSet::Set(MemberSet::of(5, [2]))));
        assert_eq!(a.union(&b), Some(DimSet::Set(MemberSet::of(5, [0, 2, 3, 4]))));
        assert_eq!(a.subtract(&b), vec![DimSet::Set(MemberSet::of(5, [0, 4]))]);
        assert!(DimSet::Set(MemberSet::of(5, [2])).is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn range_subtract_middle_splits_in_two() {
        let a = DimSet::Range { lo: 0, hi: 5 };
        let mid = DimSet::Range { lo: 2, hi: 3 };
        assert_eq!(
            a.subtract(&mid),
            vec![DimSet::Range { lo: 0, hi: 1 }, DimSet::Range { lo: 4, hi: 5 }]
        );
    }

    #[test]
    fn region_contains_and_cardinality() {
        let s = schema();
        let r = Region::full(&s)
            .with_dim(0, DimSet::Range { lo: 1, hi: 2 })
            .with_dim(1, DimSet::Set(MemberSet::of(3, [0, 2])));
        assert_eq!(r.cardinality(), 4);
        assert!(r.contains(&[1, 0]) && r.contains(&[2, 2]));
        assert!(!r.contains(&[0, 0]) && !r.contains(&[1, 1]));
    }

    #[test]
    fn region_intersect_subset() {
        let s = schema();
        let a = range_region(&s, AttrId(0), 0, 2);
        let b = range_region(&s, AttrId(0), 2, 3);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.dim(0), &DimSet::Range { lo: 2, hi: 2 });
        assert!(i.is_subset(&a) && i.is_subset(&b));
        let disjoint = range_region(&s, AttrId(0), 3, 3);
        assert!(a.intersect(&disjoint).is_none());
    }

    #[test]
    fn region_subtract_partitions() {
        let s = schema();
        let a = Region::full(&s);
        let b = Region::full(&s)
            .with_dim(0, DimSet::Range { lo: 1, hi: 2 })
            .with_dim(1, DimSet::Set(MemberSet::of(3, [1])));
        let parts = a.subtract(&b);
        // Every cell is in exactly one of: b, or one part.
        for m0 in 0..4u16 {
            for m1 in 0..3u16 {
                let cell = [m0, m1];
                let in_b = b.contains(&cell) as usize;
                let in_parts = parts.iter().filter(|p| p.contains(&cell)).count();
                assert_eq!(in_b + in_parts, 1, "cell {cell:?} covered {in_parts}+{in_b} times");
            }
        }
    }

    #[test]
    fn subtract_disjoint_returns_self() {
        let s = schema();
        let a = range_region(&s, AttrId(0), 0, 1);
        let b = range_region(&s, AttrId(0), 3, 3);
        assert_eq!(a.subtract(&b), vec![a.clone()]);
    }

    #[test]
    fn try_merge_adjacent_ranges() {
        let s = schema();
        let a = range_region(&s, AttrId(0), 0, 1);
        let b = range_region(&s, AttrId(0), 2, 3);
        let m = a.try_merge(&b).unwrap();
        assert!(m.is_full(&s));
        // Non-adjacent: no merge.
        let c = range_region(&s, AttrId(0), 3, 3);
        assert!(range_region(&s, AttrId(0), 0, 1).try_merge(&c).is_none());
    }

    #[test]
    fn try_merge_requires_single_differing_dim() {
        let s = schema();
        let a = Region::full(&s)
            .with_dim(0, DimSet::Range { lo: 0, hi: 1 })
            .with_dim(1, DimSet::Set(MemberSet::of(3, [0])));
        let b = Region::full(&s)
            .with_dim(0, DimSet::Range { lo: 2, hi: 3 })
            .with_dim(1, DimSet::Set(MemberSet::of(3, [1])));
        assert!(a.try_merge(&b).is_none(), "two differing dims");
        assert_eq!(a.try_merge(&a), Some(a.clone()), "identical regions merge trivially");
    }

    #[test]
    fn cells_enumerates_in_order() {
        let s = schema();
        let r = Region::full(&s)
            .with_dim(0, DimSet::Range { lo: 2, hi: 3 })
            .with_dim(1, DimSet::Set(MemberSet::of(3, [0, 2])));
        let cells: Vec<Vec<u16>> = r.cells().collect();
        assert_eq!(cells, vec![vec![2, 0], vec![2, 2], vec![3, 0], vec![3, 2]]);
        assert_eq!(cells.len() as u64, r.cardinality());
    }

    #[test]
    fn single_cell_region() {
        let s = schema();
        let r = Region::cell(&s, &[2, 1]);
        assert!(r.is_cell());
        assert_eq!(r.cardinality(), 1);
        assert!(r.contains(&[2, 1]));
        assert!(!r.contains(&[2, 0]));
    }
}
