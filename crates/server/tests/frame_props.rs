//! Property tests for the wire framing: encode→decode is the identity
//! for arbitrary payloads, and every mangled input — truncated at any
//! byte, bit-flipped anywhere, or carrying a hostile length prefix —
//! fails with a *typed* error, never a panic and never a wrong payload.
//! The same discipline is checked for the replication layer: the v4
//! replication messages and the shipped WAL-frame stream they carry.

use mpq_engine::{decode_stream, encode_stream, LogOp, ReplRole};
use mpq_server::protocol::{
    decode_frame, encode_frame, FrameError, Request, Response, ServerError,
    DEFAULT_MAX_FRAME_LEN, FRAME_HEADER_LEN,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: any payload (including empty and multi-kilobyte)
    /// encodes to a frame that decodes back to exactly that payload,
    /// consuming exactly the frame's bytes — even with trailing garbage
    /// after it in the buffer.
    #[test]
    fn frame_roundtrip_identity(
        payload in proptest::collection::vec(any::<u8>(), 0..4096),
        trailing in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let frame = encode_frame(&payload);
        prop_assert_eq!(frame.len(), FRAME_HEADER_LEN + payload.len());

        let (decoded, consumed) = decode_frame(&frame, DEFAULT_MAX_FRAME_LEN)
            .expect("intact frame decodes");
        prop_assert_eq!(&decoded, &payload);
        prop_assert_eq!(consumed, frame.len());

        // Trailing bytes (the start of the next frame) are untouched.
        let mut stream = frame.clone();
        stream.extend_from_slice(&trailing);
        let (decoded2, consumed2) = decode_frame(&stream, DEFAULT_MAX_FRAME_LEN)
            .expect("frame with trailing bytes decodes");
        prop_assert_eq!(&decoded2, &payload);
        prop_assert_eq!(consumed2, frame.len());
    }

    /// Every strict prefix of a frame is `Incomplete` — the incremental
    /// reader keeps waiting, it never misparses a torn frame.
    #[test]
    fn truncation_at_every_cut_is_incomplete(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let frame = encode_frame(&payload);
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut], DEFAULT_MAX_FRAME_LEN) {
                Err(FrameError::Incomplete { .. }) => {}
                other => prop_assert!(false, "cut at {}: got {:?}", cut, other),
            }
        }
    }

    /// A single flipped bit anywhere in the frame is detected: either
    /// the CRC catches it (`BadCrc`), or the flip landed in the length
    /// prefix, where it reads as a longer/shorter frame (`Incomplete`,
    /// a length refusal, or — if shorter — a CRC failure). Never `Ok`
    /// with the original payload's length but different bytes.
    #[test]
    fn bit_flips_never_yield_wrong_payloads(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        byte_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let frame = encode_frame(&payload);
        let mut mangled = frame.clone();
        let idx = (byte_pick % mangled.len() as u64) as usize;
        mangled[idx] ^= 1 << bit;

        match decode_frame(&mangled, DEFAULT_MAX_FRAME_LEN) {
            // A length-prefix flip could in principle carve out a
            // shorter frame that still CRCs (astronomically unlikely
            // for CRC-32); even then the decode must be internally
            // consistent, never a silent corruption of the original.
            Ok((decoded, _)) => {
                prop_assert_ne!(&decoded, &payload,
                    "flip at byte {} decoded as if nothing happened", idx);
                prop_assert_eq!(
                    mpq_types::wire::crc32(&decoded).to_le_bytes(),
                    [mangled[4], mangled[5], mangled[6], mangled[7]],
                );
            }
            Err(
                FrameError::BadCrc
                | FrameError::Incomplete { .. }
                | FrameError::TooLong { .. },
            ) => {}
        }
    }

    /// Hostile length prefixes are refused by the ceiling before any
    /// allocation happens.
    #[test]
    fn hostile_lengths_are_refused(claimed in (DEFAULT_MAX_FRAME_LEN as u64 + 1)..=u32::MAX as u64) {
        let mut frame = vec![0u8; FRAME_HEADER_LEN];
        frame[..4].copy_from_slice(&(claimed as u32).to_le_bytes());
        match decode_frame(&frame, DEFAULT_MAX_FRAME_LEN) {
            Err(FrameError::TooLong { len, max }) => {
                prop_assert_eq!(len, claimed);
                prop_assert_eq!(max, DEFAULT_MAX_FRAME_LEN as u64);
            }
            other => prop_assert!(false, "expected TooLong, got {:?}", other),
        }
    }

    /// Messages survive the full frame pipeline: request/response →
    /// payload → frame → bytes → frame → payload → message, identically.
    #[test]
    fn messages_roundtrip_through_frames(
        sql_bytes in proptest::collection::vec(0x20u8..0x7f, 0..200),
        session_id in any::<u64>(),
        stamped in any::<bool>(),
        nonce in any::<u64>(),
        seq in any::<u64>(),
    ) {
        let sql: String = sql_bytes.iter().map(|&b| b as char).collect();
        let req = Request::Statement {
            sql: sql.clone(),
            stmt_id: stamped.then_some(mpq_engine::StatementId { nonce, seq }),
        };
        let (payload, consumed) =
            decode_frame(&encode_frame(&req.encode()), DEFAULT_MAX_FRAME_LEN).unwrap();
        prop_assert_eq!(consumed, FRAME_HEADER_LEN + payload.len());
        prop_assert_eq!(Request::decode(&payload).unwrap(), req);

        let resp = Response::Hello {
            proto_version: 1,
            session_id,
            server: sql,
        };
        let (payload, _) =
            decode_frame(&encode_frame(&resp.encode()), DEFAULT_MAX_FRAME_LEN).unwrap();
        prop_assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    /// Arbitrary bytes thrown at the message decoders produce typed
    /// errors or a legitimate message — never a panic. (The server
    /// feeds CRC-validated payloads to these; this checks the decoders
    /// are total anyway.)
    #[test]
    fn decoders_are_total(junk in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&junk);
        let _ = Response::decode(&junk);
    }

    /// Replication messages survive the frame pipeline: `ReplAppend`
    /// carries its frame bytes verbatim (the standby CRC-checks each
    /// inner WAL frame itself), acks and state reports round-trip.
    #[test]
    fn replication_messages_roundtrip(
        epoch in any::<u64>(),
        frames in proptest::collection::vec(any::<u8>(), 0..2048),
        next_lsn in any::<u64>(),
        standby in any::<bool>(),
    ) {
        let role = if standby { ReplRole::Standby } else { ReplRole::Primary };
        for req in [
            Request::ReplState,
            Request::ReplAppend { epoch, frames: frames.clone() },
            Request::ReplSnapshot { snapshot: frames.clone() },
            Request::Promote,
        ] {
            let (payload, _) =
                decode_frame(&encode_frame(&req.encode()), DEFAULT_MAX_FRAME_LEN).unwrap();
            prop_assert_eq!(Request::decode(&payload).unwrap(), req);
        }
        for resp in [
            Response::ReplState { role, epoch, next_lsn },
            Response::ReplAck { next_lsn, epoch },
        ] {
            let (payload, _) =
                decode_frame(&encode_frame(&resp.encode()), DEFAULT_MAX_FRAME_LEN).unwrap();
            prop_assert_eq!(Response::decode(&payload).unwrap(), resp);
        }
    }

    /// The replication *stream* (concatenated WAL frames inside a
    /// `ReplAppend`) decodes strictly: any single bit flip anywhere in
    /// an encoded stream is a typed `Corrupt` error — never a panic,
    /// never silently different records.
    #[test]
    fn replication_stream_bit_flips_fail_typed(
        lsns in proptest::collection::vec(1u64..1_000_000, 1..5),
        byte_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let records: Vec<(u64, LogOp)> = lsns
            .iter()
            .map(|&lsn| (lsn, LogOp::CreateIndex { table: format!("t{lsn}"), columns: vec![0] }))
            .collect();
        let bytes = encode_stream(&records);
        prop_assert_eq!(decode_stream(&bytes).unwrap(), records.clone());
        let mut evil = bytes.clone();
        let idx = (byte_pick % evil.len() as u64) as usize;
        evil[idx] ^= 1 << bit;
        match decode_stream(&evil) {
            Err(mpq_engine::EngineError::Corrupt { .. }) => {}
            other => prop_assert!(false, "flip at byte {}: got {:?}", idx, other),
        }
    }

    /// Truncating the stream mid-frame is `Corrupt`; truncating exactly
    /// at a frame boundary is a legal shorter stream that decodes to
    /// that prefix of the records (the stream has no record count — a
    /// shipper may legitimately send fewer frames).
    #[test]
    fn replication_stream_truncation_is_typed_or_a_clean_prefix(
        lsns in proptest::collection::vec(1u64..1_000_000, 1..4),
        cut_pick in any::<u64>(),
    ) {
        let records: Vec<(u64, LogOp)> = lsns
            .iter()
            .map(|&lsn| (lsn, LogOp::CreateIndex { table: "t".into(), columns: vec![0, 1] }))
            .collect();
        let bytes = encode_stream(&records);
        let mut boundaries = vec![0usize];
        for r in &records {
            let end = boundaries.last().unwrap() + encode_stream(std::slice::from_ref(r)).len();
            boundaries.push(end);
        }
        let cut = (cut_pick % bytes.len() as u64) as usize;
        match decode_stream(&bytes[..cut]) {
            Ok(prefix) => {
                let i = boundaries.iter().position(|&b| b == cut);
                prop_assert_eq!(Some(prefix.len()), i, "cut {} is not a boundary", cut);
                prop_assert_eq!(&prefix[..], &records[..prefix.len()]);
            }
            Err(mpq_engine::EngineError::Corrupt { .. }) => {
                prop_assert!(!boundaries.contains(&cut), "clean prefix at {} rejected", cut);
            }
            Err(e) => prop_assert!(false, "cut {}: wrong error {:?}", cut, e),
        }
    }

    /// A hostile length prefix inside the stream is refused before any
    /// allocation or out-of-bounds read.
    #[test]
    fn replication_stream_hostile_length_fails_typed(
        lsn in 1u64..1_000_000,
        hostile in (1u32 << 24)..=u32::MAX,
    ) {
        let mut bytes = encode_stream(&[(lsn, LogOp::EpochBump { epoch: 1 })]);
        bytes[0..4].copy_from_slice(&hostile.to_le_bytes());
        prop_assert!(matches!(
            decode_stream(&bytes),
            Err(mpq_engine::EngineError::Corrupt { .. })
        ));
    }
}

/// A truncated *payload* (valid frame around garbage-cut message bytes)
/// is a typed decode error on both message types, at every cut.
#[test]
fn truncated_messages_fail_typed() {
    let req = Request::Hello { proto_version: 1, client: "c".into() };
    let resp = Response::Error(ServerError::Protocol { detail: "x".into() });
    let (req_bytes, resp_bytes) = (req.encode(), resp.encode());
    for cut in 0..req_bytes.len() {
        assert!(Request::decode(&req_bytes[..cut]).is_err(), "request cut {cut}");
    }
    for cut in 0..resp_bytes.len() {
        assert!(Response::decode(&resp_bytes[..cut]).is_err(), "response cut {cut}");
    }
}
