//! # mining-predicates
//!
//! A from-scratch Rust reproduction of **"Efficient Evaluation of Queries
//! with Mining Predicates"** (Chaudhuri, Narasayya, Sarawagi; ICDE 2002).
//!
//! Queries that filter on a mining model's *prediction* — `PREDICT(M) =
//! 'baseball fan'` — normally force the engine to apply the model to every
//! row. This workspace derives **upper envelopes** from the model's
//! internal structure: ordinary column predicates implied by the mining
//! predicate, which a cost-based optimizer can turn into index seeks,
//! multi-index unions or constant scans, while the original mining
//! predicate stays behind as an exact residual filter.
//!
//! The facade re-exports the workspace crates:
//!
//! * [`types`] — schemas, encoded datasets, discretizers;
//! * [`models`] — decision trees, naive Bayes, rule sets, k-means,
//!   Gaussian mixtures, boundary clustering (all from scratch);
//! * [`core`] — the paper's contribution: region algebra, the top-down
//!   bound-and-split derivation, exact tree/rule extraction, rectangle
//!   covering, SQL rendering;
//! * [`engine`] — a compact relational engine: paged storage, histogram
//!   statistics, composite secondary indexes, a cost-based optimizer
//!   implementing §4's rewrites, an executor with honest page/invocation
//!   accounting, a SQL surface and an index-tuning-wizard-lite;
//! * [`pmml`] — PMML-flavoured model import/export (§2.3's path);
//! * [`datagen`] — synthetic stand-ins for the paper's Table-2 datasets;
//! * [`server`] / [`client`] — a multi-client TCP wire-protocol server
//!   over the engine (framed protocol, per-connection sessions, admission
//!   control, graceful shutdown) and its client library.
//!
//! ## Quickstart
//!
//! ```
//! use mining_predicates::prelude::*;
//! use std::sync::Arc;
//!
//! // The paper's own Table-1 naive Bayes model over (d0, d1).
//! let nb = paper_table1_model();
//! let schema = Classifier::schema(&nb).clone();
//!
//! // A table whose rows are the 12 grid cells, skewed.
//! let mut data = Dataset::new(schema);
//! for m0 in 0..4u16 {
//!     for m1 in 0..3u16 {
//!         for _ in 0..(1 + (m0 as usize + m1 as usize) * 10) {
//!             data.push_encoded(&[m0, m1]).unwrap();
//!         }
//!     }
//! }
//! let mut catalog = Catalog::new();
//! catalog.add_table(Table::from_dataset("t", &data)).unwrap();
//! catalog.add_model("m", Arc::new(nb), DeriveOptions::default()).unwrap();
//! let mut engine = Engine::new(catalog);
//!
//! // A mining-predicate query; the optimizer ANDs in the derived
//! // envelope and the executor keeps results exact.
//! let out = engine.query("SELECT * FROM t WHERE PREDICT(m) = 'c1'").unwrap();
//! assert!(out.metrics.output_rows > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mpq_client as client;
pub use mpq_core as core;
pub use mpq_datagen as datagen;
pub use mpq_engine as engine;
pub use mpq_models as models;
pub use mpq_pmml as pmml;
pub use mpq_server as server;
pub use mpq_types as types;

/// The most common imports in one place.
pub mod prelude {
    pub use mpq_core::{
        derive_enumerate, derive_topdown, envelope_to_sql, paper_table1_model, BoundMode,
        DeriveOptions, Envelope, EnvelopeProvider, Region, ScoreModel,
    };
    pub use mpq_engine::{
        execute, execute_guarded, parse, tune_indexes, AccessPath, Catalog, Engine, EngineError,
        EngineHealth, Expr, FaultInjector, GuardResource, LogOp, MatchEvent, MatchMetrics,
        MiningPred, NotifySink, OptimizerOptions, QueryGuard, RecoveryReport, SessionState,
        StatementId, StatementOutcome, StoredModel, Subscription, Table,
    };
    pub use mpq_models::{
        accuracy, BoundaryClustering, Classifier, DecisionTree, Gmm, KMeans, NaiveBayes, RuleSet,
    };
    pub use mpq_types::{
        AttrDomain, AttrId, Attribute, ClassId, Dataset, LabeledDataset, Schema, Value,
    };
}
