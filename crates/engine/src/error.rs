//! Engine error type.

/// The resource whose budget a [`crate::QueryGuard`] limit tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardResource {
    /// Wall-clock execution time (spent/limit in milliseconds).
    WallClock,
    /// Rows fetched and tested against the residual predicate.
    RowsExamined,
    /// Heap plus index pages read.
    PagesRead,
    /// Black-box model applications.
    ModelInvocations,
}

impl std::fmt::Display for GuardResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GuardResource::WallClock => "wall-clock time (ms)",
            GuardResource::RowsExamined => "rows examined",
            GuardResource::PagesRead => "pages read",
            GuardResource::ModelInvocations => "model invocations",
        })
    }
}

/// Errors surfaced by the relational engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Unknown table name.
    UnknownTable(String),
    /// Unknown mining model name.
    UnknownModel(String),
    /// Unknown column name.
    UnknownColumn(String),
    /// Unknown class label for a model.
    UnknownClass {
        /// The model referenced.
        model: String,
        /// The label that failed to resolve.
        label: String,
    },
    /// The model's schema does not match the table it is applied to.
    SchemaMismatch {
        /// Explanation.
        detail: String,
    },
    /// SQL lexing/parsing failure.
    Parse {
        /// Byte offset in the input.
        at: usize,
        /// Explanation.
        detail: String,
    },
    /// A value in SQL could not be encoded against the column domain.
    BadValue(String),
    /// Duplicate catalog object.
    Duplicate(String),
    /// A [`crate::QueryGuard`] budget was breached during execution.
    /// The query produced *no* result — partial row sets are never
    /// returned silently.
    BudgetExceeded {
        /// Which budget tripped.
        resource: GuardResource,
        /// Amount consumed when the breach was detected.
        spent: u64,
        /// The configured limit.
        limit: u64,
    },
    /// An internal failure (for example a panic caught at a query entry
    /// point, or an injected fault): the engine stays usable, the query
    /// reports this typed error instead of unwinding into the caller.
    Internal {
        /// Explanation (panic payload or fault description).
        detail: String,
    },
    /// A durability I/O operation failed (WAL append, fsync, snapshot
    /// write). The in-memory state is unchanged — the mutation that
    /// triggered the write was *not* applied.
    Io {
        /// Explanation (underlying OS error or injected fault).
        detail: String,
    },
    /// On-disk durability state failed validation (bad magic, CRC
    /// mismatch, undecodable record). Recovery degrades gracefully —
    /// this variant surfaces only when nothing consistent is loadable.
    Corrupt {
        /// Explanation.
        detail: String,
    },
    /// The engine is serving as a read-only standby: mutations are
    /// refused (they arrive only through the replication stream).
    ReadOnly {
        /// Explanation (which mutation was refused).
        detail: String,
    },
    /// A replication message carried an epoch older than this node's —
    /// the sender was deposed by a promotion and is fenced off.
    StaleEpoch {
        /// Epoch stamped on the rejected message.
        sent: u64,
        /// This node's current epoch.
        have: u64,
    },
    /// `UNSUBSCRIBE` named a subscription id that is not registered.
    UnknownSubscription(u64),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownTable(n) => write!(f, "unknown table {n:?}"),
            EngineError::UnknownModel(n) => write!(f, "unknown mining model {n:?}"),
            EngineError::UnknownColumn(n) => write!(f, "unknown column {n:?}"),
            EngineError::UnknownClass { model, label } => {
                write!(f, "model {model:?} has no class {label:?}")
            }
            EngineError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            EngineError::Parse { at, detail } => write!(f, "parse error at byte {at}: {detail}"),
            EngineError::BadValue(v) => write!(f, "cannot encode value: {v}"),
            EngineError::Duplicate(n) => write!(f, "catalog object {n:?} already exists"),
            EngineError::BudgetExceeded { resource, spent, limit } => {
                write!(f, "query guard tripped: {resource} spent {spent} of limit {limit}")
            }
            EngineError::Internal { detail } => write!(f, "internal engine error: {detail}"),
            EngineError::Io { detail } => write!(f, "durability i/o error: {detail}"),
            EngineError::Corrupt { detail } => write!(f, "corrupt durability state: {detail}"),
            EngineError::ReadOnly { detail } => {
                write!(f, "read-only standby refuses mutation: {detail}")
            }
            EngineError::StaleEpoch { sent, have } => {
                write!(f, "stale replication epoch {sent} (this node is at epoch {have})")
            }
            EngineError::UnknownSubscription(id) => {
                write!(f, "no standing subscription with id {id}")
            }
        }
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io { detail: e.to_string() }
    }
}

impl From<mpq_types::wire::WireError> for EngineError {
    fn from(e: mpq_types::wire::WireError) -> Self {
        EngineError::Corrupt { detail: e.to_string() }
    }
}

impl std::error::Error for EngineError {}

/// Renders a caught panic payload as text (for [`EngineError::Internal`]).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_offender() {
        assert!(EngineError::UnknownTable("t".into()).to_string().contains("\"t\""));
        assert!(EngineError::Parse { at: 7, detail: "x".into() }.to_string().contains('7'));
        assert!(EngineError::UnknownClass { model: "m".into(), label: "l".into() }
            .to_string()
            .contains("\"l\""));
    }
}
