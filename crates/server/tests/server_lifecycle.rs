//! Lifecycle tests: graceful shutdown over a durable engine (drain →
//! checkpoint → clean recovery on reopen), and admission control's
//! typed `Busy` / `QueueTimeout` refusals observed over the wire.

use mpq_client::{Client, ClientError};
use mpq_core::{DeriveOptions, Envelope, EnvelopeProvider};
use mpq_engine::{Catalog, Engine, Table};
use mpq_models::Classifier;
use mpq_server::{AdmissionConfig, Server, ServerConfig, ServerError};
use mpq_types::{AttrDomain, AttrId, Attribute, ClassId, Dataset, Row, Schema};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir() -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "mpq-server-lifecycle-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    // A fresh name each call; recreate from scratch so reruns are clean.
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

fn demo_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("a", AttrDomain::categorical(["a0", "a1", "a2", "a3"])),
        Attribute::new("b", AttrDomain::categorical(["b0", "b1", "b2"])),
        Attribute::new("label", AttrDomain::categorical(["neg", "pos"])),
    ])
    .unwrap()
}

fn seed_demo(engine: &Engine) {
    let mut ds = Dataset::new(demo_schema());
    for i in 0..600u16 {
        let (a, b) = (i % 4, (i / 4) % 3);
        let label = u16::from(a >= 2 && b != 1);
        ds.push_encoded(&[a, b, label]).unwrap();
    }
    engine.create_table(Table::with_page_bytes("t", &ds, 512)).unwrap();
    engine.create_index("t", &[AttrId(0)]).unwrap();
    engine
        .execute_sql("CREATE MINING MODEL m_tree ON t PREDICT label USING decision_tree")
        .unwrap();
}

const QUERY: &str = "SELECT * FROM t WHERE PREDICT(m_tree) = 'pos'";

/// The graceful-shutdown guarantee: clients hammering the server while
/// it shuts down see only typed shutdown-shaped failures, the drain
/// checkpoints the durable catalog, and a reopened engine reports a
/// clean recovery and serves identical results.
#[test]
fn graceful_shutdown_drains_checkpoints_and_recovers_clean() {
    let dir = temp_dir();
    let engine = Arc::new(Engine::open(&dir).expect("open durable engine"));
    seed_demo(&engine);
    let baseline = engine.query(QUERY).expect("baseline").rows;
    assert!(!baseline.is_empty(), "demo concept must select something");

    let server = Server::start(Arc::clone(&engine), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Four clients issue statements in a loop until shutdown cuts them
    // off. Anything other than a success or a typed shutdown-shaped
    // failure is a bug.
    let workers: Vec<_> = (0..4)
        .map(|tid| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut successes = 0u64;
                for i in 0..200 {
                    match client.statement(QUERY) {
                        Ok(_) => successes += 1,
                        Err(ClientError::Remote(ServerError::ShuttingDown))
                        | Err(ClientError::Disconnected)
                        | Err(ClientError::Io(_)) => break,
                        // The drain may answer a just-sent statement
                        // with its idle-connection Goodbye.
                        Err(ClientError::Unexpected(d)) if d.contains("Goodbye") => break,
                        Err(e) => panic!("client {tid} iteration {i}: {e}"),
                    }
                }
                successes
            })
        })
        .collect();

    // Let the workers get queries genuinely in flight, then ask for
    // shutdown over the wire like an operator would.
    std::thread::sleep(Duration::from_millis(50));
    let mut admin = Client::connect(addr).expect("admin connect");
    admin.shutdown_server().expect("shutdown acknowledged");

    server.wait_shutdown_requested();
    let report = server.shutdown();
    let served: u64 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
    assert!(served > 0, "workers must have completed some statements");
    assert_eq!(report.connections, 5);
    assert!(report.queries_served >= served, "report: {report}");
    assert!(
        report.checkpoint_lsn.is_some(),
        "durable engine must checkpoint at drain: {report}"
    );

    // Release the last engine handle (writes the clean-shutdown marker),
    // then reopen: recovery must be pristine and results identical.
    drop(admin);
    drop(engine);
    let reopened = Engine::open(&dir).expect("reopen");
    let recovery = reopened.health().recovery.expect("durable engine has a report");
    assert!(recovery.clean_shutdown, "recovery: {recovery:?}");
    assert_eq!(recovery.records_dropped, 0, "recovery: {recovery:?}");
    assert!(recovery.corruption.is_none(), "recovery: {recovery:?}");
    assert_eq!(reopened.query(QUERY).expect("reopened query").rows, baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A classifier that sleeps per prediction: the deterministic "long
/// query" the admission tests hold a slot with.
struct SlowModel {
    schema: Schema,
    per_row: Duration,
}

impl Classifier for SlowModel {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn n_classes(&self) -> usize {
        2
    }
    fn class_name(&self, c: ClassId) -> &str {
        if c.0 == 0 {
            "even"
        } else {
            "odd"
        }
    }
    fn predict(&self, row: &Row) -> ClassId {
        std::thread::sleep(self.per_row);
        ClassId((row[0] + row[1]) % 2)
    }
}

impl EnvelopeProvider for SlowModel {
    fn envelope(&self, class: ClassId, _opts: &DeriveOptions) -> Envelope {
        Envelope::trivial(class, &self.schema)
    }
}

/// Overload answers: with one execution slot and a one-deep queue, a
/// held slot turns the next request into `QueueTimeout` (after its
/// bounded wait) and the one after into an immediate `Busy`; both are
/// typed, both leave the connection usable, and the drain report counts
/// them.
#[test]
fn admission_refusals_are_typed_busy_and_queue_timeout() {
    // 120 rows, but only 12 distinct tuples reach the scorer (the
    // executor memoizes per-tuple predictions), so 12 × 50 ms ≈ 600 ms
    // per query at parallelism 1 — a deterministic slot-holder.
    let mut ds = Dataset::new(demo_schema());
    for i in 0..120u16 {
        ds.push_encoded(&[i % 4, (i / 4) % 3, i % 2]).unwrap();
    }
    let mut cat = Catalog::new();
    cat.add_table(Table::with_page_bytes("t", &ds, 512)).unwrap();
    let engine = Arc::new(Engine::new(cat));
    engine.set_parallelism(1);
    engine.set_use_envelopes(false); // force full scan: every row scored
    engine
        .register_model(
            "slow",
            Arc::new(SlowModel { schema: demo_schema(), per_row: Duration::from_millis(50) }),
            DeriveOptions::default(),
        )
        .unwrap();

    let cfg = ServerConfig {
        admission: AdmissionConfig {
            max_in_flight: 1,
            max_queue: 1,
            queue_timeout: Duration::from_millis(120),
        },
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), cfg).unwrap();
    let addr = server.local_addr();
    let slow_sql = "SELECT * FROM t WHERE PREDICT(slow) = 'even'";

    // A holds the only slot for ~600 ms.
    let holder = std::thread::spawn(move || {
        let mut a = Client::connect(addr).expect("connect A");
        a.statement(slow_sql).expect("the slot-holder itself succeeds")
    });
    std::thread::sleep(Duration::from_millis(100)); // A is definitely executing

    // B queues (fills the one queue slot) and times out after ~120 ms.
    let queued = std::thread::spawn(move || {
        let mut b = Client::connect(addr).expect("connect B");
        b.statement(slow_sql)
    });
    std::thread::sleep(Duration::from_millis(30)); // B is definitely queued

    // C finds slot and queue both full: immediate Busy.
    let mut c = Client::connect(addr).expect("connect C");
    match c.statement(slow_sql) {
        Err(ClientError::Remote(ServerError::Busy { in_flight, queued })) => {
            assert_eq!((in_flight, queued), (1, 1));
        }
        other => panic!("expected Busy, got {other:?}"),
    }

    match queued.join().expect("thread B") {
        Err(ClientError::Remote(ServerError::QueueTimeout { waited_ms })) => {
            assert!(waited_ms >= 120, "waited the configured timeout, got {waited_ms}");
        }
        other => panic!("expected QueueTimeout, got {other:?}"),
    }
    holder.join().expect("thread A");

    // C's connection survived its refusal: a cheap statement succeeds
    // once the slot frees up.
    c.statement("EXPLAIN SELECT * FROM t WHERE PREDICT(slow) = 'even'")
        .expect("refused connection stays usable");

    let report = server.shutdown();
    assert_eq!(report.rejected_busy, 1, "report: {report}");
    assert_eq!(report.rejected_timeout, 1, "report: {report}");
}
