//! Property: the XML/PMML parsers never panic on mutated or truncated
//! input. Crash recovery parses model documents straight off disk, where
//! torn writes and bit flips are expected — a corrupt document must
//! surface as a typed `Err`, never a process abort (which would turn one
//! bad byte into an unrecoverable catalog).

use mpq_models::{DecisionTree, TreeParams};
use mpq_pmml::xml::parse;
use mpq_pmml::{export, import, PmmlModel};
use mpq_types::{AttrDomain, Attribute, ClassId, Dataset, LabeledDataset, Schema};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A realistic seed document: an exported trained decision tree, so
/// mutations explore the neighbourhood of well-formed PMML rather than
/// only uniformly-random noise (which the lexer rejects immediately).
fn seed_document() -> String {
    let schema = Schema::new(vec![
        Attribute::new("age", AttrDomain::binned(vec![30.0, 63.0]).unwrap()),
        Attribute::new("color", AttrDomain::categorical(["red", "green", "blue"])),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    let mut labels = Vec::new();
    for age in 0..3u16 {
        for color in 0..3u16 {
            ds.push_encoded(&[age, color]).unwrap();
            labels.push(ClassId(u16::from(age == 2 || color == 0)));
        }
    }
    let data = LabeledDataset::new(ds, labels, vec!["no".into(), "yes".into()]).unwrap();
    let tree = DecisionTree::train(&data, TreeParams::default()).unwrap();
    export(&PmmlModel::Tree(tree)).unwrap()
}

/// Runs both parser entry points over `text`, asserting neither panics.
/// Returning `Err` (or even `Ok`, when a mutation happens to stay valid)
/// is fine; unwinding is the only failure.
fn assert_no_panic(text: &str) -> Result<(), TestCaseError> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _ = parse(text);
        let _ = import(text);
    }));
    prop_assert!(outcome.is_ok(), "parser panicked on {} bytes", text.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every truncation point of a valid document parses without panic,
    /// and strict prefixes fail cleanly.
    #[test]
    fn truncated_documents_error_cleanly(frac in 0.0f64..1.0) {
        let doc = seed_document();
        let cut = ((doc.len() as f64) * frac) as usize;
        // Snap to a char boundary so the slice is valid UTF-8.
        let mut cut = cut.min(doc.len());
        while !doc.is_char_boundary(cut) {
            cut -= 1;
        }
        let text = &doc[..cut];
        assert_no_panic(text)?;
        if cut < doc.len() {
            prop_assert!(import(text).is_err(), "truncated document must not import");
        }
    }

    /// Random byte flips/overwrites anywhere in the document never panic
    /// the parsers.
    #[test]
    fn mutated_documents_never_panic(
        flips in proptest::collection::vec((0usize..4096, 0u8..=255), 1..12),
    ) {
        let mut bytes = seed_document().into_bytes();
        for &(pos, val) in &flips {
            let p = pos % bytes.len();
            bytes[p] = val;
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        assert_no_panic(&text)?;
    }

    /// Random insertions and deletions (framing damage, not just value
    /// damage) never panic the parsers.
    #[test]
    fn spliced_documents_never_panic(
        at in 0usize..4096,
        drop_len in 0usize..64,
        insert in proptest::collection::vec(0u8..=255, 0..16),
    ) {
        let mut bytes = seed_document().into_bytes();
        let start = at % bytes.len();
        let end = (start + drop_len).min(bytes.len());
        bytes.splice(start..end, insert.iter().copied());
        let text = String::from_utf8_lossy(&bytes).into_owned();
        assert_no_panic(&text)?;
    }

    /// Pure noise (not derived from a valid document) errors cleanly.
    #[test]
    fn random_noise_errors_cleanly(noise in proptest::collection::vec(0u8..=255, 0..512)) {
        let text = String::from_utf8_lossy(&noise).into_owned();
        assert_no_panic(&text)?;
        if !text.trim_start().starts_with("<?xml") {
            // Anything that isn't even an XML prolog must fail import.
            prop_assert!(import(&text).is_err());
        }
    }
}
