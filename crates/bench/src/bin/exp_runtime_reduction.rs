//! Reproduces the first inline table of **§5.2.1**: average reduction in
//! running time of envelope queries vs a full `SELECT *` scan, per model
//! family. Paper: Decision Tree 73.7%, Naive Bayes 63.5%, Clustering 79.0%.

use mpq_bench::report::{avg_page_reduction_by_kind, avg_reduction_by_kind, kind_name};
use mpq_bench::{run_full_sweep, Scale};

fn main() {
    let scale = Scale::from_args(0.02);
    eprintln!("running full sweep at scale {} ...", scale.0);
    let (rows, _) = run_full_sweep(scale, 7);
    println!("== §5.2.1: average reduction vs full scan ==\n");
    println!("{:<16} {:>12} {:>12} {:>12}", "Model", "wall-clock", "pages", "paper(time)");
    let paper = [73.7, 63.5, 79.0];
    let pages = avg_page_reduction_by_kind(&rows);
    for (((kind, measured), (_, pg)), paper) in
        avg_reduction_by_kind(&rows).into_iter().zip(pages).zip(paper)
    {
        println!("{:<16} {:>11.1}% {:>11.1}% {:>11.1}%", kind_name(kind), measured, pg, paper);
    }
    println!("\n(pages = scale-free analogue of the paper's I/O-bound times)");
    println!("\n({} envelope queries across 10 datasets x 3 model families)", rows.len());
}
