//! Envelope derivation for clustering models (§3.3) and the unified
//! [`EnvelopeProvider`] surface over every model family.

use crate::covering::cover_cells;
use crate::envelope::{DeriveOptions, DeriveStats, Envelope};
use crate::error::CoreError;
use crate::proxy::ProxyScore;
use crate::score_model::ScoreModel;
use crate::topdown::{derive_topdown, merge_regions, try_derive_topdown};
use crate::tree_envelope::{ruleset_envelope, tree_envelope};
use mpq_models::{BoundaryClustering, Classifier, DecisionTree, Gmm, KMeans, NaiveBayes, RuleSet};
use mpq_types::ClassId;

/// A model that can derive an upper envelope per output class. This is
/// the single entry point the engine's rewriter uses: *"for every class c
/// that the model M predicts, derive M_c(x)"*.
pub trait EnvelopeProvider: Classifier {
    /// Derives the upper envelope of one class.
    fn envelope(&self, class: ClassId, opts: &DeriveOptions) -> Envelope;

    /// Derives envelopes for all classes (the training-time
    /// precomputation of §4.2).
    fn envelopes(&self, opts: &DeriveOptions) -> Vec<Envelope> {
        (0..self.n_classes()).map(|k| self.envelope(ClassId(k as u16), opts)).collect()
    }

    /// Fallible derivation of one class's envelope, honoring
    /// `opts.time_budget` and other resource limits. The default
    /// delegates to the infallible path — appropriate for exact
    /// extractions (trees, rules, boundary clusters) whose cost is
    /// linear in model size and cannot meaningfully time out.
    fn try_envelope(&self, class: ClassId, opts: &DeriveOptions) -> Result<Envelope, CoreError> {
        Ok(self.envelope(class, opts))
    }

    /// Fallible derivation for all classes; the first failure aborts.
    /// Engines use this at model registration so a timeout can degrade
    /// the model to trivial envelopes instead of failing the statement.
    fn try_envelopes(&self, opts: &DeriveOptions) -> Result<Vec<Envelope>, CoreError> {
        (0..self.n_classes()).map(|k| self.try_envelope(ClassId(k as u16), opts)).collect()
    }

    /// A tabulated proxy score reproducing this model's argmax
    /// bit-for-bit wherever the argmax is unique (see [`ProxyScore`]),
    /// or `None` for model families without an additive-score form.
    /// Engines use it to cascade: proxy-decided rows skip the scorer.
    fn proxy(&self) -> Option<ProxyScore> {
        None
    }
}

impl EnvelopeProvider for DecisionTree {
    fn envelope(&self, class: ClassId, opts: &DeriveOptions) -> Envelope {
        let mut env = tree_envelope(self, class);
        // §4.2: threshold the number of disjuncts so the optimizer can
        // actually exploit the envelope (trees with many leaves per
        // class would otherwise emit unwieldy ORs).
        env.cap_disjuncts(opts.max_disjuncts, self.schema());
        env
    }
}

impl EnvelopeProvider for RuleSet {
    fn envelope(&self, class: ClassId, opts: &DeriveOptions) -> Envelope {
        let mut env = ruleset_envelope(self, class);
        env.cap_disjuncts(opts.max_disjuncts, self.schema());
        env
    }
}

impl EnvelopeProvider for NaiveBayes {
    fn envelope(&self, class: ClassId, opts: &DeriveOptions) -> Envelope {
        let sm = ScoreModel::from_naive_bayes(self);
        derive_topdown(&sm, self.schema(), class, opts)
    }

    fn envelopes(&self, opts: &DeriveOptions) -> Vec<Envelope> {
        // Share the score-model conversion across classes.
        let sm = ScoreModel::from_naive_bayes(self);
        (0..self.n_classes())
            .map(|k| derive_topdown(&sm, self.schema(), ClassId(k as u16), opts))
            .collect()
    }

    fn try_envelope(&self, class: ClassId, opts: &DeriveOptions) -> Result<Envelope, CoreError> {
        let sm = ScoreModel::from_naive_bayes(self);
        try_derive_topdown(&sm, self.schema(), class, opts)
    }

    fn try_envelopes(&self, opts: &DeriveOptions) -> Result<Vec<Envelope>, CoreError> {
        let sm = ScoreModel::from_naive_bayes(self);
        (0..self.n_classes())
            .map(|k| try_derive_topdown(&sm, self.schema(), ClassId(k as u16), opts))
            .collect()
    }

    fn proxy(&self) -> Option<ProxyScore> {
        Some(ProxyScore::from_naive_bayes(self))
    }
}

impl EnvelopeProvider for KMeans {
    fn envelope(&self, class: ClassId, opts: &DeriveOptions) -> Envelope {
        let sm = if opts.cluster_raw_sound {
            ScoreModel::from_kmeans(self)
        } else {
            ScoreModel::from_kmeans_discretized(self)
        };
        derive_topdown(&sm, self.schema(), class, opts)
    }

    fn envelopes(&self, opts: &DeriveOptions) -> Vec<Envelope> {
        let sm = if opts.cluster_raw_sound {
            ScoreModel::from_kmeans(self)
        } else {
            ScoreModel::from_kmeans_discretized(self)
        };
        (0..self.n_classes())
            .map(|k| derive_topdown(&sm, self.schema(), ClassId(k as u16), opts))
            .collect()
    }

    fn try_envelope(&self, class: ClassId, opts: &DeriveOptions) -> Result<Envelope, CoreError> {
        let sm = if opts.cluster_raw_sound {
            ScoreModel::from_kmeans(self)
        } else {
            ScoreModel::from_kmeans_discretized(self)
        };
        try_derive_topdown(&sm, self.schema(), class, opts)
    }

    fn try_envelopes(&self, opts: &DeriveOptions) -> Result<Vec<Envelope>, CoreError> {
        let sm = if opts.cluster_raw_sound {
            ScoreModel::from_kmeans(self)
        } else {
            ScoreModel::from_kmeans_discretized(self)
        };
        (0..self.n_classes())
            .map(|k| try_derive_topdown(&sm, self.schema(), ClassId(k as u16), opts))
            .collect()
    }

    fn proxy(&self) -> Option<ProxyScore> {
        Some(ProxyScore::from_kmeans(self))
    }
}

impl EnvelopeProvider for Gmm {
    fn envelope(&self, class: ClassId, opts: &DeriveOptions) -> Envelope {
        let sm = if opts.cluster_raw_sound {
            ScoreModel::from_gmm(self)
        } else {
            ScoreModel::from_gmm_discretized(self)
        };
        derive_topdown(&sm, self.schema(), class, opts)
    }

    fn envelopes(&self, opts: &DeriveOptions) -> Vec<Envelope> {
        let sm = if opts.cluster_raw_sound {
            ScoreModel::from_gmm(self)
        } else {
            ScoreModel::from_gmm_discretized(self)
        };
        (0..self.n_classes())
            .map(|k| derive_topdown(&sm, self.schema(), ClassId(k as u16), opts))
            .collect()
    }

    fn try_envelope(&self, class: ClassId, opts: &DeriveOptions) -> Result<Envelope, CoreError> {
        let sm = if opts.cluster_raw_sound {
            ScoreModel::from_gmm(self)
        } else {
            ScoreModel::from_gmm_discretized(self)
        };
        try_derive_topdown(&sm, self.schema(), class, opts)
    }

    fn try_envelopes(&self, opts: &DeriveOptions) -> Result<Vec<Envelope>, CoreError> {
        let sm = if opts.cluster_raw_sound {
            ScoreModel::from_gmm(self)
        } else {
            ScoreModel::from_gmm_discretized(self)
        };
        (0..self.n_classes())
            .map(|k| try_derive_topdown(&sm, self.schema(), ClassId(k as u16), opts))
            .collect()
    }

    fn proxy(&self) -> Option<ProxyScore> {
        Some(ProxyScore::from_gmm(self))
    }
}

impl EnvelopeProvider for BoundaryClustering {
    fn envelope(&self, class: ClassId, opts: &DeriveOptions) -> Envelope {
        // Boundary clusters are explicit cell sets: cover with rectangles.
        // The noise class is the complement of every dense cell — derived
        // by subtraction so it stays an upper envelope, not a scan.
        let schema = self.schema();
        if class == self.noise_class() {
            let mut regions = vec![crate::region::Region::full(schema)];
            for k in 0..self.n_classes() {
                let c = ClassId(k as u16);
                if c == self.noise_class() {
                    continue;
                }
                let cells: Vec<Vec<u16>> = self.cells_of(c).map(|s| s.to_vec()).collect();
                for dense in cover_cells(schema, &cells) {
                    regions = regions.into_iter().flat_map(|r| r.subtract(&dense)).collect();
                }
            }
            let mut stats = DeriveStats::default();
            merge_regions(&mut regions, &mut stats);
            let mut env = Envelope { class, regions, exact: true, stats, trace: Vec::new() };
            env.cap_disjuncts(opts.max_disjuncts, schema);
            env
        } else {
            let cells: Vec<Vec<u16>> = self.cells_of(class).map(|s| s.to_vec()).collect();
            let mut regions = cover_cells(schema, &cells);
            let mut stats = DeriveStats::default();
            merge_regions(&mut regions, &mut stats);
            let mut env = Envelope { class, regions, exact: true, stats, trace: Vec::new() };
            env.cap_disjuncts(opts.max_disjuncts, schema);
            env
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;
    use mpq_types::{AttrDomain, Attribute, Dataset, Schema};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn grid_schema(bins: usize) -> Schema {
        let cuts: Vec<f64> = (1..bins).map(|i| i as f64).collect();
        Schema::new(vec![
            Attribute::new("x", AttrDomain::binned(cuts.clone()).unwrap()),
            Attribute::new("y", AttrDomain::binned(cuts).unwrap()),
        ])
        .unwrap()
    }

    #[test]
    fn kmeans_envelope_covers_raw_assignments() {
        // Soundness over *raw* points: sample random points, assign with
        // the model, encode, and check the envelope of the assigned
        // cluster admits the cell.
        let schema = grid_schema(6);
        let km = KMeans::from_parts(
            schema.clone(),
            vec![vec![1.0, 1.0], vec![5.0, 1.0], vec![3.0, 5.0]],
            vec![vec![1.0, 1.0]; 3],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let opts = DeriveOptions { cluster_raw_sound: true, ..Default::default() };
        let envs = km.envelopes(&opts);
        for _ in 0..500 {
            let x = rng.random_range(-1.0..7.0);
            let y = rng.random_range(-1.0..7.0);
            let cluster = km.assign_raw(&[x, y]);
            let cell = schema
                .encode_row(&[mpq_types::Value::Num(x), mpq_types::Value::Num(y)])
                .unwrap();
            assert!(
                envs[cluster.index()].matches(&cell),
                "raw point ({x},{y}) in cell {cell:?} assigned {cluster} but not covered"
            );
        }
    }

    #[test]
    fn discretized_kmeans_envelopes_cover_encoded_predictions() {
        // The default (paper §3.3) mode derives against the discretized
        // point model — envelopes must cover exactly what predict() does
        // on encoded rows, and the derivation must be decidable (tight).
        let schema = grid_schema(6);
        let km = KMeans::from_parts(
            schema.clone(),
            vec![vec![1.0, 1.0], vec![5.0, 1.0], vec![3.0, 5.0]],
            vec![vec![1.0, 1.0]; 3],
        )
        .unwrap();
        let envs = km.envelopes(&DeriveOptions::default());
        let mut total_covered = 0u64;
        for cell in Region::full(&schema).cells() {
            let predicted = km.predict(&cell);
            assert!(
                envs[predicted.index()].matches(&cell),
                "cell {cell:?} predicted {predicted} but not covered"
            );
        }
        for env in &envs {
            total_covered += env.covered_cells();
        }
        // Decidable point model → near-partition of the 36-cell grid.
        assert!(
            total_covered <= 40,
            "discretized envelopes should be tight, covered {total_covered} of 36 cells"
        );
    }

    #[test]
    fn gmm_envelope_covers_raw_assignments() {
        let schema = grid_schema(5);
        let gmm = Gmm::from_parts(
            schema.clone(),
            vec![0.5, 0.5],
            vec![vec![1.0, 1.0], vec![4.0, 4.0]],
            vec![vec![0.8, 0.8], vec![1.2, 1.2]],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let opts = DeriveOptions { cluster_raw_sound: true, ..Default::default() };
        let envs = gmm.envelopes(&opts);
        for _ in 0..500 {
            let x = rng.random_range(-1.0..6.0);
            let y = rng.random_range(-1.0..6.0);
            let cluster = gmm.assign_raw(&[x, y]);
            let cell = schema
                .encode_row(&[mpq_types::Value::Num(x), mpq_types::Value::Num(y)])
                .unwrap();
            assert!(envs[cluster.index()].matches(&cell), "({x},{y}) cluster {cluster}");
        }
    }

    #[test]
    fn two_class_kmeans_envelopes_partition_tightly() {
        // With K = 2 the pairwise bound is exact, so the two envelopes
        // should overlap only on genuinely ambiguous boundary cells.
        let schema = grid_schema(8);
        let km = KMeans::from_parts(
            schema.clone(),
            vec![vec![1.0, 1.0], vec![7.0, 7.0]],
            vec![vec![1.0, 1.0]; 2],
        )
        .unwrap();
        let envs = km.envelopes(&DeriveOptions::default());
        // Far corners are unambiguous.
        assert!(envs[0].matches(&[0, 0]) && !envs[1].matches(&[0, 0]));
        assert!(envs[1].matches(&[7, 7]) && !envs[0].matches(&[7, 7]));
    }

    #[test]
    fn boundary_cluster_envelopes_are_exact_cell_covers() {
        let schema = grid_schema(5);
        let mut ds = Dataset::new(schema.clone());
        for _ in 0..5 {
            ds.push_encoded(&[0, 0]).unwrap();
            ds.push_encoded(&[0, 1]).unwrap();
            ds.push_encoded(&[4, 4]).unwrap();
        }
        ds.push_encoded(&[2, 2]).unwrap(); // sparse
        let bc = BoundaryClustering::train(&ds, 3).unwrap();
        let envs = bc.envelopes(&DeriveOptions::default());
        for cell in Region::full(&schema).cells() {
            let predicted = bc.predict(&cell);
            for (k, env) in envs.iter().enumerate() {
                assert_eq!(
                    env.matches(&cell),
                    predicted.index() == k,
                    "cell {cell:?} class {k}"
                );
            }
        }
    }

    #[test]
    fn naive_bayes_provider_matches_direct_derivation() {
        let schema = Schema::new(vec![
            Attribute::new("a", AttrDomain::categorical(["x", "y"])),
            Attribute::new("b", AttrDomain::categorical(["u", "v", "w"])),
        ])
        .unwrap();
        let nb = NaiveBayes::from_probabilities(
            schema,
            vec!["p".into(), "q".into()],
            &[0.6, 0.4],
            &[
                vec![vec![0.7, 0.2], vec![0.3, 0.8]],
                vec![vec![0.5, 0.2], vec![0.3, 0.3], vec![0.2, 0.5]],
            ],
        )
        .unwrap();
        let opts = DeriveOptions::default();
        let via_provider = nb.envelope(ClassId(0), &opts);
        let sm = ScoreModel::from_naive_bayes(&nb);
        let direct = derive_topdown(&sm, nb.schema(), ClassId(0), &opts);
        assert_eq!(via_provider.regions, direct.regions);
    }
}
