//! The failover kill-loop and its zero-loss promotion oracle.
//!
//! A real primary/standby pair of `mpq-serverd` processes runs under
//! an in-process supervisor while concurrent [`ReliableClient`]
//! writers hammer stamped INSERTs through a shared address handle.
//! Each cycle SIGKILLs the primary; the supervisor detects the loss,
//! promotes the standby (epoch bump + fence), and repoints the handle
//! — the writers' retries land on the new primary with no harness
//! help. The deposed node's directory is then wiped and reborn as a
//! fresh standby that bootstraps over the replication channel, and the
//! loop repeats, ping-ponging the primary role between the two
//! directories.
//!
//! Shipping runs in synchronous-ack mode (`--peer-file`): a write is
//! acknowledged only once the standby holds it, which is what makes
//! the oracle's first clause possible at all. Checked against the
//! final primary's recovered state:
//!
//! 1. **No lost acks** — every write any client saw acknowledged, by
//!    any primary of any epoch, is in the final state.
//! 2. **No duplicates** — no (writer, seq) pair appears twice, however
//!    many times its statement was retried across failovers.
//! 3. **No ghosts** — every surviving row was actually attempted.
//! 4. **Reference equivalence** — a fresh, never-faulted engine given
//!    the same rows serially answers the workload queries identically.
//!
//! `failover_kill_loop_smoke` is sized for CI. The acceptance-scale
//! run is `failover_kill_loop_full`, `#[ignore]`d by default:
//!
//! ```text
//! cargo test -p mpq-server --test failover_kill_loop -- --ignored
//! ```

use mpq_client::{ReliableClient, RetryPolicy};
use mpq_engine::{Catalog, Engine, Table};
use mpq_server::{start_supervisor, write_peer_file, SupervisorConfig};
use mpq_types::{AttrDomain, Attribute, Dataset, Member, Schema};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

const MAX_WRITERS: usize = 8;
const MAX_SEQS: usize = 512;
const SEQ_CAP: u64 = 500;

/// Same lossless (writer, seq) encoding as the chaos kill-loop, plus
/// the same sentinel row keeping the table non-empty from birth.
fn chaos_schema() -> Schema {
    let writers: Vec<String> = (0..MAX_WRITERS).map(|w| format!("w{w}")).collect();
    let seqs: Vec<String> = (0..MAX_SEQS).map(|s| format!("s{s}")).collect();
    Schema::new(vec![
        Attribute::new("writer", AttrDomain::categorical(writers.iter().map(String::as_str))),
        Attribute::new("seq", AttrDomain::categorical(seqs.iter().map(String::as_str))),
    ])
    .unwrap()
}

const SENTINEL: (Member, Member) = (0, (MAX_SEQS - 1) as Member);

fn chaos_table() -> Table {
    let mut ds = Dataset::new(chaos_schema());
    ds.push_encoded(&[SENTINEL.0, SENTINEL.1]).unwrap();
    Table::with_page_bytes("chaos", &ds, 512)
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mpq-failover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Spawns one replication-enabled `mpq-serverd` node and blocks until
/// it publishes its port. Every node gets the shared peer file: only
/// the node whose role is Primary ships into it, so the pair can swap
/// roles without respawning.
fn spawn_node(data_dir: &Path, port_file: &Path, peer_file: &Path, standby: bool) -> (Child, String) {
    let _ = std::fs::remove_file(port_file);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mpq-serverd"));
    cmd.arg("--data-dir")
        .arg(data_dir)
        .arg("--port-file")
        .arg(port_file)
        .arg("--peer-file")
        .arg(peer_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if standby {
        cmd.arg("--standby");
    }
    let mut child = cmd.spawn().expect("spawn mpq-serverd");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(addr) = std::fs::read_to_string(port_file) {
            return (child, addr.trim().to_string());
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("mpq-serverd exited before publishing its port: {status}");
        }
        assert!(Instant::now() < deadline, "mpq-serverd never published its port");
        std::thread::sleep(Duration::from_millis(10));
    }
}

struct WriterLog {
    acked: Vec<u64>,
    attempted: u64,
}

fn run_writer(writer: usize, addr: Arc<RwLock<String>>, stop: Arc<AtomicBool>) -> WriterLog {
    let policy = RetryPolicy {
        max_attempts: 1000,
        initial_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(100),
        total_budget: Duration::from_secs(45),
        attempt_timeout: Duration::from_secs(8),
    };
    let mut client = ReliableClient::with_addr_handle(addr, policy, 2000 + writer as u64);
    let mut log = WriterLog { acked: Vec::new(), attempted: 0 };
    for seq in 0..SEQ_CAP {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        log.attempted = seq + 1;
        let sql = format!("INSERT INTO chaos VALUES ('w{writer}', 's{seq}')");
        if client.statement(&sql).is_ok() {
            log.acked.push(seq);
        }
    }
    log
}

fn failover_loop(tag: &str, seed: u64, cycles: usize, writers: usize) {
    assert!(writers <= MAX_WRITERS);
    let root = temp_dir(tag);
    let dirs = [root.join("node0"), root.join("node1")];
    let port_files = [root.join("port0"), root.join("port1")];
    let peer_file = root.join("peers");

    // Pre-create the chaos table on the first primary; the standby
    // starts empty and bootstraps it over the replication channel.
    {
        let e = Engine::open(&dirs[0]).expect("pre-create primary dir");
        e.create_table(chaos_table()).expect("create chaos table");
    }

    let mut rng = seed | 1;
    // `active`/`passive` index into dirs/port_files; the primary role
    // ping-pongs between them as the loop kills and promotes.
    let (mut active, mut passive) = (0usize, 1usize);
    let (mut primary_child, primary_addr) =
        spawn_node(&dirs[active], &port_files[active], &peer_file, false);
    let (mut standby_child, standby_addr) =
        spawn_node(&dirs[passive], &port_files[passive], &peer_file, true);
    write_peer_file(&peer_file, &standby_addr).expect("register standby");

    let primary_handle = Arc::new(RwLock::new(primary_addr));
    let standby_handle = Arc::new(RwLock::new(standby_addr));
    let supervisor = start_supervisor(
        Arc::clone(&primary_handle),
        Arc::clone(&standby_handle),
        SupervisorConfig {
            check_interval: Duration::from_millis(25),
            fail_threshold: 3,
            io_timeout: Duration::from_millis(300),
            peer_file: peer_file.clone(),
        },
    );

    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let (addr, stop) = (Arc::clone(&primary_handle), Arc::clone(&stop));
            std::thread::spawn(move || run_writer(w, addr, stop))
        })
        .collect();

    for cycle in 0..cycles {
        // Let the writers make progress against the current primary.
        std::thread::sleep(Duration::from_millis(200 + xorshift(&mut rng) % 400));

        // SIGKILL the primary; the supervisor must notice, promote the
        // standby, and repoint the writers — all without harness help.
        primary_child.kill().expect("SIGKILL primary");
        primary_child.wait().expect("reap primary");
        let deadline = Instant::now() + Duration::from_secs(20);
        while supervisor.promotions() < (cycle + 1) as u64 {
            assert!(Instant::now() < deadline, "cycle {cycle}: supervisor never promoted");
            std::thread::sleep(Duration::from_millis(10));
        }

        // Rebirth: wipe the deposed node's directory and bring it back
        // as a fresh standby of the new primary. Registering it in the
        // peer file (which promotion cleared) both resumes shipping and
        // unblocks the new primary's synchronous acks.
        std::mem::swap(&mut active, &mut passive);
        primary_child = standby_child;
        let _ = std::fs::remove_dir_all(&dirs[passive]);
        let (child, addr) = spawn_node(&dirs[passive], &port_files[passive], &peer_file, true);
        standby_child = child;
        *standby_handle.write().unwrap() = addr.clone();
        write_peer_file(&peer_file, &addr).expect("register reborn standby");
    }

    // Drain against the final primary, then stop.
    std::thread::sleep(Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    let logs: Vec<WriterLog> = handles.into_iter().map(|h| h.join().expect("writer")).collect();
    supervisor.stop();
    primary_child.kill().expect("SIGKILL final primary");
    primary_child.wait().expect("reap final primary");
    standby_child.kill().expect("SIGKILL final standby");
    standby_child.wait().expect("reap final standby");

    // ---- the zero-loss promotion oracle ----
    let recovered = Engine::open(&dirs[active]).expect("final recovery");
    assert!(
        recovered.epoch() >= cycles as u64,
        "final primary's epoch {} never advanced through {} promotions",
        recovered.epoch(),
        cycles
    );
    let t = recovered.catalog().table_by_name("chaos").expect("chaos table survived");
    let (writer_col, seq_col) = {
        let cat = recovered.catalog();
        let table = &cat.table(t).table;
        (table.column(0).to_vec(), table.column(1).to_vec())
    };
    let mut present = HashSet::new();
    let mut duplicates = Vec::new();
    for (&w, &s) in writer_col.iter().zip(&seq_col) {
        if (w, s) == SENTINEL {
            continue;
        }
        if !present.insert((w, s)) {
            duplicates.push((w, s));
        }
    }
    assert!(duplicates.is_empty(), "writes applied twice across failovers: {duplicates:?}");

    let total_acked: usize = logs.iter().map(|l| l.acked.len()).sum();
    for (w, log) in logs.iter().enumerate() {
        for &seq in &log.acked {
            assert!(
                present.contains(&(w as Member, seq as Member)),
                "acknowledged write (w{w}, s{seq}) lost across a promotion"
            );
        }
    }
    for &(w, s) in &present {
        let log = logs.get(w as usize).unwrap_or_else(|| panic!("ghost writer w{w}"));
        assert!(
            (s as u64) < log.attempted,
            "surviving row (w{w}, s{s}) was never attempted (attempted up to {})",
            log.attempted
        );
    }
    assert!(total_acked > 0, "no write was ever acknowledged — failovers too hot");
    assert!(present.len() >= total_acked);

    // Reference equivalence: a never-faulted engine fed the same rows
    // serially answers the workload queries identically.
    let mut reference_cat = Catalog::new();
    reference_cat.add_table(chaos_table()).unwrap();
    let reference = Engine::new(reference_cat);
    let mut rows: Vec<Vec<Member>> = present.iter().map(|&(w, s)| vec![w, s]).collect();
    rows.sort();
    reference.insert_rows("chaos", rows).expect("reference insert");
    let decode = |e: &Engine, tid: usize, ids: &[u32]| -> Vec<(Member, Member)> {
        let cat = e.catalog();
        let table = &cat.table(tid).table;
        let mut rows: Vec<(Member, Member)> = ids
            .iter()
            .map(|&i| (table.column(0)[i as usize], table.column(1)[i as usize]))
            .collect();
        rows.sort_unstable();
        rows
    };
    let reference_tid = reference.catalog().table_by_name("chaos").unwrap();
    for w in 0..writers {
        let q = format!("SELECT * FROM chaos WHERE writer = 'w{w}'");
        let live = recovered.query(&q).expect("recovered query").rows;
        let reference_ids = reference.query(&q).expect("reference query").rows;
        assert_eq!(
            decode(&recovered, t, &live),
            decode(&reference, reference_tid, &reference_ids),
            "writer w{w}: final primary != reference"
        );
    }

    let _ = std::fs::remove_dir_all(&root);
}

/// CI-sized: three supervised failovers over four concurrent writers,
/// fixed seed.
#[test]
fn failover_kill_loop_smoke() {
    failover_loop("smoke", 0xfa110f, 3, 4);
}

/// Acceptance-scale: eight failovers, six concurrent retrying writers.
/// Run explicitly with `-- --ignored`.
#[test]
#[ignore = "acceptance-scale failover run; minutes long"]
fn failover_kill_loop_full() {
    failover_loop("full", 0x5eed, 8, 6);
}
