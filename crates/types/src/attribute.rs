//! Attribute domains and schemas.

use crate::{AttrId, Member, TypesError, Value};

/// The domain of one attribute: either an unordered categorical member set
/// or an ordered set of bins produced by discretizing a continuous
/// attribute.
///
/// The distinction matters to envelope derivation: the paper's *shrink*
/// step may drop arbitrary members of an unordered dimension but only trims
/// the two ends of an ordered one (to keep regions expressible as ranges),
/// and generated SQL uses `IN (...)` for the former and range comparisons
/// on the original cut points for the latter.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrDomain {
    /// Unordered categorical attribute; member `i` is named `members[i]`.
    Categorical {
        /// The member names, in encoding order.
        members: Vec<String>,
    },
    /// Continuous attribute discretized into `cuts.len() + 1` ordered bins.
    ///
    /// `cuts` must be strictly increasing. Bin `0` is `(-inf, cuts[0]]`,
    /// bin `i` is `(cuts[i-1], cuts[i]]`, and the last bin is
    /// `(cuts[last], +inf)`.
    Binned {
        /// Strictly increasing cut points.
        cuts: Vec<f64>,
    },
}

impl AttrDomain {
    /// Builds a categorical domain from member names.
    pub fn categorical<S: Into<String>>(members: impl IntoIterator<Item = S>) -> Self {
        AttrDomain::Categorical {
            members: members.into_iter().map(Into::into).collect(),
        }
    }

    /// Builds a binned domain, validating that cuts are strictly
    /// increasing and finite.
    pub fn binned(cuts: Vec<f64>) -> Result<Self, TypesError> {
        if cuts.iter().any(|c| !c.is_finite()) {
            return Err(TypesError::BadCuts {
                detail: "cut points must be finite".into(),
            });
        }
        for w in cuts.windows(2) {
            if w[0] >= w[1] {
                return Err(TypesError::BadCuts {
                    detail: format!("cut points must be strictly increasing, got {} then {}", w[0], w[1]),
                });
            }
        }
        Ok(AttrDomain::Binned { cuts })
    }

    /// Number of members (bins) in this domain.
    pub fn cardinality(&self) -> u16 {
        match self {
            AttrDomain::Categorical { members } => members.len() as u16,
            AttrDomain::Binned { cuts } => (cuts.len() + 1) as u16,
        }
    }

    /// Whether the domain is ordered (binned continuous) as opposed to
    /// unordered categorical.
    pub fn is_ordered(&self) -> bool {
        matches!(self, AttrDomain::Binned { .. })
    }

    /// For a binned domain, the numeric interval `(lo, hi]` covered by
    /// member `m`; the first interval has `lo = -inf`, the last `hi = +inf`.
    ///
    /// Returns `None` for categorical domains.
    pub fn bin_interval(&self, m: Member) -> Option<(f64, f64)> {
        match self {
            AttrDomain::Binned { cuts } => {
                let i = m as usize;
                debug_assert!(i <= cuts.len());
                let lo = if i == 0 { f64::NEG_INFINITY } else { cuts[i - 1] };
                let hi = if i == cuts.len() { f64::INFINITY } else { cuts[i] };
                Some((lo, hi))
            }
            AttrDomain::Categorical { .. } => None,
        }
    }

    /// A representative numeric value for member `m` of a binned domain
    /// (the bin midpoint; for the unbounded end bins, the cut offset by the
    /// median inner bin width). Used by clustering when embedding bins.
    pub fn bin_representative(&self, m: Member) -> Option<f64> {
        let (lo, hi) = self.bin_interval(m)?;
        let width = match self {
            AttrDomain::Binned { cuts } if cuts.len() >= 2 => {
                let mut widths: Vec<f64> = cuts.windows(2).map(|w| w[1] - w[0]).collect();
                widths.sort_by(|a, b| a.partial_cmp(b).expect("finite widths"));
                widths[widths.len() / 2]
            }
            _ => 1.0,
        };
        Some(match (lo.is_finite(), hi.is_finite()) {
            (true, true) => (lo + hi) / 2.0,
            (false, true) => hi - width / 2.0,
            (true, false) => lo + width / 2.0,
            (false, false) => 0.0,
        })
    }

    /// A human/SQL-readable label for member `m` of this domain.
    pub fn member_label(&self, m: Member) -> String {
        match self {
            AttrDomain::Categorical { members } => members[m as usize].clone(),
            AttrDomain::Binned { .. } => {
                let (lo, hi) = self.bin_interval(m).expect("binned");
                format!("({lo}, {hi}]")
            }
        }
    }

    /// Encodes a raw value into its member index.
    pub fn encode(&self, v: &Value) -> Result<Member, TypesError> {
        match (self, v) {
            (AttrDomain::Categorical { members }, Value::Str(s)) => members
                .iter()
                .position(|m| m == s)
                .map(|i| i as Member)
                .ok_or_else(|| TypesError::UnknownMember { member: s.clone() }),
            (AttrDomain::Binned { cuts }, Value::Num(x)) => {
                // partition_point gives the count of cuts < x, i.e. the bin
                // whose interval (cuts[i-1], cuts[i]] contains x.
                let i = cuts.partition_point(|c| c < x);
                Ok(i as Member)
            }
            (AttrDomain::Categorical { .. }, Value::Num(_)) => Err(TypesError::TypeMismatch {
                expected: "string (categorical attribute)",
            }),
            (AttrDomain::Binned { .. }, Value::Str(_)) => Err(TypesError::TypeMismatch {
                expected: "number (binned attribute)",
            }),
        }
    }
}

/// An attribute: a name plus a domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Column name as it appears in SQL.
    pub name: String,
    /// The attribute's domain.
    pub domain: AttrDomain,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, domain: AttrDomain) -> Self {
        Attribute { name: name.into(), domain }
    }
}

/// An ordered list of attributes; the shared shape of datasets, tables and
/// model inputs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from attributes. Names must be unique
    /// (case-insensitively, matching SQL identifier semantics).
    pub fn new(attrs: Vec<Attribute>) -> Result<Self, TypesError> {
        if attrs.len() > u16::MAX as usize {
            return Err(TypesError::TooManyAttributes { n: attrs.len() });
        }
        let mut seen: Vec<String> = Vec::with_capacity(attrs.len());
        for a in &attrs {
            let lower = a.name.to_ascii_lowercase();
            if seen.contains(&lower) {
                return Err(TypesError::DuplicateAttribute { name: a.name.clone() });
            }
            seen.push(lower);
        }
        Ok(Schema { attrs })
    }

    /// Number of attributes (the paper's `n`).
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attribute at `id`.
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.index()]
    }

    /// All attributes in order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Iterate `(AttrId, &Attribute)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attrs.iter().enumerate().map(|(i, a)| (AttrId(i as u16), a))
    }

    /// Looks an attribute up by name (case-insensitive, like SQL).
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.attrs
            .iter()
            .position(|a| a.name.eq_ignore_ascii_case(name))
            .map(|i| AttrId(i as u16))
    }

    /// Per-dimension domain cardinalities (the paper's `n_d` vector).
    pub fn cardinalities(&self) -> Vec<u16> {
        self.attrs.iter().map(|a| a.domain.cardinality()).collect()
    }

    /// Total number of cells in the attribute grid, saturating at
    /// `u64::MAX` (the paper's `prod n_d`; exponential in `n`).
    pub fn grid_cells(&self) -> u64 {
        self.attrs
            .iter()
            .fold(1u64, |acc, a| acc.saturating_mul(a.domain.cardinality() as u64))
    }

    /// Encodes a raw row into member indexes.
    pub fn encode_row(&self, raw: &[Value]) -> Result<Vec<Member>, TypesError> {
        if raw.len() != self.attrs.len() {
            return Err(TypesError::ArityMismatch { expected: self.attrs.len(), got: raw.len() });
        }
        raw.iter()
            .zip(&self.attrs)
            .map(|(v, a)| a.domain.encode(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> Schema {
        Schema::new(vec![
            Attribute::new("color", AttrDomain::categorical(["red", "green", "blue"])),
            Attribute::new("age", AttrDomain::binned(vec![30.0, 60.0]).unwrap()),
        ])
        .unwrap()
    }

    #[test]
    fn categorical_roundtrip() {
        let d = AttrDomain::categorical(["a", "b", "c"]);
        assert_eq!(d.cardinality(), 3);
        assert!(!d.is_ordered());
        assert_eq!(d.encode(&Value::from("b")).unwrap(), 1);
        assert_eq!(d.member_label(2), "c");
        assert!(matches!(
            d.encode(&Value::from("zz")),
            Err(TypesError::UnknownMember { .. })
        ));
    }

    #[test]
    fn binned_encoding_uses_half_open_bins() {
        let d = AttrDomain::binned(vec![30.0, 60.0]).unwrap();
        assert_eq!(d.cardinality(), 3);
        assert!(d.is_ordered());
        // bin 0 = (-inf, 30], bin 1 = (30, 60], bin 2 = (60, inf)
        assert_eq!(d.encode(&Value::from(29.0)).unwrap(), 0);
        assert_eq!(d.encode(&Value::from(30.0)).unwrap(), 0);
        assert_eq!(d.encode(&Value::from(30.0001)).unwrap(), 1);
        assert_eq!(d.encode(&Value::from(60.0)).unwrap(), 1);
        assert_eq!(d.encode(&Value::from(61.0)).unwrap(), 2);
    }

    #[test]
    fn bin_intervals_cover_the_line() {
        let d = AttrDomain::binned(vec![10.0, 20.0, 35.0]).unwrap();
        assert_eq!(d.bin_interval(0), Some((f64::NEG_INFINITY, 10.0)));
        assert_eq!(d.bin_interval(1), Some((10.0, 20.0)));
        assert_eq!(d.bin_interval(3), Some((35.0, f64::INFINITY)));
    }

    #[test]
    fn bin_representatives_are_inside_their_bin() {
        let d = AttrDomain::binned(vec![10.0, 20.0, 35.0]).unwrap();
        for m in 0..4u16 {
            let (lo, hi) = d.bin_interval(m).unwrap();
            let r = d.bin_representative(m).unwrap();
            assert!(r > lo || lo == f64::NEG_INFINITY);
            assert!(r <= hi || hi == f64::INFINITY, "rep {r} not in ({lo},{hi}]");
        }
    }

    #[test]
    fn bad_cuts_rejected() {
        assert!(AttrDomain::binned(vec![1.0, 1.0]).is_err());
        assert!(AttrDomain::binned(vec![2.0, 1.0]).is_err());
        assert!(AttrDomain::binned(vec![f64::NAN]).is_err());
        assert!(AttrDomain::binned(vec![]).is_ok(), "a single unbounded bin is legal");
    }

    #[test]
    fn schema_lookup_is_case_insensitive() {
        let s = demo_schema();
        assert_eq!(s.attr_by_name("AGE"), Some(AttrId(1)));
        assert_eq!(s.attr_by_name("Color"), Some(AttrId(0)));
        assert_eq!(s.attr_by_name("nope"), None);
    }

    #[test]
    fn schema_rejects_duplicates() {
        let r = Schema::new(vec![
            Attribute::new("x", AttrDomain::categorical(["a"])),
            Attribute::new("X", AttrDomain::categorical(["b"])),
        ]);
        assert!(matches!(r, Err(TypesError::DuplicateAttribute { .. })));
    }

    #[test]
    fn encode_row_checks_arity_and_types() {
        let s = demo_schema();
        assert_eq!(
            s.encode_row(&[Value::from("green"), Value::from(45.0)]).unwrap(),
            vec![1, 1]
        );
        assert!(s.encode_row(&[Value::from("green")]).is_err());
        assert!(s.encode_row(&[Value::from(1.0), Value::from(45.0)]).is_err());
    }

    #[test]
    fn grid_cells_multiplies_cardinalities() {
        let s = demo_schema();
        assert_eq!(s.grid_cells(), 9);
        assert_eq!(s.cardinalities(), vec![3, 3]);
    }
}
