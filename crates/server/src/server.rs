//! The TCP server: accept loop, per-connection sessions, graceful
//! shutdown.
//!
//! One thread accepts connections; each connection gets its own thread,
//! its own [`SessionState`] (so `SET PARALLELISM` / `SET GUARD` scope
//! to that connection) and runs the stop-and-wait request/response
//! protocol from [`crate::protocol`]. Statements pass through the
//! [`AdmissionController`] before touching the engine.
//!
//! Shutdown is graceful by construction: a `Shutdown` request (or
//! [`ServerHandle::shutdown`]) flips a flag; the accept loop stops
//! taking connections, idle connections close with a `Goodbye`,
//! in-flight statements run to completion and their responses are
//! written, then the engine is checkpointed. The [`DrainReport`] says
//! exactly what happened.
//!
//! Fault injection (via the engine's [`FaultInjector`]) can sever a
//! connection mid-response or corrupt one response frame — the hooks
//! the oracle tests use to prove clients fail *typed* and the server
//! stays up.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionError};
use crate::notify::{NotifyQueue, SubRegistry, DEFAULT_NOTIFY_QUEUE_CAP};
use crate::protocol::{
    decode_frame, encode_frame, FrameError, Request, Response, ServerError,
    DEFAULT_MAX_FRAME_LEN, PROTO_VERSION, PROTO_VERSION_V3, PROTO_VERSION_V4,
    PROTO_VERSION_V5, PROTO_VERSION_V6,
};
use mpq_engine::{Engine, FaultInjector, SessionState, StatementId, StatementOutcome};
use std::io::{self, Read, Write};
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Use port 0 to let the OS pick (the bound address
    /// is reported by [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Admission limits for statement execution.
    pub admission: AdmissionConfig,
    /// Once the first byte of a request has arrived, the whole frame
    /// must arrive within this budget — the slow-loris defence. Idle
    /// connections (no partial frame) may sit forever, with one
    /// exception: the `Hello` handshake must complete within this
    /// budget from the moment the connection is accepted, so a client
    /// that connects and stalls cannot pin an accept slot.
    pub request_read_timeout: Duration,
    /// Ceiling on one frame's payload length, both directions.
    pub max_frame_len: u32,
    /// Free-form name sent in the handshake.
    pub server_name: String,
    /// Statically refuse mutating statements with a typed
    /// [`ServerError::ReadOnly`] before they reach the engine
    /// (`--read-only`). Standbys need no flag: the same refusal is
    /// applied whenever the engine's live role is `Standby`, and lifts
    /// by itself at promotion.
    pub read_only: bool,
    /// Bound on each session's pending-notification queue (standing
    /// subscriptions, DESIGN.md §14). A subscriber that lags beyond it
    /// loses matches to a gap marker instead of stalling writers.
    pub notify_queue_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            admission: AdmissionConfig::default(),
            request_read_timeout: Duration::from_secs(2),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            server_name: "mpq-server".to_string(),
            read_only: false,
            notify_queue_cap: DEFAULT_NOTIFY_QUEUE_CAP,
        }
    }
}

/// What the server did over its lifetime, reported after the drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Statements executed to completion (including typed errors).
    pub queries_served: u64,
    /// Statements refused because the admission queue was full.
    pub rejected_busy: u64,
    /// Statements refused after waiting out the admission queue.
    pub rejected_timeout: u64,
    /// LSN of the shutdown checkpoint; `None` for in-memory engines.
    pub checkpoint_lsn: Option<u64>,
}

impl std::fmt::Display for DrainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drained: {} connections, {} queries served, {} busy, {} queue-timeout, checkpoint {}",
            self.connections,
            self.queries_served,
            self.rejected_busy,
            self.rejected_timeout,
            match self.checkpoint_lsn {
                Some(lsn) => format!("lsn={lsn}"),
                None => "skipped (in-memory)".to_string(),
            }
        )
    }
}

/// Shared server state, visible to the accept loop and every
/// connection thread.
struct Shared {
    engine: Arc<Engine>,
    cfg: ServerConfig,
    admission: AdmissionController,
    shutting_down: AtomicBool,
    shutdown_signal: Mutex<bool>,
    shutdown_cv: Condvar,
    connections: AtomicU64,
    queries_served: AtomicU64,
    next_session_id: AtomicU64,
    /// Routes engine subscription matches to the owning sessions'
    /// bounded push queues.
    subs: Arc<SubRegistry>,
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        let mut flagged = self.shutdown_signal.lock().unwrap_or_else(|p| p.into_inner());
        *flagged = true;
        drop(flagged);
        self.shutdown_cv.notify_all();
    }

    fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }
}

/// A running server. Dropping the handle without calling
/// [`Server::shutdown`] aborts the accept loop without draining —
/// always shut down explicitly in production paths.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds and starts serving `engine` per `cfg`. Returns once the
    /// listener is live; serving happens on background threads.
    pub fn start(engine: Arc<Engine>, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let admission = AdmissionController::new(cfg.admission.clone());
        let subs = Arc::new(SubRegistry::default());
        // Install the engine's notify sink: every match a committed
        // INSERT produces lands in its owner session's bounded queue,
        // on the *writer's* thread, without ever blocking it.
        let sink_subs = Arc::clone(&subs);
        let sink_faults = engine.fault_injector();
        engine.set_notify_sink(Some(Arc::new(move |ev| {
            sink_subs.deliver(ev, &sink_faults);
        })));
        let shared = Arc::new(Shared {
            engine,
            cfg,
            admission,
            shutting_down: AtomicBool::new(false),
            shutdown_signal: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            connections: AtomicU64::new(0),
            queries_served: AtomicU64::new(0),
            next_session_id: AtomicU64::new(1),
            subs,
        });
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conn_threads);
        let accept_thread = thread::Builder::new()
            .name("mpq-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared, accept_conns))?;
        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// True once shutdown has been requested (by a client `Shutdown`
    /// request or by [`ServerHandle::shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.is_shutting_down()
    }

    /// Blocks until a shutdown is requested from any source.
    pub fn wait_shutdown_requested(&self) {
        let mut flagged =
            self.shared.shutdown_signal.lock().unwrap_or_else(|p| p.into_inner());
        while !*flagged {
            flagged = self
                .shared
                .shutdown_cv
                .wait(flagged)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Stops accepting, drains in-flight statements (their responses
    /// are still written), closes every connection, checkpoints the
    /// engine, and reports what happened.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.request_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Connection threads observe the flag at their next poll tick
        // (idle) or after finishing their in-flight statement.
        let handles: Vec<_> = {
            let mut guard =
                self.conn_threads.lock().unwrap_or_else(|p| p.into_inner());
            guard.drain(..).collect()
        };
        for t in handles {
            let _ = t.join();
        }
        // The sessions are gone; stop producing notifications for them.
        self.shared.engine.set_notify_sink(None);
        let checkpoint_lsn = self.shared.engine.checkpoint().ok();
        let stats = self.shared.admission.stats();
        DrainReport {
            connections: self.shared.connections.load(Ordering::Relaxed),
            queries_served: self.shared.queries_served.load(Ordering::Relaxed),
            rejected_busy: stats.rejected_busy,
            rejected_timeout: stats.rejected_timeout,
            checkpoint_lsn,
        }
    }
}

const POLL_INTERVAL: Duration = Duration::from_millis(5);

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                let spawned = thread::Builder::new()
                    .name("mpq-conn".to_string())
                    .spawn(move || {
                        // A connection thread must never take the
                        // server down; errors just close the socket.
                        let _ = serve_connection(stream, conn_shared);
                    });
                if let Ok(handle) = spawned {
                    conn_threads.lock().unwrap_or_else(|p| p.into_inner()).push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
            }
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Why the connection loop stopped (internal; the socket closes either
/// way).
enum ConnExit {
    /// Peer said goodbye, disconnected, or shutdown drained it.
    Clean,
    /// Protocol violation or I/O failure; already reported to the peer
    /// when possible.
    Abrupt,
}

fn serve_connection(mut stream: TcpStream, shared: Arc<Shared>) -> ConnExit {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let faults = shared.engine.fault_injector();

    // Handshake: the first frame must be a version-matched Hello, and
    // it must arrive within the read-timeout budget — a pre-Hello
    // connection holds server resources while having proven nothing.
    let mut buf: Vec<u8> = Vec::new();
    let hello = match read_request(&mut stream, &mut buf, &shared, true, None, PROTO_VERSION) {
        Ok(Some(req)) => req,
        Ok(None) => return ConnExit::Clean,
        Err(exit) => return exit,
    };
    // The connection speaks the version the client asked for: v7
    // natively, v6/v5/v4/v3 for old clients (the shape differences are
    // the Health replication tail, absent below v4, the cascade tails,
    // absent below v5, the subscription machinery — counters, Notify
    // push frames, SUBSCRIBE/UNSUBSCRIBE — absent below v6, and the
    // adaptive-evaluation counter tail, absent below v7).
    let (proto, session_id) = match hello {
        Request::Hello { proto_version, client: _ }
            if proto_version == PROTO_VERSION
                || proto_version == PROTO_VERSION_V6
                || proto_version == PROTO_VERSION_V5
                || proto_version == PROTO_VERSION_V4
                || proto_version == PROTO_VERSION_V3 =>
        {
            let session_id = shared.next_session_id.fetch_add(1, Ordering::Relaxed);
            let resp = Response::Hello {
                proto_version,
                session_id,
                server: shared.cfg.server_name.clone(),
            };
            if send_response(&mut stream, &resp, proto_version, &faults).is_err() {
                return ConnExit::Abrupt;
            }
            (proto_version, session_id)
        }
        Request::Hello { proto_version, .. } => {
            let _ = send_response(
                &mut stream,
                &Response::Error(ServerError::Protocol {
                    detail: format!(
                        "protocol version {proto_version} not supported (server speaks {PROTO_VERSION})"
                    ),
                }),
                PROTO_VERSION,
                &faults,
            );
            return ConnExit::Abrupt;
        }
        _ => {
            let _ = send_response(
                &mut stream,
                &Response::Error(ServerError::Protocol {
                    detail: "first request must be Hello".to_string(),
                }),
                PROTO_VERSION,
                &faults,
            );
            return ConnExit::Abrupt;
        }
    };

    // Push queue: only a v6+ peer understands Notify frames, so only
    // such a session gets one (and may SUBSCRIBE).
    let notify = (proto >= PROTO_VERSION_V6)
        .then(|| shared.subs.register_session(session_id, shared.cfg.notify_queue_cap));
    let exit = session_loop(&mut stream, &mut buf, &shared, proto, session_id, notify.as_deref());
    // Whatever way the connection ended, the session's queue and its
    // claim on subscriptions go with it (the subscriptions themselves
    // are durable engine state and survive).
    shared.subs.drop_session(session_id);
    exit
}

fn session_loop(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    shared: &Arc<Shared>,
    proto: u32,
    session_id: u64,
    notify: Option<&NotifyQueue>,
) -> ConnExit {
    let faults = shared.engine.fault_injector();
    // Session scope: SET statements on this connection land here, not
    // on the engine-wide defaults.
    let mut session = SessionState::new();

    loop {
        let req = match read_request(stream, buf, shared, false, notify, proto) {
            Ok(Some(req)) => req,
            Ok(None) => return ConnExit::Clean,
            Err(exit) => return exit,
        };
        let resp = match req {
            Request::Hello { .. } => Response::Error(ServerError::Protocol {
                detail: "duplicate Hello".to_string(),
            }),
            Request::Statement { sql, stmt_id } => {
                let resp = handle_statement(shared, &mut session, &sql, stmt_id, proto);
                // Ownership bookkeeping *before* the ack goes out: once
                // the client sees `Subscribed`, matches from any later
                // acked INSERT are guaranteed a queue to land in.
                if let Response::Outcome(outcome) = &resp {
                    match outcome {
                        StatementOutcome::Subscribed { id } => {
                            shared.subs.claim(*id, session_id);
                        }
                        StatementOutcome::Unsubscribed { id } => shared.subs.release(*id),
                        _ => {}
                    }
                }
                resp
            }
            Request::Health => Response::Health(shared.engine.health()),
            Request::Shutdown => {
                shared.request_shutdown();
                Response::ShutdownStarted
            }
            Request::Goodbye => {
                let _ = send_response(stream, &Response::Goodbye, proto, &faults);
                let _ = stream.shutdown(SockShutdown::Both);
                return ConnExit::Clean;
            }
            // Replication traffic bypasses admission control: a stalled
            // admission queue must not be able to stall the standby
            // (which would stall every synchronous commit).
            Request::ReplState => Response::ReplState {
                role: shared.engine.role(),
                epoch: shared.engine.epoch(),
                next_lsn: shared.engine.last_lsn() + 1,
            },
            Request::ReplAppend { epoch, frames } => {
                match shared.engine.apply_replicated_frames(epoch, &frames) {
                    Ok(next_lsn) => {
                        Response::ReplAck { next_lsn, epoch: shared.engine.epoch() }
                    }
                    Err(e) => Response::Error(ServerError::Engine(e)),
                }
            }
            Request::ReplSnapshot { snapshot } => {
                match shared.engine.install_replica_snapshot(&snapshot) {
                    Ok(next_lsn) => {
                        Response::ReplAck { next_lsn, epoch: shared.engine.epoch() }
                    }
                    Err(e) => Response::Error(ServerError::Engine(e)),
                }
            }
            Request::Promote => match shared.engine.promote() {
                Ok(_) => Response::ReplState {
                    role: shared.engine.role(),
                    epoch: shared.engine.epoch(),
                    next_lsn: shared.engine.last_lsn() + 1,
                },
                Err(e) => Response::Error(ServerError::Engine(e)),
            },
        };
        let failed = send_response(stream, &resp, proto, &faults).is_err();
        if failed || matches!(resp, Response::Error(ServerError::Protocol { .. })) {
            let _ = stream.shutdown(SockShutdown::Both);
            return ConnExit::Abrupt;
        }
        // Flush pushes eagerly after each response: the common case is
        // a session whose own INSERT just matched its own subscription
        // — the Notify lands right behind the Inserted ack.
        if let Some(q) = notify {
            if flush_notifications(stream, q, proto, &faults).is_err() {
                let _ = stream.shutdown(SockShutdown::Both);
                return ConnExit::Abrupt;
            }
        }
    }
}

/// Writes every queued notification (matches first, then any gap
/// marker in stream position) as `Notify` frames.
fn flush_notifications(
    stream: &mut TcpStream,
    queue: &NotifyQueue,
    proto: u32,
    faults: &FaultInjector,
) -> io::Result<()> {
    while let Some(n) = queue.pop() {
        send_response(stream, &Response::Notify(n), proto, faults)?;
    }
    Ok(())
}

fn handle_statement(
    shared: &Shared,
    session: &mut SessionState,
    sql: &str,
    stmt_id: Option<StatementId>,
    proto: u32,
) -> Response {
    if shared.is_shutting_down() {
        return Response::Error(ServerError::ShuttingDown);
    }
    // A pre-v6 peer has no way to receive the Notify frames a
    // subscription exists to produce — registering one would be a
    // silent black hole, so it is a protocol violation instead.
    if proto < PROTO_VERSION_V6 && is_subscription_sql(sql) {
        return Response::Error(ServerError::Protocol {
            detail: format!(
                "SUBSCRIBE/UNSUBSCRIBE require protocol v{PROTO_VERSION_V6} (peer speaks v{proto})"
            ),
        });
    }
    // Two refusal sources: a statically read-only server (`--read-only`)
    // and the engine's *live* role — a standby refuses mutations until
    // the moment it is promoted, then accepts them on the very next
    // statement with no restart.
    if (shared.cfg.read_only || shared.engine.role() == mpq_engine::ReplRole::Standby)
        && is_mutation_sql(sql)
    {
        return Response::Error(ServerError::ReadOnly {
            detail: "this server only accepts reads (standby or --read-only)".to_string(),
        });
    }
    let permit = match shared.admission.admit() {
        Ok(p) => p,
        Err(AdmissionError::Busy { in_flight, queued }) => {
            return Response::Error(ServerError::Busy { in_flight, queued });
        }
        Err(AdmissionError::Timeout { waited_ms }) => {
            return Response::Error(ServerError::QueueTimeout { waited_ms });
        }
    };
    // A stamped statement goes through the exactly-once path: if the
    // same id already applied (live or replayed from the WAL after a
    // crash), the original outcome comes back instead of a re-apply.
    let result = match stmt_id {
        Some(id) => shared.engine.execute_sql_stamped(sql, session, id),
        None => shared.engine.execute_sql_in(sql, session),
    };
    drop(permit);
    shared.queries_served.fetch_add(1, Ordering::Relaxed);
    match result {
        Ok(outcome) => Response::Outcome(outcome),
        Err(e) => Response::Error(ServerError::Engine(e)),
    }
}

/// True when the statement's leading keyword marks a mutation. The
/// grammar's only mutating statements are `INSERT`, `CREATE ...`
/// (model/index), and `SUBSCRIBE`/`UNSUBSCRIBE` (the subscription
/// catalog is durable, WAL-logged state), so a keyword test is exact —
/// and it must not parse, because a read-only server refuses mutations
/// even for tables it does not know about yet.
fn is_mutation_sql(sql: &str) -> bool {
    let first = sql.split_whitespace().next().unwrap_or("");
    first.eq_ignore_ascii_case("insert")
        || first.eq_ignore_ascii_case("create")
        || is_subscription_sql(sql)
}

/// True when the statement's leading keyword is `SUBSCRIBE` or
/// `UNSUBSCRIBE` — the statements only a v6 peer may issue.
fn is_subscription_sql(sql: &str) -> bool {
    let first = sql.split_whitespace().next().unwrap_or("");
    first.eq_ignore_ascii_case("subscribe") || first.eq_ignore_ascii_case("unsubscribe")
}

/// Reads one request frame. `Ok(None)` means the connection ended
/// cleanly (EOF while idle, or server shutdown while idle — the latter
/// after a best-effort `Goodbye`). The slow-loris budget starts ticking
/// once a partial frame exists — or immediately when `timebox_idle` is
/// set (the handshake read: a pre-Hello connection may not idle).
///
/// With a `notify` queue, pending subscription pushes are flushed as
/// `Notify` frames on every poll tick (the 25 ms read timeout), so a
/// subscriber sitting idle between requests still receives matches
/// promptly.
fn read_request(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    shared: &Shared,
    timebox_idle: bool,
    notify: Option<&NotifyQueue>,
    proto: u32,
) -> Result<Option<Request>, ConnExit> {
    let faults = shared.engine.fault_injector();
    let mut partial_since: Option<Instant> =
        if timebox_idle { Some(Instant::now()) } else { None };
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some(q) = notify {
            if flush_notifications(stream, q, proto, &faults).is_err() {
                let _ = stream.shutdown(SockShutdown::Both);
                return Err(ConnExit::Abrupt);
            }
        }
        // Try to parse a complete frame off the front of the buffer.
        match decode_frame(buf, shared.cfg.max_frame_len) {
            Ok((payload, consumed)) => {
                buf.drain(..consumed);
                return match Request::decode(&payload) {
                    Ok(req) => Ok(Some(req)),
                    Err(e) => {
                        let _ = send_response(
                            stream,
                            &Response::Error(ServerError::Protocol {
                                detail: format!("undecodable request: {e}"),
                            }),
                            PROTO_VERSION,
                            &faults,
                        );
                        let _ = stream.shutdown(SockShutdown::Both);
                        Err(ConnExit::Abrupt)
                    }
                };
            }
            Err(FrameError::Incomplete { .. }) => {}
            Err(e) => {
                // TooLong / BadCrc: the stream cannot be resynchronized.
                let _ = send_response(
                    stream,
                    &Response::Error(ServerError::Protocol {
                        detail: format!("bad frame: {e}"),
                    }),
                    PROTO_VERSION,
                    &faults,
                );
                let _ = stream.shutdown(SockShutdown::Both);
                return Err(ConnExit::Abrupt);
            }
        }

        if buf.is_empty() {
            if !timebox_idle {
                partial_since = None;
            }
            if shared.is_shutting_down() {
                // Idle at shutdown: wave goodbye and drain out.
                let _ = send_response(stream, &Response::Goodbye, PROTO_VERSION, &faults);
                let _ = stream.shutdown(SockShutdown::Both);
                return Ok(None);
            }
        }
        if let Some(started) = (!buf.is_empty() || timebox_idle)
            .then(|| *partial_since.get_or_insert_with(Instant::now))
        {
            if started.elapsed() > shared.cfg.request_read_timeout {
                // Slow-loris: a partial frame (or an unfinished
                // handshake) has been dribbling in for longer than any
                // honest client needs.
                let detail = if timebox_idle {
                    "handshake timed out".to_string()
                } else {
                    "request read timed out".to_string()
                };
                let _ = send_response(
                    stream,
                    &Response::Error(ServerError::Protocol { detail }),
                    PROTO_VERSION,
                    &faults,
                );
                let _ = stream.shutdown(SockShutdown::Both);
                return Err(ConnExit::Abrupt);
            }
        }

        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF. Mid-frame it is abrupt, idle it is clean.
                return if buf.is_empty() { Ok(None) } else { Err(ConnExit::Abrupt) };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(ConnExit::Abrupt),
        }
    }
}

/// Writes one response frame, honouring armed connection faults:
/// `conn_torn_frame` flips a payload byte (CRC now fails on the
/// client), `conn_drop_mid_response` writes half the frame and severs
/// the socket.
fn send_response(
    stream: &mut TcpStream,
    resp: &Response,
    proto_version: u32,
    faults: &FaultInjector,
) -> io::Result<()> {
    let payload = resp.encode_versioned(proto_version);
    let mut frame = encode_frame(&payload);
    if faults.take_conn_torn_frame() {
        // Corrupt one payload byte *after* the CRC was computed.
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
    }
    if faults.take_conn_drop_mid_response() {
        let half = frame.len() / 2;
        stream.write_all(&frame[..half])?;
        stream.flush()?;
        let _ = stream.shutdown(SockShutdown::Both);
        return Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "fault injection: connection dropped mid-response",
        ));
    }
    stream.write_all(&frame)?;
    stream.flush()
}
