//! Secondary indexes, single- or multi-column (composite).
//!
//! A composite index keys rows by a tuple of member values over its
//! column list. Domains are small dictionary-encoded member spaces, so
//! the index is a sorted list of `(key, posting list)` pairs; probes
//! filter keys by per-column atom predicates (equality, range or set —
//! any subset of the index's columns may be constrained) and concatenate
//! the matching posting lists. The executor charges index pages
//! proportional to postings read, and heap pages by distinct pages among
//! fetched row ids.
//!
//! Multi-column support matters for reproducing the paper: upper
//! envelopes are conjunctions of moderately selective atoms (often on
//! binary attributes), and only a composite key turns their *product*
//! selectivity into an index seek — which is exactly the kind of index
//! the Index Tuning Wizard recommends for such workloads.

use crate::expr::AtomPred;
use crate::table::{RowId, Table};
use mpq_types::{AttrId, Member};
use std::collections::HashMap;

/// A secondary index over one or more columns.
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    /// Indexed columns, ascending by attribute id (key order).
    columns: Vec<AttrId>,
    /// Distinct keys (sorted) with their posting lists (each sorted).
    entries: Vec<(Vec<Member>, Vec<RowId>)>,
    n_rows: usize,
}

impl SecondaryIndex {
    /// Builds an index over `columns` of `table`. Columns are stored in
    /// ascending attribute order; duplicates are removed.
    pub fn build(table: &Table, columns: &[AttrId]) -> SecondaryIndex {
        let mut cols = columns.to_vec();
        cols.sort_unstable();
        cols.dedup();
        assert!(!cols.is_empty(), "an index needs at least one column");
        let mut map: HashMap<Vec<Member>, Vec<RowId>> = HashMap::new();
        for row in 0..table.n_rows() as RowId {
            let key: Vec<Member> = cols.iter().map(|c| table.cell(row, c.index())).collect();
            map.entry(key).or_default().push(row);
        }
        let mut entries: Vec<(Vec<Member>, Vec<RowId>)> = map.into_iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        SecondaryIndex { columns: cols, entries, n_rows: table.n_rows() }
    }

    /// The indexed columns (ascending).
    pub fn columns(&self) -> &[AttrId] {
        &self.columns
    }

    /// Convenience for single-column indexes.
    pub fn column(&self) -> AttrId {
        self.columns[0]
    }

    /// True if this index is exactly over the given (sorted) column set.
    pub fn is_over(&self, cols: &[AttrId]) -> bool {
        self.columns == cols
    }

    /// Number of rows indexed.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of distinct keys.
    pub fn n_keys(&self) -> usize {
        self.entries.len()
    }

    /// Rows matching the per-column predicates, ascending by row id.
    /// `preds` may constrain any subset of the index's columns;
    /// unconstrained columns match everything. Predicates on columns not
    /// in the index are ignored (the caller keeps them as residual).
    pub fn probe(&self, preds: &[(AttrId, AtomPred)]) -> Vec<RowId> {
        let filters = self.align(preds);
        let mut out: Vec<RowId> = Vec::new();
        self.for_matching(&filters, |postings| out.extend_from_slice(postings));
        out.sort_unstable();
        out
    }

    /// Number of postings a probe would read, without materializing.
    pub fn probe_count(&self, preds: &[(AttrId, AtomPred)]) -> usize {
        let filters = self.align(preds);
        let mut n = 0;
        self.for_matching(&filters, |postings| n += postings.len());
        n
    }

    /// Visits the posting lists of all matching keys. Keys are sorted,
    /// so a constraint on the leading column narrows the scan to its
    /// contiguous key ranges (the B-tree seek); remaining columns filter
    /// within.
    fn for_matching(&self, filters: &[Option<&AtomPred>], mut f: impl FnMut(&[RowId])) {
        let scan = |range: std::ops::Range<usize>, f: &mut dyn FnMut(&[RowId])| {
            for (key, postings) in &self.entries[range] {
                if key_matches(key, filters) {
                    f(postings);
                }
            }
        };
        match filters.first().copied().flatten() {
            Some(AtomPred::Eq(m)) => scan(self.first_col_range(*m, *m), &mut f),
            Some(AtomPred::Range { lo, hi }) => scan(self.first_col_range(*lo, *hi), &mut f),
            Some(AtomPred::In(s)) => {
                // Visit each member's contiguous key range.
                for m in s.iter() {
                    scan(self.first_col_range(m, m), &mut f);
                }
            }
            None => scan(0..self.entries.len(), &mut f),
        }
    }

    /// Index range of keys whose first column lies in `lo..=hi`.
    fn first_col_range(&self, lo: Member, hi: Member) -> std::ops::Range<usize> {
        let start = self.entries.partition_point(|(k, _)| k[0] < lo);
        let end = self.entries.partition_point(|(k, _)| k[0] <= hi);
        start..end
    }

    /// Aligns caller predicates with key positions.
    fn align<'p>(&self, preds: &'p [(AttrId, AtomPred)]) -> Vec<Option<&'p AtomPred>> {
        self.columns
            .iter()
            .map(|c| preds.iter().find(|(a, _)| a == c).map(|(_, p)| p))
            .collect()
    }
}

fn key_matches(key: &[Member], filters: &[Option<&AtomPred>]) -> bool {
    key.iter()
        .zip(filters)
        .all(|(&m, f)| f.is_none_or(|p| p.matches(m)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_types::{AttrDomain, Attribute, Dataset, MemberSet, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("a", AttrDomain::binned(vec![1.0, 2.0, 3.0]).unwrap()),
            Attribute::new("b", AttrDomain::categorical(["x", "y"])),
        ])
        .unwrap();
        let rows = (0..40).map(|i| vec![(i % 4) as u16, ((i / 4) % 2) as u16]);
        Table::from_dataset("t", &Dataset::from_rows(schema, rows).unwrap())
    }

    #[test]
    fn single_column_probe() {
        let t = table();
        let ix = SecondaryIndex::build(&t, &[AttrId(0)]);
        assert_eq!(ix.columns(), &[AttrId(0)]);
        let rows = ix.probe(&[(AttrId(0), AtomPred::Eq(2))]);
        assert_eq!(rows.len(), 10);
        assert!(rows.windows(2).all(|w| w[0] < w[1]));
        for &r in &rows {
            assert_eq!(t.cell(r, 0), 2);
        }
        assert_eq!(ix.probe_count(&[(AttrId(0), AtomPred::Eq(2))]), 10);
    }

    #[test]
    fn composite_probe_conjunction() {
        let t = table();
        let ix = SecondaryIndex::build(&t, &[AttrId(1), AttrId(0)]); // stored sorted: a, b
        assert_eq!(ix.columns(), &[AttrId(0), AttrId(1)]);
        assert_eq!(ix.n_keys(), 8);
        let rows = ix.probe(&[
            (AttrId(0), AtomPred::Range { lo: 1, hi: 2 }),
            (AttrId(1), AtomPred::Eq(1)),
        ]);
        assert_eq!(rows.len(), 10);
        for &r in &rows {
            assert!((1..=2).contains(&t.cell(r, 0)));
            assert_eq!(t.cell(r, 1), 1);
        }
    }

    #[test]
    fn partial_constraint_matches_everything_else() {
        let t = table();
        let ix = SecondaryIndex::build(&t, &[AttrId(0), AttrId(1)]);
        // Constrain only b; a is unconstrained.
        let rows = ix.probe(&[(AttrId(1), AtomPred::Eq(0))]);
        assert_eq!(rows.len(), 20);
        // Predicates on non-indexed columns are ignored.
        let rows2 = ix.probe(&[(AttrId(1), AtomPred::Eq(0)), (AttrId(9), AtomPred::Eq(0))]);
        assert_eq!(rows, rows2);
    }

    #[test]
    fn in_predicates_on_keys() {
        let t = table();
        let ix = SecondaryIndex::build(&t, &[AttrId(0)]);
        let rows = ix.probe(&[(AttrId(0), AtomPred::In(MemberSet::of(4, [0, 3])))]);
        assert_eq!(rows.len(), 20);
    }

    #[test]
    fn empty_probe_returns_nothing() {
        let t = table();
        let ix = SecondaryIndex::build(&t, &[AttrId(1)]);
        assert!(ix.probe(&[(AttrId(1), AtomPred::Eq(9))]).is_empty());
        assert_eq!(ix.probe_count(&[(AttrId(1), AtomPred::Eq(9))]), 0);
    }

    #[test]
    fn duplicate_columns_are_collapsed() {
        let t = table();
        let ix = SecondaryIndex::build(&t, &[AttrId(0), AttrId(0)]);
        assert_eq!(ix.columns(), &[AttrId(0)]);
        assert!(ix.is_over(&[AttrId(0)]));
    }
}
