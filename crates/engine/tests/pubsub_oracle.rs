//! Differential oracle for standing subscriptions (predicate pub/sub).
//!
//! The invariant under test: the notifications delivered through the
//! engine's notify sink are **exactly** what you would get by re-running
//! every registered query from scratch after each insert and keeping
//! the newly-inserted matches. Because subscription matching evaluates
//! the same rewritten per-row predicate a SELECT does (the inverted
//! envelope index is only a necessary-condition pruner), the expected
//! set can be computed after the fact: a row's verdict under a fixed
//! model catalog never changes, so `matches(q) ∩ rows-inserted-while-q-
//! was-live` is the ground truth regardless of when it is evaluated.
//!
//! Covered here, per the acceptance criteria:
//! * random insert / subscribe / unsubscribe interleavings (proptest)
//!   against the from-scratch re-scan, across all five model
//!   algorithms and session parallelism 1/2/4/8;
//! * crash recovery mid-sequence: durable subscriptions survive a
//!   simulated crash and keep matching identically afterwards;
//! * degraded mode: with the `sub_index_corrupt` fault armed the index
//!   is distrusted and every subscription fully evaluated — delivery
//!   must be oracle-identical, and health must carry the typed note.

use mpq_engine::{Engine, MatchEvent, SessionState, StatementOutcome, Table};
use mpq_types::{AttrDomain, Attribute, Dataset, Schema};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "mpq-pubsub-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Table `t` (index 0): a binned measure, a categorical flag, and the
/// label the classifiers train on. The label pattern (`hi` iff large x
/// on flag `b`) is learnable, so the trees/rules come out non-trivial.
fn seed_table_t() -> Table {
    let schema = Schema::new(vec![
        Attribute::new("x", AttrDomain::binned(vec![2.0, 4.0]).unwrap()),
        Attribute::new("f", AttrDomain::categorical(["a", "b"])),
        Attribute::new("label", AttrDomain::categorical(["lo", "hi"])),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    for i in 0..120u16 {
        let x = i % 3;
        let f = (i / 3) % 2;
        let y = u16::from(x == 2 && f == 1);
        ds.push_encoded(&[x, f, y]).unwrap();
    }
    Table::from_dataset("t", &ds)
}

/// Table `u` (index 1): all-ordered, as the clustering trainers
/// require — the k-means/GMM subscriptions live here, which also
/// exercises per-table routing in the inverted index.
fn seed_table_u() -> Table {
    let schema = Schema::new(vec![
        Attribute::new("a", AttrDomain::binned(vec![2.0, 4.0]).unwrap()),
        Attribute::new("b", AttrDomain::binned(vec![3.0]).unwrap()),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    for i in 0..120u16 {
        ds.push_encoded(&[i % 3, (i / 3) % 2]).unwrap();
    }
    Table::from_dataset("u", &ds)
}

/// One model per algorithm the engine supports.
const MODELS: &[&str] = &[
    "CREATE MINING MODEL dt ON t PREDICT label USING decision_tree",
    "CREATE MINING MODEL nb ON t PREDICT label USING naive_bayes",
    "CREATE MINING MODEL ru ON t PREDICT label USING rules",
    "CREATE MINING MODEL km ON u WITH 2 CLUSTERS USING kmeans",
    "CREATE MINING MODEL gm ON u WITH 2 CLUSTERS USING gmm",
];

/// The pool interleavings subscribe from, paired with the table index
/// each query scans: every algorithm appears, plus plain column
/// predicates, a conjunction, and the match-everything subscription.
const QUERIES: &[(&str, usize)] = &[
    ("SELECT * FROM t WHERE PREDICT(dt) = 'hi'", 0),
    ("SELECT * FROM t WHERE PREDICT(nb) = 'lo'", 0),
    ("SELECT * FROM t WHERE PREDICT(ru) = 'hi'", 0),
    ("SELECT * FROM u WHERE PREDICT(km) = 'cluster_0'", 1),
    ("SELECT * FROM u WHERE PREDICT(gm) = 'cluster_1'", 1),
    ("SELECT * FROM t WHERE x > 4", 0),
    ("SELECT * FROM t WHERE PREDICT(dt) = 'hi' AND f = 'a'", 0),
    ("SELECT * FROM t", 0),
];

fn build_engine(dir: Option<&PathBuf>) -> Engine {
    let e = match dir {
        Some(d) => {
            let e = Engine::open(d).unwrap();
            e.create_table(seed_table_t()).unwrap();
            e.create_table(seed_table_u()).unwrap();
            e
        }
        None => {
            let mut cat = mpq_engine::Catalog::new();
            cat.add_table(seed_table_t()).unwrap();
            cat.add_table(seed_table_u()).unwrap();
            Engine::new(cat)
        }
    };
    for sql in MODELS {
        e.execute_sql(sql).unwrap();
    }
    e
}

/// Hooks the notify sink up to a shared log of (subscription, row_id).
fn install_sink(e: &Engine) -> Arc<Mutex<Vec<(u64, u32)>>> {
    let log: Arc<Mutex<Vec<(u64, u32)>>> = Arc::new(Mutex::new(Vec::new()));
    let c = Arc::clone(&log);
    e.set_notify_sink(Some(Arc::new(move |ev: MatchEvent| {
        c.lock().unwrap().push((ev.subscription, ev.row_id));
    })));
    log
}

/// Raw-value INSERT into table `tbl % 2`, members shaped by the choice
/// bytes: `t` gets (a%3, b%2, c%2), `u` gets (a%3, b%2).
fn insert_sql(tbl: u8, a: u8, b: u8, c: u8) -> String {
    if tbl.is_multiple_of(2) {
        let x = [1, 3, 5][(a % 3) as usize];
        let f = ["a", "b"][(b % 2) as usize];
        let label = ["lo", "hi"][(c % 2) as usize];
        format!("INSERT INTO t VALUES ({x}, '{f}', '{label}')")
    } else {
        let av = [1, 3, 5][(a % 3) as usize];
        let bv = [2, 4][(b % 2) as usize];
        format!("INSERT INTO u VALUES ({av}, {bv})")
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Insert one row into table `tbl % 2`, shaped by the choice bytes.
    Insert(u8, u8, u8, u8),
    /// Subscribe to `QUERIES[q % len]`.
    Subscribe(u8),
    /// Unsubscribe the `k % live`-th live subscription (no-op when none
    /// are live).
    Unsubscribe(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Insert twice to bias the interleavings toward matching work (the
    // vendored proptest's `prop_oneof` is unweighted).
    let ins = || {
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(t, a, b, c)| Op::Insert(t, a, b, c))
    };
    prop_oneof![
        ins(),
        ins(),
        any::<u8>().prop_map(Op::Subscribe),
        any::<u8>().prop_map(Op::Unsubscribe),
    ]
}

/// Runs one interleaving at the given parallelism and checks delivered
/// notifications against the from-scratch oracle. Returns the engine so
/// callers can make further assertions.
fn run_scenario(e: &Engine, ops: &[Op], dop: usize) {
    let log = install_sink(e);
    let mut session = SessionState::new();
    e.execute_sql_in(&format!("SET PARALLELISM {dop}"), &mut session).unwrap();

    // Live subscriptions and, per insert, (table, new-row range, live
    // ids at that moment).
    let mut live: Vec<(u64, usize)> = Vec::new();
    let mut subscribed_query: Vec<(u64, usize)> = Vec::new();
    let mut inserts: Vec<(usize, std::ops::Range<u32>, Vec<u64>)> = Vec::new();

    for op in ops {
        match op {
            Op::Insert(tbl, a, b, c) => {
                let ti = (*tbl % 2) as usize;
                let first = e.catalog().table(ti).table.n_rows() as u32;
                let out =
                    e.execute_sql_in(&insert_sql(*tbl, *a, *b, *c), &mut session).unwrap();
                let StatementOutcome::Inserted { rows_inserted, .. } = out else {
                    panic!("INSERT produced {out:?}");
                };
                let range = first..first + rows_inserted as u32;
                inserts.push((ti, range, live.iter().map(|(id, _)| *id).collect()));
            }
            Op::Subscribe(q) => {
                let qi = (*q as usize) % QUERIES.len();
                let out = e
                    .execute_sql_in(&format!("SUBSCRIBE {}", QUERIES[qi].0), &mut session)
                    .unwrap();
                let StatementOutcome::Subscribed { id } = out else {
                    panic!("SUBSCRIBE produced {out:?}");
                };
                live.push((id, qi));
                subscribed_query.push((id, qi));
            }
            Op::Unsubscribe(k) => {
                if live.is_empty() {
                    continue;
                }
                let (id, _) = live.remove((*k as usize) % live.len());
                let out = e
                    .execute_sql_in(&format!("UNSUBSCRIBE {id}"), &mut session)
                    .unwrap();
                assert_eq!(out, StatementOutcome::Unsubscribed { id });
            }
        }
    }

    // The from-scratch oracle: each subscription's query, re-run now.
    // Per-row verdicts are stable under a fixed model catalog, so the
    // final result restricted to an insert's row range equals what the
    // query would have returned for those rows at insert time.
    let mut expected: Vec<(u64, u32)> = Vec::new();
    for (id, qi) in &subscribed_query {
        let (sql, sub_table) = QUERIES[*qi];
        let matched = match e.execute_sql_in(sql, &mut session).unwrap() {
            StatementOutcome::Query(q) => q.rows,
            other => panic!("SELECT produced {other:?}"),
        };
        for (ti, range, live_then) in &inserts {
            if *ti == sub_table && live_then.contains(id) {
                expected
                    .extend(matched.iter().filter(|r| range.contains(r)).map(|r| (*id, *r)));
            }
        }
    }

    let mut delivered = log.lock().unwrap().clone();
    delivered.sort_unstable();
    expected.sort_unstable();
    assert_eq!(
        delivered, expected,
        "delivered notifications diverge from the from-scratch re-scan (dop {dop})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings, in memory, across all four parallelism
    /// levels — the sink must deliver exactly the from-scratch set.
    #[test]
    fn notifications_equal_from_scratch_rescan(
        ops in proptest::collection::vec(op_strategy(), 1..24),
        dop_pick in 0usize..4,
    ) {
        let dop = [1, 2, 4, 8][dop_pick];
        let e = build_engine(None);
        run_scenario(&e, &ops, dop);
    }

    /// The same interleavings with the inverted index distrusted: the
    /// naive full-evaluation fallback must be oracle-identical, and the
    /// engine must say so in its health note.
    #[test]
    fn degraded_index_mode_is_oracle_identical(
        ops in proptest::collection::vec(op_strategy(), 1..16),
        dop_pick in 0usize..4,
    ) {
        let dop = [1, 2, 4, 8][dop_pick];
        let e = build_engine(None);
        e.fault_injector().set_sub_index_corrupt(true);
        run_scenario(&e, &ops, dop);
        // Force one matched insert so degraded matching definitely ran
        // (the random ops may never have inserted under a live sub),
        // then require the typed health note.
        let mut s = SessionState::new();
        e.execute_sql_in("SUBSCRIBE SELECT * FROM t", &mut s).unwrap();
        e.execute_sql_in(&insert_sql(0, 0, 0, 0), &mut s).unwrap();
        let note = e.health().sub_index_note;
        prop_assert!(
            note.as_deref().is_some_and(|n| n.contains("distrusted")),
            "degraded matching must surface a typed health note, got {note:?}"
        );
    }
}

/// Crash mid-sequence: the subscription catalog is WAL-durable, so a
/// recovered engine keeps matching for subscriptions registered before
/// the crash — and stays silent for ones unsubscribed before it.
#[test]
fn subscriptions_survive_crash_recovery_mid_sequence() {
    let dir = temp_dir("crash");
    let e = build_engine(Some(&dir));
    let mut session = SessionState::new();

    let sub_keep = match e
        .execute_sql_in(&format!("SUBSCRIBE {}", QUERIES[5].0), &mut session)
        .unwrap()
    {
        StatementOutcome::Subscribed { id } => id,
        other => panic!("{other:?}"),
    };
    let sub_gone = match e
        .execute_sql_in("SUBSCRIBE SELECT * FROM t", &mut session)
        .unwrap()
    {
        StatementOutcome::Subscribed { id } => id,
        other => panic!("{other:?}"),
    };
    e.execute_sql_in(&format!("UNSUBSCRIBE {sub_gone}"), &mut session).unwrap();

    // One insert before the crash, sink attached: x=5 matches `x > 4`.
    let log_before = install_sink(&e);
    e.execute_sql_in(&insert_sql(0, 2, 0, 0), &mut session).unwrap();
    assert_eq!(log_before.lock().unwrap().len(), 1);
    e.simulate_crash();

    // Recovery: the catalog still knows exactly one subscription...
    let e = Engine::open(&dir).unwrap();
    assert_eq!(e.health().subscriptions, 1, "durable subscription survives the crash");
    let log = install_sink(&e);
    let mut session = SessionState::new();

    // ...and it keeps matching. x=5 rows match, x=1 rows do not, and
    // the unsubscribed id never fires again.
    let first = e.catalog().table(0).table.n_rows() as u32;
    e.execute_sql_in(&insert_sql(0, 2, 1, 1), &mut session).unwrap();
    e.execute_sql_in(&insert_sql(0, 0, 0, 0), &mut session).unwrap();
    let delivered = log.lock().unwrap().clone();
    assert_eq!(delivered, vec![(sub_keep, first)]);
}

/// The `Inserted` outcome's subscription counters are deterministic
/// across session parallelism: identical engines, identical inserts,
/// any dop — identical `subs_matched` / `subs_index_pruned`.
#[test]
fn subscription_counters_deterministic_across_parallelism() {
    let mut baseline: Option<(u64, u64)> = None;
    for dop in [1usize, 2, 4, 8] {
        let e = build_engine(None);
        let mut session = SessionState::new();
        e.execute_sql_in(&format!("SET PARALLELISM {dop}"), &mut session).unwrap();
        for (q, _) in QUERIES {
            e.execute_sql_in(&format!("SUBSCRIBE {q}"), &mut session).unwrap();
        }
        let out = e
            .execute_sql_in("INSERT INTO t VALUES (5, 'b', 'hi'), (1, 'a', 'lo')", &mut session)
            .unwrap();
        let StatementOutcome::Inserted { subs_matched, subs_index_pruned, .. } = out else {
            panic!("{out:?}");
        };
        assert!(subs_matched > 0, "the catch-all subscription matches every insert");
        match baseline {
            None => baseline = Some((subs_matched, subs_index_pruned)),
            Some(b) => assert_eq!(
                (subs_matched, subs_index_pruned),
                b,
                "counters must not depend on parallelism (dop {dop})"
            ),
        }
    }
}

/// The overflow-pulse fault lives server-side (it drops one queued
/// notification); at the engine boundary it must leave matching and
/// delivery untouched — the sink sees every match regardless.
#[test]
fn engine_delivery_ignores_notify_overflow_pulse() {
    let e = build_engine(None);
    e.fault_injector().set_notify_overflow_pulse(true);
    let log = install_sink(&e);
    let mut session = SessionState::new();
    e.execute_sql_in("SUBSCRIBE SELECT * FROM t", &mut session).unwrap();
    e.execute_sql_in(&insert_sql(0, 0, 0, 0), &mut session).unwrap();
    assert_eq!(log.lock().unwrap().len(), 1, "the pulse is consumed downstream, not here");
    assert!(e.fault_injector().notify_overflow_pulse_armed(), "engine must not consume it");
}
