//! Offline, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the API subset its benches use: [`Criterion`],
//! benchmark groups, [`Bencher::iter`], [`BenchmarkId`], and the
//! `criterion_group!` / `criterion_main!` macros. Each bench body is
//! executed a small fixed number of iterations and the mean wall-clock
//! time is printed — enough to smoke-test benches and get a coarse
//! number, with none of upstream's statistics.

use std::fmt::Display;
use std::time::Instant;

/// Iterations per benchmark (fixed; no warm-up or sampling).
const ITERATIONS: u32 = 3;

/// Runs one benchmark body via [`Bencher::iter`].
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            let _ = std::hint::black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / ITERATIONS as f64;
    }
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one("", &id.into(), f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; sampling is fixed here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed here.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into(), f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, mut f: F) {
    let mut b = Bencher { nanos_per_iter: 0.0 };
    f(&mut b);
    let label = if group.is_empty() { id.id.clone() } else { format!("{}/{}", group, id.id) };
    println!("bench {:<50} {:>14.0} ns/iter", label, b.nanos_per_iter);
}

/// Declares a group function running each target benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
