//! `mpq-repl`: a line-oriented client for `mpq-serverd`.
//!
//! ```text
//! mpq-repl (--connect HOST:PORT | --port-file FILE)
//! ```
//!
//! Reads statements from stdin, one per line, and prints each outcome.
//! Lines starting with `.` are meta commands:
//!
//! * `.health`            — print the engine health report
//! * `.subscribe <query>` — register a standing query (`SUBSCRIBE ...`)
//! * `.unsubscribe <id>`  — drop a standing query (`UNSUBSCRIBE <id>`)
//! * `.poll [ms]`         — print pending notifications; with `ms`,
//!   wait up to that long for the first one to arrive
//! * `.shutdown`          — ask the server to drain and exit
//! * `.quit`              — close this session (EOF does the same)
//!
//! Everything else is sent as SQL. Server-push `Notify` frames (matches
//! against this session's subscriptions) are drained and printed after
//! each executed line — between commands, never mid-line — so piped
//! use stays deterministic and interactive editing is never corrupted.
//! Suitable both interactively and piped (`printf '...\n' | mpq-repl
//! --port-file p`), which is how the CI smoke tests drive it.

use mpq_client::{Client, ClientError, Notification};
use mpq_engine::StatementOutcome;
use std::io::BufRead;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn parse_addr() -> Result<String, String> {
    let mut addr: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--connect" => {
                addr = Some(it.next().ok_or("--connect requires HOST:PORT")?);
            }
            "--port-file" => {
                let path = it.next().ok_or("--port-file requires a path")?;
                let contents = std::fs::read_to_string(&path)
                    .map_err(|e| format!("read {path}: {e}"))?;
                addr = Some(contents.trim().to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    addr.ok_or_else(|| "need --connect HOST:PORT or --port-file FILE".to_string())
}

fn print_outcome(outcome: &StatementOutcome) {
    match outcome {
        StatementOutcome::Query(q) => {
            println!(
                "{} rows ({} examined, {} heap + {} index pages, {} model calls, {:?}){}",
                q.rows.len(),
                q.metrics.rows_examined,
                q.metrics.heap_pages_read,
                q.metrics.index_pages_read,
                q.metrics.model_invocations,
                q.metrics.elapsed,
                if q.cached_plan { " [cached plan]" } else { "" },
            );
            // Adaptive-evaluation counters (protocol v7); zero against
            // an older server or with SET ADAPTIVE OFF.
            if q.metrics.clauses_reordered > 0
                || q.metrics.factor_hits > 0
                || q.metrics.feedback_entries > 0
            {
                println!(
                    "adaptive: {} clauses reordered, {} factor hits, {} feedback entries",
                    q.metrics.clauses_reordered,
                    q.metrics.factor_hits,
                    q.metrics.feedback_entries,
                );
            }
            if q.rows.is_empty() && !q.plan.is_empty() && q.metrics.rows_examined == 0 {
                // EXPLAIN returns no rows and zero metrics: show the plan.
                println!("{}", q.plan);
            }
        }
        StatementOutcome::ModelCreated { name, n_classes, degraded, .. } => {
            match degraded {
                Some(reason) => println!(
                    "model {name} created ({n_classes} classes; DEGRADED: {reason})"
                ),
                None => println!("model {name} created ({n_classes} classes)"),
            }
        }
        StatementOutcome::Inserted { table, rows_inserted, subs_matched, subs_index_pruned } => {
            if *subs_matched > 0 || *subs_index_pruned > 0 {
                println!(
                    "{rows_inserted} rows inserted into {table} \
                     ({subs_matched} subscription matches, {subs_index_pruned} index-pruned)"
                );
            } else {
                println!("{rows_inserted} rows inserted into {table}");
            }
        }
        StatementOutcome::Subscribed { id } => {
            println!("subscription {id} registered");
        }
        StatementOutcome::Unsubscribed { id } => {
            println!("subscription {id} dropped");
        }
        StatementOutcome::ParallelismSet { dop } => {
            println!("session parallelism set to {dop}");
        }
        StatementOutcome::AdaptiveSet { on } => {
            println!("session adaptive evaluation {}", if *on { "on" } else { "off" });
        }
        StatementOutcome::GuardSet { guard } => {
            println!("session guard set: {guard:?}");
        }
    }
}

fn print_notification(n: &Notification) {
    match n {
        Notification::Match { subscription, table, row_id, row, metrics } => {
            let members: Vec<String> = row.iter().map(|m| m.to_string()).collect();
            println!(
                "notify: subscription {subscription} matched {table} row {row_id} \
                 [{}] (index-pruned {}, residual {}, scorer-banded {})",
                members.join(", "),
                metrics.index_pruned,
                metrics.residual_evaluated,
                metrics.scorer_banded,
            );
        }
        Notification::Gap { dropped } => {
            println!("notify: GAP — {dropped} notifications dropped (slow consumer)");
        }
    }
}

/// Prints every notification already queued or readable right now.
/// Returns how many were printed, or the connection-fatal error.
fn drain_notifications(client: &mut Client) -> Result<usize, ClientError> {
    let mut n = 0;
    while let Some(notif) = client.poll_notification()? {
        print_notification(&notif);
        n += 1;
    }
    Ok(n)
}

/// `.poll [ms]`: drain immediately; with a deadline, keep re-polling
/// until at least one notification has printed or the time is up.
fn poll_until(client: &mut Client, wait: Option<Duration>) -> Result<(), ClientError> {
    let mut printed = drain_notifications(client)?;
    if let Some(wait) = wait {
        let deadline = Instant::now() + wait;
        while printed == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
            printed += drain_notifications(client)?;
        }
    }
    if printed == 0 {
        println!("no notifications pending");
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let addr = parse_addr()?;
    let mut client =
        Client::connect_named(&addr, "mpq-repl").map_err(|e| format!("connect {addr}: {e}"))?;
    eprintln!("connected to {addr} (session {})", client.session_id());

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            ".quit" => break,
            ".subscribe" if !rest.is_empty() => {
                match client.statement(&format!("SUBSCRIBE {rest}")) {
                    Ok(outcome) => print_outcome(&outcome),
                    Err(ClientError::Remote(e)) => println!("error: {e}"),
                    Err(e) => return Err(format!("connection failed: {e}")),
                }
            }
            ".unsubscribe" if !rest.is_empty() => {
                match client.statement(&format!("UNSUBSCRIBE {rest}")) {
                    Ok(outcome) => print_outcome(&outcome),
                    Err(ClientError::Remote(e)) => println!("error: {e}"),
                    Err(e) => return Err(format!("connection failed: {e}")),
                }
            }
            ".poll" => {
                let wait = match rest.parse::<u64>() {
                    Ok(ms) => Some(Duration::from_millis(ms)),
                    Err(_) if rest.is_empty() => None,
                    Err(_) => {
                        println!("error: .poll takes an optional wait in milliseconds");
                        continue;
                    }
                };
                if let Err(e) = poll_until(&mut client, wait) {
                    return Err(format!("connection failed: {e}"));
                }
            }
            ".health" => match client.health() {
                Ok(h) => {
                    println!(
                        "health: {} tables, {} models, {} cached plans, {} subscriptions",
                        h.tables,
                        h.models.len(),
                        h.cached_plans,
                        h.subscriptions
                    );
                    if let Some(note) = &h.sub_index_note {
                        println!("  subscription matcher: {note}");
                    }
                    // Replication fields arrived with protocol v4; a v3
                    // server's report decodes with the defaults (role
                    // primary, epoch 0, no lag), so print the lag line
                    // only when the server actually measured one.
                    println!("  role: {}, epoch: {}", h.role, h.epoch);
                    if let (Some(records), Some(bytes)) =
                        (h.replica_lag_records, h.replica_lag_bytes)
                    {
                        println!("  replica lag: {records} records ({bytes} bytes)");
                    }
                    for m in &h.models {
                        println!(
                            "  model {} v{} ({}/{} exact envelopes){}",
                            m.name,
                            m.version,
                            m.exact_envelopes,
                            m.n_envelopes,
                            match &m.degraded {
                                Some(r) => format!(" DEGRADED: {r}"),
                                None => String::new(),
                            }
                        );
                    }
                    if let Some(rec) = &h.recovery {
                        println!(
                            "  recovery: clean_shutdown={} replayed={} dropped={}",
                            rec.clean_shutdown, rec.wal_records_replayed, rec.records_dropped
                        );
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            ".shutdown" => {
                match client.shutdown_server() {
                    Ok(()) => println!("server shutting down"),
                    Err(e) => println!("error: {e}"),
                }
                break;
            }
            _ => match client.statement(line) {
                Ok(outcome) => print_outcome(&outcome),
                // Typed remote errors keep the session alive; anything
                // else (disconnect, torn frame) ends it.
                Err(ClientError::Remote(e)) => println!("error: {e}"),
                Err(e) => return Err(format!("connection failed: {e}")),
            },
        }
        // Safe point between commands: surface any pushes that arrived
        // while the line above executed.
        if let Err(e) = drain_notifications(&mut client) {
            return Err(format!("connection failed: {e}"));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mpq-repl: error: {e}");
            ExitCode::FAILURE
        }
    }
}
