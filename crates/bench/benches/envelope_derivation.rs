//! Derivation micro-benchmarks and the DESIGN.md ablations:
//!
//! * top-down (Algorithm 1) vs the naive full-enumeration baseline — the
//!   paper's §3.2.2 motivation (the enumeration "took more than 24 hours"
//!   on a medium data set; here the gap shows up as orders of magnitude);
//! * `Basic` (Lemma 3.1) vs `PairwiseRatio` (generalized Lemma 3.2)
//!   bound modes;
//! * the expansion-budget (threshold) sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpq_core::{
    derive_enumerate, derive_topdown, paper_table1_model, BoundMode, DeriveOptions, ScoreModel,
    DEFAULT_CELL_LIMIT,
};
use mpq_datagen::{generate_train, table2};
use mpq_models::{Classifier as _, NaiveBayes};
use mpq_types::ClassId;
use std::hint::black_box;

fn trained_nb(name: &str) -> NaiveBayes {
    let spec = table2().into_iter().find(|s| s.name == name).expect("known dataset");
    NaiveBayes::train(&generate_train(&spec, 7)).expect("nonempty")
}

fn bench_topdown_vs_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("derive/table1");
    let nb = paper_table1_model();
    let sm = ScoreModel::from_naive_bayes(&nb);
    let schema = nb.schema().clone();
    g.bench_function("topdown", |b| {
        b.iter(|| {
            black_box(derive_topdown(&sm, &schema, ClassId(0), &DeriveOptions::default()))
        })
    });
    g.bench_function("enumeration", |b| {
        b.iter(|| {
            black_box(derive_enumerate(&sm, &schema, ClassId(0), DEFAULT_CELL_LIMIT).unwrap())
        })
    });
    g.finish();

    // A medium model (Diabetes: 8 dims x 8 members = 16.7M cells):
    // enumeration is already painful, top-down is not — measure both on
    // a reduced cell budget so the bench terminates.
    let mut g = c.benchmark_group("derive/diabetes");
    g.sample_size(10);
    let nb = trained_nb("Diabetes");
    let sm = ScoreModel::from_naive_bayes(&nb);
    let schema = nb.schema().clone();
    g.bench_function("topdown", |b| {
        b.iter(|| {
            black_box(derive_topdown(&sm, &schema, ClassId(1), &DeriveOptions::default()))
        })
    });
    g.bench_function("enumeration", |b| {
        b.iter(|| {
            black_box(derive_enumerate(&sm, &schema, ClassId(1), u64::MAX).unwrap())
        })
    });
    g.finish();
}

fn bench_bound_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("derive/bound_mode");
    g.sample_size(10);
    let nb = trained_nb("Shuttle");
    let sm = ScoreModel::from_naive_bayes(&nb);
    let schema = nb.schema().clone();
    for (mode, label) in [(BoundMode::Basic, "basic"), (BoundMode::PairwiseRatio, "pairwise")] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let opts = DeriveOptions { bound_mode: mode, ..Default::default() };
                black_box(derive_topdown(&sm, &schema, ClassId(2), &opts))
            })
        });
    }
    g.finish();
}

fn bench_budget_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("derive/budget");
    g.sample_size(10);
    let nb = trained_nb("Vehicle");
    let sm = ScoreModel::from_naive_bayes(&nb);
    let schema = nb.schema().clone();
    for budget in [64usize, 512, 2048] {
        g.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, &budget| {
            b.iter(|| {
                let opts = DeriveOptions { max_expansions: budget, ..Default::default() };
                black_box(derive_topdown(&sm, &schema, ClassId(0), &opts))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_topdown_vs_enumeration, bench_bound_modes, bench_budget_sweep);
criterion_main!(benches);
