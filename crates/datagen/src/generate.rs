//! Sampling training and test data from a [`DatasetSpec`].

use crate::specs::{AttrSpec, ConceptKind, DatasetSpec};
use mpq_types::{AttrDomain, Attribute, ClassId, Dataset, LabeledDataset, Schema};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Builds the schema of a spec: categorical members are named `v0..`,
/// binned attributes get integer cut points `1.0, 2.0, ...` so member
/// `m` covers `(m, m+1]` (members double as bin indexes).
pub fn schema_of(spec: &DatasetSpec) -> Schema {
    let attrs = spec
        .attrs
        .iter()
        .enumerate()
        .map(|(i, a)| match a {
            AttrSpec::Cat { card } => Attribute::new(
                format!("c{i}"),
                AttrDomain::categorical((0..*card).map(|m| format!("v{m}"))),
            ),
            AttrSpec::Bin { bins } => Attribute::new(
                format!("x{i}"),
                AttrDomain::binned((1..*bins).map(|c| c as f64).collect()).expect("increasing cuts"),
            ),
        })
        .collect();
    Schema::new(attrs).expect("spec names are unique")
}

/// Class names: `k0..k{K-1}` (shared between classifiers trained on the
/// data and the SQL surface).
pub fn class_names(spec: &DatasetSpec) -> Vec<String> {
    (0..spec.n_classes).map(|k| format!("k{k}")).collect()
}

/// Generates the training set of a spec (size = Table 2's training
/// size) with a deterministic seed.
pub fn generate_train(spec: &DatasetSpec, seed: u64) -> LabeledDataset {
    let schema = schema_of(spec);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let params = ConceptParams::new(spec, &mut rng);
    let mut ds = Dataset::new(schema);
    let mut labels = Vec::with_capacity(spec.train_size);
    let mut row = vec![0u16; spec.attrs.len()];
    for _ in 0..spec.train_size {
        let label = params.sample_row(spec, &mut rng, &mut row);
        ds.push_encoded(&row).expect("generated members in range");
        labels.push(label);
    }
    LabeledDataset::new(ds, labels, class_names(spec)).expect("aligned labels")
}

/// Builds the test set the paper's way: start from rows distributed like
/// the training data and double until `scale · test_rows` is reached
/// (`scale` ∈ (0, 1] lets tests/benches shrink the experiment without
/// changing selectivities).
pub fn generate_test(spec: &DatasetSpec, seed: u64, scale: f64) -> Dataset {
    let schema = schema_of(spec);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1357_9bdf_2468_ace0);
    let params = ConceptParams::new(spec, &mut StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15));
    let mut ds = Dataset::new(schema);
    let target = ((spec.test_rows() as f64 * scale) as usize).max(1);
    // Seed pool: the training-set size worth of fresh rows (the paper
    // doubles "all available data").
    let mut row = vec![0u16; spec.attrs.len()];
    for _ in 0..spec.train_size.min(target) {
        params.sample_row(spec, &mut rng, &mut row);
        ds.push_encoded(&row).expect("generated members in range");
    }
    ds.double_until(target);
    ds
}

/// Class-conditional generation parameters.
struct ConceptParams {
    /// Cumulative prior distribution over classes.
    prior_cdf: Vec<f64>,
    /// `cond[d][k]` = per-class sampling parameters for attribute `d`.
    cond: Vec<Vec<CondDist>>,
}

enum CondDist {
    /// Categorical weights as a CDF over members.
    Weights(Vec<f64>),
    /// Gaussian over the bin axis.
    Gauss {
        mean: f64,
        sd: f64,
        bins: u16,
    },
}

impl ConceptParams {
    fn new(spec: &DatasetSpec, rng: &mut StdRng) -> ConceptParams {
        let (skew, separation, informative_frac) = match spec.concept {
            ConceptKind::Synthetic { skew, separation, informative } => {
                (skew, separation, informative)
            }
            // Exact concepts sample attributes uniformly.
            _ => (0.0, 0.0, 0.0),
        };
        // Zipf-like priors: p_k ∝ 1 / (k+1)^skew.
        let weights: Vec<f64> =
            (0..spec.n_classes).map(|k| 1.0 / ((k + 1) as f64).powf(skew)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let prior_cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();

        // Real UCI datasets concentrate class evidence in a few decisive
        // attributes — a property of the *dataset*, shared by all classes
        // (e.g. TSH decides hypothyroid for every class; two radiator
        // readings decide shuttle). Mirror that: ~30% of attributes (at
        // least two) are informative; on those, every class gets a
        // sharply concentrated conditional around its own mode, while the
        // remaining attributes are near-uninformative for everyone. This
        // shared structure is also what makes classes expressible as
        // axis-aligned regions, the shape upper envelopes exploit.
        let n_attrs = spec.attrs.len();
        let mut informative = vec![false; n_attrs];
        if matches!(spec.concept, ConceptKind::Synthetic { .. }) {
            let target = (n_attrs as f64 * informative_frac).ceil() as usize;
            let mut marked = 0;
            while marked < target.clamp(2, n_attrs) {
                let d = rng.random_range(0..n_attrs);
                if !informative[d] {
                    informative[d] = true;
                    marked += 1;
                }
            }
        }
        let cond = spec
            .attrs
            .iter()
            .enumerate()
            .map(|(d, a)| {
                (0..spec.n_classes)
                    .map(|_| {
                        let decisive = informative[d];
                        match a {
                            AttrSpec::Cat { card } => {
                                let sharp = if decisive { separation } else { 0.3 };
                                let mut w: Vec<f64> = (0..*card)
                                    .map(|_| (sharp * rng.random::<f64>()).exp())
                                    .collect();
                                let t: f64 = w.iter().sum();
                                let mut acc = 0.0;
                                for x in &mut w {
                                    acc += *x / t;
                                    *x = acc;
                                }
                                CondDist::Weights(w)
                            }
                            AttrSpec::Bin { bins } => CondDist::Gauss {
                                mean: rng.random::<f64>() * (*bins as f64 - 1.0),
                                sd: if decisive {
                                    (*bins as f64) / (1.5 + separation)
                                } else {
                                    *bins as f64
                                },
                                bins: *bins,
                            },
                        }
                    })
                    .collect()
            })
            .collect();
        ConceptParams { prior_cdf, cond }
    }

    /// Samples one row into `row`, returning its label.
    fn sample_row(&self, spec: &DatasetSpec, rng: &mut StdRng, row: &mut [u16]) -> ClassId {
        match spec.concept {
            ConceptKind::Parity => {
                for (d, m) in row.iter_mut().enumerate() {
                    let _ = d;
                    *m = u16::from(rng.random::<bool>());
                }
                let parity: u16 = row.iter().step_by(2).sum::<u16>() % 2;
                ClassId(parity)
            }
            ConceptKind::BalanceScale => {
                for m in row.iter_mut() {
                    *m = rng.random_range(0..5u16);
                }
                // Torque comparison on 1-based weights/distances:
                // attrs = (left_weight, left_dist, right_weight, right_dist).
                let l = (row[0] as i32 + 1) * (row[1] as i32 + 1);
                let r = (row[2] as i32 + 1) * (row[3] as i32 + 1);
                ClassId(match l.cmp(&r) {
                    std::cmp::Ordering::Greater => 0, // L
                    std::cmp::Ordering::Equal => 1,   // B
                    std::cmp::Ordering::Less => 2,    // R
                })
            }
            ConceptKind::Synthetic { .. } => {
                let u: f64 = rng.random();
                let k = self.prior_cdf.partition_point(|&c| c < u).min(spec.n_classes - 1);
                for (d, m) in row.iter_mut().enumerate() {
                    *m = match &self.cond[d][k] {
                        CondDist::Weights(cdf) => {
                            let u: f64 = rng.random();
                            cdf.partition_point(|&c| c < u).min(cdf.len() - 1) as u16
                        }
                        CondDist::Gauss { mean, sd, bins } => {
                            // Box-Muller normal sample.
                            let u1: f64 = rng.random::<f64>().max(1e-12);
                            let u2: f64 = rng.random();
                            let z = (-2.0 * u1.ln()).sqrt()
                                * (2.0 * std::f64::consts::PI * u2).cos();
                            let x = mean + sd * z;
                            x.round().clamp(0.0, *bins as f64 - 1.0) as u16
                        }
                    };
                }
                ClassId(k as u16)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2;

    #[test]
    fn train_sets_match_table2_sizes() {
        for spec in table2() {
            let train = generate_train(&spec, 7);
            assert_eq!(train.len(), spec.train_size, "{}", spec.name);
            assert_eq!(train.n_classes(), spec.n_classes);
            assert_eq!(train.data.schema().len(), spec.attrs.len());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = &table2()[3]; // Diabetes
        let a = generate_train(spec, 42);
        let b = generate_train(spec, 42);
        assert_eq!(a, b);
        let c = generate_train(spec, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn test_sets_reach_scaled_targets_by_doubling() {
        let spec = &table2()[6]; // Parity5+5: 1.04M at full scale
        let test = generate_test(spec, 7, 0.01);
        assert!(test.len() >= 10_400, "got {}", test.len());
        // Doubling from a 100-row pool: size is 100 * 2^n.
        let n = test.len();
        assert_eq!(n % 100, 0);
        assert!((n / 100).is_power_of_two());
    }

    #[test]
    fn skewed_priors_produce_low_selectivity_classes() {
        let spec = table2().into_iter().find(|s| s.name == "Kdd-cup-99").unwrap();
        let train = generate_train(&spec, 7);
        let counts = train.class_counts();
        let max = *counts.iter().max().unwrap() as f64;
        let min_nonzero =
            counts.iter().copied().filter(|&c| c > 0).min().unwrap_or(0) as f64;
        assert!(
            max / train.len() as f64 > 0.2,
            "dominant class should hold a large share: {counts:?}"
        );
        assert!(min_nonzero / train.len() as f64 <= 0.01, "tail classes are rare: {counts:?}");
    }

    #[test]
    fn parity_labels_are_exact() {
        let spec = table2().into_iter().find(|s| s.name == "Parity5+5").unwrap();
        let train = generate_train(&spec, 9);
        for (row, label) in train.iter() {
            let parity: u16 = row.iter().step_by(2).sum::<u16>() % 2;
            assert_eq!(label, ClassId(parity));
        }
    }

    #[test]
    fn balance_scale_labels_are_exact() {
        let spec = table2().into_iter().find(|s| s.name == "Balance-Scale").unwrap();
        let train = generate_train(&spec, 9);
        let mut seen = [false; 3];
        for (row, label) in train.iter() {
            let l = (row[0] as i32 + 1) * (row[1] as i32 + 1);
            let r = (row[2] as i32 + 1) * (row[3] as i32 + 1);
            let want = match l.cmp(&r) {
                std::cmp::Ordering::Greater => 0u16,
                std::cmp::Ordering::Equal => 1,
                std::cmp::Ordering::Less => 2,
            };
            assert_eq!(label, ClassId(want));
            seen[want as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all three classes appear");
    }

    #[test]
    fn synthetic_classes_are_learnable() {
        // A naive Bayes trained on the generated data should beat the
        // majority-class baseline comfortably on separable specs.
        let spec = table2().into_iter().find(|s| s.name == "Letter").unwrap();
        let train = generate_train(&spec, 11);
        let nb = mpq_models::NaiveBayes::train(&train).unwrap();
        let acc = mpq_models::accuracy(&nb, &train);
        let majority = *train.class_counts().iter().max().unwrap() as f64 / train.len() as f64;
        assert!(
            acc > (majority + 0.2).min(0.6),
            "accuracy {acc} vs majority {majority} — not learnable enough"
        );
    }

    #[test]
    fn doubling_preserves_selectivities() {
        let spec = table2().into_iter().find(|s| s.name == "Diabetes").unwrap();
        let test = generate_test(&spec, 7, 0.02);
        // Column 0 member frequencies must equal those of the first
        // training-sized prefix (doubling preserves ratios exactly).
        let n = test.len();
        let pool = spec.train_size;
        let mut pool_counts = [0usize; 8];
        let mut all_counts = [0usize; 8];
        for (i, row) in test.rows().enumerate() {
            if i < pool {
                pool_counts[row[0] as usize] += 1;
            }
            all_counts[row[0] as usize] += 1;
        }
        let factor = n / pool;
        for m in 0..8 {
            assert_eq!(all_counts[m], pool_counts[m] * factor, "member {m}");
        }
    }
}
