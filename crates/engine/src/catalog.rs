//! The catalog: tables, secondary indexes, and mining models as
//! first-class objects (§2.2's `CREATE MINING MODEL` world).
//!
//! Models are registered *trained*; registration precomputes the "atomic"
//! upper envelopes for every class (§4.2's training-time step) so that
//! query optimization only performs cheap lookups. Each model carries a
//! version; cached plans remember the versions they read and are
//! invalidated when a model is retrained (§4.2's correctness note).

use crate::dedup::StatementDedup;
use crate::expr::{ModelId, ModelOracle};
use crate::fault::FaultInjector;
use crate::index::SecondaryIndex;
use crate::sql::ParsedQuery;
use crate::stats::{default_stats_workers, TableStats};
use crate::subscribe::Subscription;
use crate::table::Table;
use crate::EngineError;
use mpq_core::{CoreError, DeriveOptions, Envelope, EnvelopeProvider, ProxyScore};
use mpq_types::{AttrId, ClassId, Member, Row};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A registered mining model with its precomputed envelopes.
pub struct ModelEntry {
    /// Model name (catalog key).
    pub name: String,
    /// The trained model.
    pub model: Arc<dyn EnvelopeProvider + Send + Sync>,
    /// Per-class upper envelopes, precomputed at registration.
    pub envelopes: Vec<Envelope>,
    /// Bumped on retraining; plans record the versions they depended on.
    pub version: u64,
    /// Derivation options the envelopes were computed with.
    pub derive_opts: DeriveOptions,
    /// `Some(reason)` when envelope derivation failed and the trivial
    /// `TRUE` envelopes were installed instead. Degraded models still
    /// answer queries correctly (the mining predicate remains as the
    /// residual filter) but without access-path benefits. Cleared by a
    /// successful retrain.
    pub degraded: Option<String>,
    /// Serialized form for durability. `None` marks a *transient* model
    /// (registered as a bare trait object with no serializable
    /// counterpart): it is skipped by checkpoints and does not survive
    /// recovery. Models created through SQL DDL or
    /// [`crate::Engine::register_durable_model`] always carry one.
    pub stored: Option<crate::persist::StoredModel>,
    /// The tabulated proxy score for cascade evaluation, precomputed at
    /// registration for additive-score families (NB/k-means/GMM);
    /// `None` for families without one (their envelopes are exact
    /// anyway). Executors re-verify this table against a fresh rebuild
    /// before trusting it — see [`ModelEntry::cascade_note`].
    pub proxy: Option<Arc<ProxyScore>>,
    /// `Some(reason)` when the stored proxy failed its pre-execution
    /// verification (e.g. under the injected cascade-band fault) and the
    /// executor fell back to the sound scorer path for this model.
    /// Cleared by the next successful cascade build. Interior-mutable
    /// because executors only hold a shared catalog borrow.
    pub cascade_note: Mutex<Option<String>>,
}

/// A registered table with statistics and any secondary indexes.
pub struct TableEntry {
    /// The table data.
    pub table: Table,
    /// Per-column statistics.
    pub stats: TableStats,
    /// Secondary indexes, keyed by column.
    pub indexes: Vec<SecondaryIndex>,
}

impl TableEntry {
    /// The single-column index on `attr`, if one exists.
    pub fn index_on(&self, attr: AttrId) -> Option<&SecondaryIndex> {
        self.indexes.iter().find(|ix| ix.is_over(&[attr]))
    }

    /// Position of the index over exactly the given (sorted) column set.
    pub fn index_over(&self, cols: &[AttrId]) -> Option<usize> {
        self.indexes.iter().position(|ix| ix.is_over(cols))
    }
}

/// The engine catalog.
#[derive(Default)]
pub struct Catalog {
    tables: Vec<TableEntry>,
    models: Vec<ModelEntry>,
    faults: Arc<FaultInjector>,
    /// Applied statement ids and their outcomes, for exactly-once
    /// retries. Mutated only under the catalog write lock, so it stays
    /// crash-consistent with the state it guards.
    dedup: StatementDedup,
    /// Replication epoch: bumped durably on every standby promotion.
    /// A replication stream stamped with an older epoch is rejected,
    /// which fences a deposed (zombie) primary.
    epoch: u64,
    /// Standing subscriptions, keyed by stable id. Mutated only under
    /// the catalog write lock (the same WAL-backed path as tables and
    /// models), so registrations survive crash recovery.
    subs: BTreeMap<u64, Subscription>,
    /// Next id to hand out (never reused, even after UNSUBSCRIBE).
    next_sub_id: u64,
    /// Bumped on every subscribe/unsubscribe; the engine's cached
    /// inverted index is invalidated when this moves.
    subs_generation: u64,
    /// `Some(note)` while the subscription matcher is running in
    /// degraded per-subscription full-evaluation mode (index-corruption
    /// fault armed). Interior-mutable: the matcher only holds a shared
    /// borrow.
    sub_index_note: Mutex<Option<String>>,
}

/// Derives per-class envelopes, absorbing every failure mode this layer
/// can see: injected faults, derivation timeouts
/// ([`mpq_core::CoreError::DeriveTimeout`]), and panics inside model
/// code. On `Err` the caller degrades to trivial envelopes.
fn derive_envelopes(
    model: &Arc<dyn EnvelopeProvider + Send + Sync>,
    opts: &DeriveOptions,
    faults: &FaultInjector,
) -> Result<Vec<Envelope>, String> {
    if faults.derive_timeout_armed() {
        let budget = opts.time_budget.unwrap_or(Duration::ZERO);
        return Err(CoreError::DeriveTimeout { budget }.to_string());
    }
    if faults.derive_grid_too_large_armed() {
        return Err("attribute grid too large for top-down derivation (injected)".to_string());
    }
    let model = Arc::clone(model);
    let opts = *opts;
    match catch_unwind(AssertUnwindSafe(move || model.try_envelopes(&opts))) {
        Ok(Ok(envs)) => Ok(envs),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(format!(
            "panic during envelope derivation: {}",
            crate::error::panic_message(&*payload)
        )),
    }
}

/// One trivial (`TRUE`) envelope per class: sound because the mining
/// predicate itself stays in the residual, so queries fall back to
/// scan-plus-filter semantics.
fn trivial_envelopes(model: &Arc<dyn EnvelopeProvider + Send + Sync>) -> Vec<Envelope> {
    let schema = model.schema();
    (0..model.n_classes()).map(|k| Envelope::trivial(ClassId(k as u16), schema)).collect()
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Creates an empty catalog sharing an existing fault injector —
    /// recovery uses this so faults armed before [`crate::Engine::open`]
    /// apply to the replayed state too.
    pub fn with_faults(faults: Arc<FaultInjector>) -> Catalog {
        Catalog { faults, ..Catalog::default() }
    }

    /// The shared fault injector (every fault off unless a test armed it).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// A cloneable handle to the fault injector, for arming faults while
    /// the catalog is borrowed elsewhere.
    pub fn fault_injector(&self) -> Arc<FaultInjector> {
        Arc::clone(&self.faults)
    }

    /// The statement-outcome dedup store (exactly-once retries).
    pub fn dedup(&self) -> &StatementDedup {
        &self.dedup
    }

    /// Mutable dedup store — callers hold the catalog write lock, which
    /// keeps dedup state and applied state in lockstep.
    pub fn dedup_mut(&mut self) -> &mut StatementDedup {
        &mut self.dedup
    }

    /// Replaces the dedup store wholesale (snapshot recovery).
    pub(crate) fn set_dedup(&mut self, dedup: StatementDedup) {
        self.dedup = dedup;
    }

    /// Current replication epoch (0 until a promotion ever happened).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sets the replication epoch (recovery replay and promotion).
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Registers a standing subscription under a caller-chosen id (the
    /// id is allocated *before* WAL logging so replay reproduces it
    /// exactly). The query must already be validated against this
    /// catalog.
    pub fn add_subscription(
        &mut self,
        id: u64,
        sql: String,
        query: ParsedQuery,
    ) -> Result<(), EngineError> {
        if self.subs.contains_key(&id) {
            return Err(EngineError::Duplicate(format!("subscription {id}")));
        }
        self.subs.insert(
            id,
            Subscription { id, table: query.table, sql, predicate: query.predicate },
        );
        self.next_sub_id = self.next_sub_id.max(id + 1);
        self.subs_generation += 1;
        Ok(())
    }

    /// Removes a standing subscription.
    pub fn remove_subscription(&mut self, id: u64) -> Result<(), EngineError> {
        if self.subs.remove(&id).is_none() {
            return Err(EngineError::UnknownSubscription(id));
        }
        self.subs_generation += 1;
        Ok(())
    }

    /// The id `SUBSCRIBE` will assign next (ids start at 1 and are
    /// never reused).
    pub fn next_subscription_id(&self) -> u64 {
        self.next_sub_id.max(1)
    }

    /// Raises the next-id floor (snapshot recovery): ids stay unique
    /// even when every subscription present at snapshot time has since
    /// been removed.
    pub(crate) fn clamp_next_subscription_id(&mut self, floor: u64) {
        self.next_sub_id = self.next_sub_id.max(floor);
    }

    /// Every registered subscription, in ascending id order.
    pub fn subscriptions(&self) -> impl Iterator<Item = &Subscription> {
        self.subs.values()
    }

    /// Looks up one subscription by id.
    pub fn subscription(&self, id: u64) -> Option<&Subscription> {
        self.subs.get(&id)
    }

    /// Number of registered subscriptions.
    pub fn n_subscriptions(&self) -> usize {
        self.subs.len()
    }

    /// Subscription-set generation (bumped on every change), for index
    /// invalidation.
    pub(crate) fn subs_generation(&self) -> u64 {
        self.subs_generation
    }

    /// The degraded-matcher health note, if the last insert matched in
    /// per-subscription full-evaluation mode.
    pub fn sub_index_note(&self) -> Option<String> {
        self.sub_index_note.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Records (or clears) the degraded-matcher health note.
    pub(crate) fn set_sub_index_note(&self, note: Option<String>) {
        *self.sub_index_note.lock().unwrap_or_else(|e| e.into_inner()) = note;
    }

    /// Registers a table, building statistics.
    pub fn add_table(&mut self, table: Table) -> Result<usize, EngineError> {
        if self.table_by_name(table.name()).is_some() {
            return Err(EngineError::Duplicate(table.name().to_string()));
        }
        let stats = TableStats::build_parallel(&table, default_stats_workers());
        self.tables.push(TableEntry { table, stats, indexes: Vec::new() });
        Ok(self.tables.len() - 1)
    }

    /// Registers a trained model under `name`, precomputing the per-class
    /// envelopes (§4.2 training-time step).
    ///
    /// Derivation failures (timeout over
    /// [`DeriveOptions::time_budget`], panics, injected faults) do NOT
    /// fail the registration: the model is installed with trivial
    /// `TRUE` envelopes and marked [`ModelEntry::degraded`]. Queries
    /// against it remain correct — only unoptimized.
    pub fn add_model(
        &mut self,
        name: impl Into<String>,
        model: Arc<dyn EnvelopeProvider + Send + Sync>,
        opts: DeriveOptions,
    ) -> Result<ModelId, EngineError> {
        self.add_model_stored(name, model, opts, None)
    }

    /// Like [`Catalog::add_model`], also attaching the model's durable
    /// serialized form (see [`ModelEntry::stored`]).
    pub fn add_model_stored(
        &mut self,
        name: impl Into<String>,
        model: Arc<dyn EnvelopeProvider + Send + Sync>,
        opts: DeriveOptions,
        stored: Option<crate::persist::StoredModel>,
    ) -> Result<ModelId, EngineError> {
        let name = name.into();
        if self.model_by_name(&name).is_some() {
            return Err(EngineError::Duplicate(name));
        }
        let (envelopes, degraded) = match derive_envelopes(&model, &opts, &self.faults) {
            Ok(envs) => (envs, None),
            Err(reason) => (trivial_envelopes(&model), Some(reason)),
        };
        let proxy = model.proxy().map(Arc::new);
        self.models.push(ModelEntry {
            name,
            model,
            envelopes,
            version: 1,
            derive_opts: opts,
            degraded,
            stored,
            proxy,
            cascade_note: Mutex::new(None),
        });
        Ok(self.models.len() - 1)
    }

    /// Replaces a model's contents (retraining): envelopes are recomputed
    /// and the version bumped, invalidating dependent cached plans.
    /// Reuses the options supplied at registration (or the last
    /// [`Catalog::retrain_model_with`]).
    pub fn retrain_model(
        &mut self,
        id: ModelId,
        model: Arc<dyn EnvelopeProvider + Send + Sync>,
    ) -> Result<(), EngineError> {
        let opts = self
            .models
            .get(id)
            .ok_or_else(|| EngineError::UnknownModel(format!("#{id}")))?
            .derive_opts;
        self.retrain_model_with(id, model, opts)
    }

    /// Retrains with fresh derivation options — the retry path for a
    /// degraded model: supply a larger (or no) time budget and a
    /// successful derivation clears [`ModelEntry::degraded`].
    pub fn retrain_model_with(
        &mut self,
        id: ModelId,
        model: Arc<dyn EnvelopeProvider + Send + Sync>,
        opts: DeriveOptions,
    ) -> Result<(), EngineError> {
        // A plain retrain replaces the model *content*; whatever durable
        // form the entry had no longer describes it.
        self.retrain_model_stored(id, model, opts, None)
    }

    /// Like [`Catalog::retrain_model_with`], also replacing the entry's
    /// durable serialized form.
    pub fn retrain_model_stored(
        &mut self,
        id: ModelId,
        model: Arc<dyn EnvelopeProvider + Send + Sync>,
        opts: DeriveOptions,
        stored: Option<crate::persist::StoredModel>,
    ) -> Result<(), EngineError> {
        if id >= self.models.len() {
            return Err(EngineError::UnknownModel(format!("#{id}")));
        }
        let (envelopes, degraded) = match derive_envelopes(&model, &opts, &self.faults) {
            Ok(envs) => (envs, None),
            Err(reason) => (trivial_envelopes(&model), Some(reason)),
        };
        let entry = &mut self.models[id];
        entry.envelopes = envelopes;
        entry.proxy = model.proxy().map(Arc::new);
        entry.model = model;
        entry.version += 1;
        entry.derive_opts = opts;
        entry.degraded = degraded;
        entry.stored = stored;
        entry.cascade_note = Mutex::new(None);
        Ok(())
    }

    /// Appends validated rows to a table, rebuilding its statistics and
    /// secondary indexes. All-or-nothing: every row is validated against
    /// the schema before the first one is applied.
    pub fn insert_rows(&mut self, table_id: usize, rows: &[Vec<Member>]) -> Result<(), EngineError> {
        if table_id >= self.tables.len() {
            return Err(EngineError::UnknownTable(format!("#{table_id}")));
        }
        let entry = &mut self.tables[table_id];
        let schema = entry.table.schema();
        for row in rows {
            if row.len() != schema.len() {
                return Err(EngineError::SchemaMismatch {
                    detail: format!(
                        "row has {} values, table {} has {} columns",
                        row.len(),
                        entry.table.name(),
                        schema.len()
                    ),
                });
            }
            for (d, &m) in row.iter().enumerate() {
                if m >= schema.attrs()[d].domain.cardinality() {
                    return Err(EngineError::BadValue(format!(
                        "member {m} out of range for column {}",
                        schema.attrs()[d].name
                    )));
                }
            }
        }
        for row in rows {
            // Infallible after the validation pass above.
            entry.table.push_row(row)?;
        }
        entry.stats = TableStats::build_parallel(&entry.table, default_stats_workers());
        let cols: Vec<Vec<AttrId>> =
            entry.indexes.iter().map(|ix| ix.columns().to_vec()).collect();
        entry.indexes = cols
            .iter()
            .map(|c| SecondaryIndex::build(&entry.table, c))
            .collect();
        Ok(())
    }

    /// Looks up a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.table.name().eq_ignore_ascii_case(name))
    }

    /// Looks up a model by name.
    pub fn model_by_name(&self, name: &str) -> Option<ModelId> {
        self.models.iter().position(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// The table entry at `id`.
    pub fn table(&self, id: usize) -> &TableEntry {
        &self.tables[id]
    }

    /// Mutable table entry (index creation).
    pub fn table_mut(&mut self, id: usize) -> &mut TableEntry {
        &mut self.tables[id]
    }

    /// The model entry at `id`.
    pub fn model(&self, id: ModelId) -> &ModelEntry {
        &self.models[id]
    }

    /// Number of registered models.
    pub fn n_models(&self) -> usize {
        self.models.len()
    }

    /// Number of registered tables.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Resolves a class label of a model.
    pub fn resolve_class(&self, model: ModelId, label: &str) -> Result<ClassId, EngineError> {
        let entry = self.model(model);
        entry.model.class_by_name(label).ok_or_else(|| EngineError::UnknownClass {
            model: entry.name.clone(),
            label: label.to_string(),
        })
    }

    /// Creates a secondary (possibly composite) index over `columns` of
    /// `table_id` if an identical one does not already exist. An empty
    /// column set is a no-op (an index over nothing is meaningless, and
    /// `SecondaryIndex::build` asserts non-emptiness).
    pub fn create_index(&mut self, table_id: usize, columns: &[AttrId]) {
        let mut cols = columns.to_vec();
        cols.sort_unstable();
        cols.dedup();
        if cols.is_empty() {
            return;
        }
        let entry = &mut self.tables[table_id];
        if entry.index_over(&cols).is_none() {
            let ix = SecondaryIndex::build(&entry.table, &cols);
            entry.indexes.push(ix);
        }
    }

    /// Drops the index over exactly `columns`, if present.
    pub fn drop_index(&mut self, table_id: usize, columns: &[AttrId]) {
        let mut cols = columns.to_vec();
        cols.sort_unstable();
        cols.dedup();
        let entry = &mut self.tables[table_id];
        if let Some(i) = entry.index_over(&cols) {
            entry.indexes.remove(i);
        }
    }
}

impl ModelOracle for Catalog {
    fn predict(&self, model: ModelId, row: &Row) -> ClassId {
        let entry = &self.models[model];
        // Injected scorer faults surface as panics because `predict`
        // returns a bare ClassId; the engine's catch_unwind entry points
        // convert them to `EngineError::Internal`.
        if self.faults.scorer_panic_armed() {
            panic!("injected fault: scorer panicked on model '{}'", entry.name);
        }
        if self.faults.scorer_nan_armed() {
            panic!("injected fault: scorer produced NaN for model '{}'", entry.name);
        }
        entry.model.predict(row)
    }

    fn class_for_member(&self, model: ModelId, column: AttrId, m: Member) -> Option<ClassId> {
        // Match by label: the column member's name against the model's
        // class names. Only meaningful for categorical columns.
        let entry = &self.models[model];
        let schema = entry.model.schema();
        let label = schema.attr(column).domain.member_label(m);
        entry.model.class_by_name(&label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_core::paper_table1_model;
    use mpq_types::{Dataset, Value};

    fn catalog_with_model() -> (Catalog, ModelId) {
        let mut cat = Catalog::new();
        let nb = paper_table1_model();
        use mpq_models::Classifier as _;
        let schema = nb.schema().clone();
        let mut ds = Dataset::new(schema);
        ds.push_raw(&[Value::from("m0"), Value::from("m1")]).unwrap();
        cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        let id = cat.add_model("risk", Arc::new(nb), DeriveOptions::default()).unwrap();
        (cat, id)
    }

    #[test]
    fn registration_precomputes_envelopes() {
        let (cat, id) = catalog_with_model();
        let entry = cat.model(id);
        assert_eq!(entry.envelopes.len(), 3, "one envelope per class");
        assert_eq!(entry.version, 1);
        assert_eq!(cat.model_by_name("RISK"), Some(id), "case-insensitive lookup");
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut cat, _) = catalog_with_model();
        let nb = paper_table1_model();
        assert!(matches!(
            cat.add_model("risk", Arc::new(nb), DeriveOptions::default()),
            Err(EngineError::Duplicate(_))
        ));
        use mpq_models::Classifier as _;
        let ds = Dataset::new(paper_table1_model().schema().clone());
        assert!(matches!(
            cat.add_table(Table::from_dataset("T", &ds)),
            Err(EngineError::Duplicate(_))
        ));
    }

    #[test]
    fn retrain_bumps_version_and_recomputes() {
        let (mut cat, id) = catalog_with_model();
        let before = cat.model(id).envelopes.len();
        cat.retrain_model(id, Arc::new(paper_table1_model())).unwrap();
        assert_eq!(cat.model(id).version, 2);
        assert_eq!(cat.model(id).envelopes.len(), before);
        assert!(cat.retrain_model(99, Arc::new(paper_table1_model())).is_err());
    }

    #[test]
    fn derive_fault_degrades_instead_of_failing() {
        let mut cat = Catalog::new();
        cat.faults().set_derive_timeout(true);
        let id = cat
            .add_model("risk", Arc::new(paper_table1_model()), DeriveOptions::default())
            .expect("registration must survive derivation failure");
        let entry = cat.model(id);
        let schema = entry.model.schema().clone();
        assert!(entry.degraded.is_some(), "derivation failure recorded");
        assert_eq!(entry.envelopes.len(), 3);
        assert!(
            entry.envelopes.iter().all(|e| e.is_tautology(&schema) && !e.exact),
            "degraded envelopes are trivial TRUE"
        );
        // Retraining with the fault cleared recovers real envelopes.
        cat.faults().reset();
        cat.retrain_model(id, Arc::new(paper_table1_model())).unwrap();
        let entry = cat.model(id);
        assert!(entry.degraded.is_none());
        assert!(entry.envelopes.iter().any(|e| !e.is_tautology(&schema)));
        assert_eq!(entry.version, 2);
    }

    #[test]
    fn retrain_with_updates_options() {
        let (mut cat, id) = catalog_with_model();
        let opts = DeriveOptions {
            time_budget: Some(std::time::Duration::from_secs(60)),
            ..DeriveOptions::default()
        };
        cat.retrain_model_with(id, Arc::new(paper_table1_model()), opts).unwrap();
        assert_eq!(cat.model(id).derive_opts.time_budget, opts.time_budget);
        assert!(cat.model(id).degraded.is_none());
        assert!(cat
            .retrain_model_with(99, Arc::new(paper_table1_model()), opts)
            .is_err());
    }

    #[test]
    fn class_resolution() {
        let (cat, id) = catalog_with_model();
        assert_eq!(cat.resolve_class(id, "c2").unwrap(), ClassId(1));
        assert!(cat.resolve_class(id, "nope").is_err());
    }

    #[test]
    fn oracle_predicts_and_maps_members() {
        let (cat, id) = catalog_with_model();
        // Table 1: cell (m0, m1) belongs to c1.
        assert_eq!(cat.predict(id, &[0, 1]), ClassId(0));
        // d0's members are named m0..m3; none matches a class name.
        assert_eq!(cat.class_for_member(id, AttrId(0), 0), None);
    }

    #[test]
    fn index_creation_is_idempotent() {
        let (mut cat, _) = catalog_with_model();
        cat.create_index(0, &[AttrId(0)]);
        cat.create_index(0, &[AttrId(0)]);
        assert_eq!(cat.table(0).indexes.len(), 1);
        assert!(cat.table(0).index_on(AttrId(0)).is_some());
        assert!(cat.table(0).index_on(AttrId(1)).is_none());
        // Composite indexes are distinct objects from their singletons.
        cat.create_index(0, &[AttrId(1), AttrId(0)]);
        assert_eq!(cat.table(0).indexes.len(), 2);
        assert!(cat.table(0).index_over(&[AttrId(0), AttrId(1)]).is_some());
        cat.drop_index(0, &[AttrId(0), AttrId(1)]);
        assert_eq!(cat.table(0).indexes.len(), 1);
        cat.drop_index(0, &[AttrId(0)]);
        assert!(cat.table(0).indexes.is_empty());
    }
}
