//! Per-session execution settings.
//!
//! PR 3 made the engine shareable across threads, but `SET PARALLELISM`
//! (and the query guard) remained engine-global: one client tuning its
//! own knob re-tuned everyone's. A [`SessionState`] scopes both to one
//! client: each field is an *override* that, while unset, falls through
//! to the engine-wide default — so the engine-global values keep their
//! role as defaults, and a session never observes another session's
//! `SET` statements.
//!
//! The server crate (`mpq-server`) creates one `SessionState` per
//! connection; in-process embedders can do the same via
//! [`Engine::query_in`](crate::Engine::query_in) /
//! [`Engine::execute_sql_in`](crate::Engine::execute_sql_in). The
//! session-less entry points ([`Engine::query`](crate::Engine::query),
//! [`Engine::execute_sql`](crate::Engine::execute_sql)) behave like a
//! session with no overrides; `SET` through the session-less
//! `execute_sql` mutates the engine-wide default, preserving the old
//! semantics for embedders that never deal in sessions.

use crate::guard::QueryGuard;

/// Maximum degree of parallelism a session (or the engine) accepts —
/// mirrors [`crate::ExecOptions`]'s clamp.
pub(crate) const MAX_DOP: usize = 256;

/// Session-scoped execution overrides: degree of parallelism and query
/// guard. Unset fields fall through to the engine-wide defaults.
///
/// ```
/// use mpq_engine::{QueryGuard, SessionState};
///
/// let mut s = SessionState::new();
/// assert_eq!(s.parallelism(), None, "defaults to the engine-wide value");
/// s.set_parallelism(4);
/// assert_eq!(s.parallelism(), Some(4));
/// s.set_guard(QueryGuard::default().with_max_rows_examined(100));
/// assert_eq!(s.guard().unwrap().max_rows_examined, Some(100));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionState {
    parallelism: Option<usize>,
    guard: Option<QueryGuard>,
    adaptive: Option<bool>,
}

impl SessionState {
    /// A session with no overrides: queries run with the engine-wide
    /// parallelism and guard.
    pub fn new() -> SessionState {
        SessionState::default()
    }

    /// This session's parallelism override, if set.
    pub fn parallelism(&self) -> Option<usize> {
        self.parallelism
    }

    /// Overrides the degree of parallelism for this session only
    /// (clamped to `1..=256`, like the engine-wide knob).
    pub fn set_parallelism(&mut self, dop: usize) -> usize {
        let dop = dop.clamp(1, MAX_DOP);
        self.parallelism = Some(dop);
        dop
    }

    /// Removes the parallelism override; queries fall back to the
    /// engine-wide value.
    pub fn clear_parallelism(&mut self) {
        self.parallelism = None;
    }

    /// This session's guard override, if set.
    pub fn guard(&self) -> Option<QueryGuard> {
        self.guard
    }

    /// Overrides the query guard for this session only.
    pub fn set_guard(&mut self, guard: QueryGuard) {
        self.guard = Some(guard);
    }

    /// Removes the guard override; queries fall back to the engine-wide
    /// guard.
    pub fn clear_guard(&mut self) {
        self.guard = None;
    }

    /// This session's adaptive-evaluation override, if set.
    pub fn adaptive(&self) -> Option<bool> {
        self.adaptive
    }

    /// Overrides adaptive predicate evaluation for this session only
    /// (`SET ADAPTIVE {ON|OFF}` through a session).
    pub fn set_adaptive(&mut self, on: bool) -> bool {
        self.adaptive = Some(on);
        on
    }

    /// Removes the adaptive override; queries fall back to the
    /// engine-wide setting.
    pub fn clear_adaptive(&mut self) {
        self.adaptive = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrides_start_unset_and_clamp() {
        let mut s = SessionState::new();
        assert_eq!(s.parallelism(), None);
        assert_eq!(s.guard(), None);
        assert_eq!(s.set_parallelism(0), 1, "clamped up");
        assert_eq!(s.set_parallelism(100_000), MAX_DOP, "clamped down");
        s.clear_parallelism();
        assert_eq!(s.parallelism(), None);
        s.set_guard(QueryGuard::default().with_max_pages(7));
        assert_eq!(s.guard().unwrap().max_pages, Some(7));
        s.clear_guard();
        assert_eq!(s.guard(), None);
    }
}
