//! §4.1's join predicate between a predicted column and a data column:
//! `PREDICT(M) = actual_column` — "find all customers for whom the
//! predicted age category is the same as the actual one", the
//! cross-validation-style query. Also demonstrates the transitivity
//! rewrite: adding `actual IN (...)` restricts the prediction classes.
//!
//! ```sh
//! cargo run --example cross_validation
//! ```

use mining_predicates::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

fn main() {
    // Customers with profile columns and an *actual* age_class column
    // whose labels the model also predicts.
    let schema = Schema::new(vec![
        Attribute::new("purchases", AttrDomain::binned(vec![10.0, 50.0, 200.0]).unwrap()),
        Attribute::new("sessions", AttrDomain::binned(vec![5.0, 20.0]).unwrap()),
        Attribute::new("age_class", AttrDomain::categorical(["young", "middle-aged", "senior"])),
    ])
    .expect("valid schema");

    let mut rng = StdRng::seed_from_u64(9);
    let mut data = Dataset::new(schema.clone());
    let mut labels = Vec::new();
    for _ in 0..40_000 {
        // Age drives behavior: young = many sessions few purchases, etc.
        let age = match rng.random_range(0..10u16) {
            0..=4 => 0u16,
            5..=8 => 1,
            _ => 2,
        };
        let purchases = match age {
            0 => rng.random_range(0..2u16),
            1 => rng.random_range(1..4u16),
            _ => rng.random_range(2..4u16),
        };
        let sessions = match age {
            0 => 2u16,
            1 => rng.random_range(1..3u16),
            _ => rng.random_range(0..2u16),
        };
        data.push_encoded(&[purchases, sessions, age]).expect("members in range");
        labels.push(ClassId(age));
    }
    let train = LabeledDataset::new(
        data.clone(),
        labels,
        vec!["young".into(), "middle-aged".into(), "senior".into()],
    )
    .expect("aligned");

    let nb = NaiveBayes::train(&train).expect("nonempty");
    println!("age model accuracy: {:.1}%", 100.0 * accuracy(&nb, &train));

    let mut catalog = Catalog::new();
    catalog.add_table(Table::from_dataset("customers", &data)).expect("fresh");
    catalog.add_model("age_model", Arc::new(nb), DeriveOptions::default()).expect("fresh");
    let engine = Engine::new(catalog);

    // 1. PREDICT = column. The rewriter expands to
    //    OR_c (envelope_c AND age_class = c).
    let sql = "SELECT COUNT(*) FROM customers WHERE PREDICT(age_model) = age_class";
    let out = engine.query(sql).expect("valid");
    println!("\n{sql}");
    println!(
        "prediction matches the stored class on {} of {} rows ({:.1}%)",
        out.metrics.output_rows,
        data.len(),
        100.0 * out.metrics.output_rows as f64 / data.len() as f64
    );

    // 2. Transitivity (§4.1's last example): the data predicate on
    //    age_class implies PREDICT(age_model) IN ('middle-aged','senior'),
    //    whose envelope is added for access-path selection.
    let sql = "SELECT * FROM customers \
               WHERE PREDICT(age_model) = age_class \
               AND age_class IN ('middle-aged', 'senior')";
    let explain = engine.query(&format!("EXPLAIN {sql}")).expect("valid");
    println!("\n{sql}\nplan:\n{}", explain.plan);
    let out = engine.query(sql).expect("valid");
    println!("matching rows: {}", out.metrics.output_rows);

    // Sanity: identical to evaluating the model on every row.
    engine.set_use_envelopes(false);
    let baseline = engine.query(sql).expect("valid");
    assert_eq!(out.rows, baseline.rows, "rewrite must preserve semantics");
    println!(
        "verified against black-box evaluation ({} vs {} model invocations).",
        out.metrics.model_invocations, baseline.metrics.model_invocations
    );
}
