//! Property: for every model type, a query against a *degraded* model
//! (trivial `TRUE` envelopes installed after a forced derivation
//! failure) returns exactly the same row set as the same query with
//! envelope rewriting disabled (`set_use_envelopes(false)`) — the
//! unoptimized full-scan + residual baseline.

use mpq_engine::{Catalog, Engine, StatementOutcome, Table};
use mpq_types::{AttrDomain, Attribute, Dataset, Schema};
use proptest::prelude::*;

// Classification trains on the mixed-schema table `t`; clustering needs
// an all-ordered schema, so it trains on the numeric table `pts`.
const ALGORITHMS: [(&str, &str, &str); 5] = [
    ("dt", "t", "PREDICT outcome USING decision_tree"),
    ("nb", "t", "PREDICT outcome USING naive_bayes"),
    ("rl", "t", "PREDICT outcome USING rules"),
    ("km", "pts", "WITH 2 CLUSTERS USING kmeans"),
    ("gm", "pts", "WITH 2 CLUSTERS USING gmm"),
];

/// Builds an engine over a table with the given extra rows appended to a
/// deterministic base covering every (x, f, outcome) combination — so
/// every class always has training examples.
fn engine_with_rows(extra: &[(u16, u16, u16)]) -> Engine {
    let schema = Schema::new(vec![
        Attribute::new("x", AttrDomain::binned(vec![1.0, 2.0]).unwrap()),
        Attribute::new("f", AttrDomain::categorical(["a", "b"])),
        Attribute::new("outcome", AttrDomain::categorical(["lo", "hi"])),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    for x in 0..3u16 {
        for f in 0..2u16 {
            for y in 0..2u16 {
                ds.push_encoded(&[x, f, y]).unwrap();
            }
        }
    }
    for &(x, f, y) in extra {
        ds.push_encoded(&[x, f, y]).unwrap();
    }
    let mut cat = Catalog::new();
    cat.add_table(Table::from_dataset("t", &ds)).unwrap();

    // All-ordered companion table for the clustering algorithms,
    // projecting the same generated rows onto two binned columns.
    let pts_schema = Schema::new(vec![
        Attribute::new("px", AttrDomain::binned(vec![1.0, 2.0]).unwrap()),
        Attribute::new("py", AttrDomain::binned(vec![1.0]).unwrap()),
    ])
    .unwrap();
    let mut pts = Dataset::new(pts_schema);
    for x in 0..3u16 {
        for f in 0..2u16 {
            pts.push_encoded(&[x, f]).unwrap();
        }
    }
    for &(x, f, _) in extra {
        pts.push_encoded(&[x, f]).unwrap();
    }
    cat.add_table(Table::from_dataset("pts", &pts)).unwrap();
    Engine::new(cat)
}

fn class_labels(alg: &str) -> &'static [&'static str] {
    if alg.contains("CLUSTERS") {
        &["cluster_0", "cluster_1"]
    } else {
        &["lo", "hi"]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn degraded_model_rows_equal_unoptimized_baseline(
        extra in proptest::collection::vec((0u16..3, 0u16..2, 0u16..2), 20..60),
    ) {
        let e = engine_with_rows(&extra);
        // Force every derivation to fail: all models land degraded.
        e.fault_injector().set_derive_timeout(true);
        for (name, table, clause) in ALGORITHMS {
            let ddl = format!("CREATE MINING MODEL {name} ON {table} {clause}");
            let out = e.execute_sql(&ddl).expect("DDL must survive derivation failure");
            let StatementOutcome::ModelCreated { degraded, .. } = out else {
                panic!("expected ModelCreated");
            };
            prop_assert!(degraded.is_some(), "{name} must be degraded");
        }
        e.fault_injector().reset();
        prop_assert!(!e.health().all_healthy());

        for (name, table, clause) in ALGORITHMS {
            for label in class_labels(clause) {
                let sql = format!("SELECT * FROM {table} WHERE PREDICT({name}) = '{label}'");
                e.set_use_envelopes(true);
                let degraded_rows = e.query(&sql).expect("degraded query must run").rows;
                e.set_use_envelopes(false);
                let baseline_rows = e.query(&sql).expect("baseline query must run").rows;
                prop_assert_eq!(
                    &degraded_rows,
                    &baseline_rows,
                    "model {} label {}", name, label
                );
            }
        }
    }
}
