//! Vectorized predicate evaluation: compiled column programs, zone-map
//! pruning, and the scorer memo cache.
//!
//! The paper's §4.2 rewrite turns opaque mining predicates into
//! data-column predicates; this module exploits that form one layer
//! deeper than access-path selection. Instead of walking the [`Expr`]
//! tree per row, the executor compiles the residual once into a
//! [`CompiledPredicate`] — a flat program whose leaves are per-column
//! member bitsets — and evaluates it MonetDB/X100-style over selection
//! vectors, one column at a time. Mining predicates (and `NOT` over
//! them) stay as [`CompiledNode::Scalar`] escape hatches evaluated
//! row-at-a-time, so the compiled program is exact on every input.
//!
//! The same compiled form doubles as a page-pruning test: a page whose
//! zone map ([`crate::Table::page_zones`]) is disjoint from a `Col`
//! leaf's mask can be proven empty without reading it (`Scalar` leaves
//! are conservatively "maybe"). Both executors consult
//! [`CompiledPredicate::page_may_match`] before touching a heap page.
//!
//! Finally, [`MemoScorer`] wraps the catalog's [`ModelOracle`] with a
//! bounded per-query memo keyed by the dictionary-encoded input tuple:
//! rows are small `u16` member vectors, so distinct tuples are few and
//! black-box residual checks collapse to hash lookups after the first
//! occurrence. `model_invocations` counts memo *misses* — actual model
//! applications — identically in the serial reference and the
//! vectorized/parallel executors, which is what keeps the differential
//! oracles exact.

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::expr::{Expr, ModelId, ModelOracle};
use crate::table::{RowId, Table};
use mpq_core::{ProxyDecision, ProxyScore};
use mpq_types::{AttrId, ClassId, Member, MemberSet, Row, Schema};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Default capacity (in cached `(model, tuple)` entries) of the scorer
/// memo. Tuples are a handful of `u16`s, so even the full cache is a
/// few megabytes; capacity `0` disables memoization entirely.
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 16;

/// One node of a compiled predicate program.
pub(crate) enum CompiledNode {
    /// Constant truth value.
    Const(bool),
    /// Column leaf: row qualifies iff `mask` contains its member in
    /// column `col`. Compiled from [`crate::AtomPred`] via
    /// [`crate::AtomPred::member_set`].
    Col {
        /// Column index into the table's schema.
        col: usize,
        /// Matching members.
        mask: MemberSet,
    },
    /// Conjunction: children filter the selection in order, so the
    /// evaluated (model, tuple) set matches short-circuit `&&` exactly.
    And(Vec<CompiledNode>),
    /// Disjunction: children run over not-yet-matched rows only, which
    /// preserves short-circuit `||` semantics per row.
    Or(Vec<CompiledNode>),
    /// Escape hatch for mining predicates and `NOT` over them: exact
    /// row-at-a-time tree evaluation through the oracle.
    Scalar(Expr),
}

/// A predicate compiled for vectorized evaluation and zone-map pruning.
pub struct CompiledPredicate {
    root: CompiledNode,
    n_nodes: usize,
}

impl CompiledPredicate {
    /// Compiles `expr` against `schema`. Total: every expression
    /// compiles; shapes with no columnar form become `Scalar` leaves.
    pub fn compile(expr: &Expr, schema: &Schema) -> CompiledPredicate {
        let root = compile_node(expr, schema);
        let n_nodes = count_nodes(&root);
        CompiledPredicate { root, n_nodes }
    }

    /// Number of nodes in the compiled program.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Whether any row of a page with zone summary `zones` *may*
    /// satisfy the predicate. `false` is a proof of emptiness (the page
    /// can be skipped); `true` is inconclusive. Sound because a `Col`
    /// leaf whose mask is disjoint from the column's zone set matches no
    /// row of the page, conjunction needs every child possible,
    /// disjunction needs one, and `Scalar` leaves are always "maybe".
    pub fn page_may_match(&self, zones: &[MemberSet]) -> bool {
        may_match(&self.root, zones)
    }

    /// Filters `sel` (ascending row ids) down to the rows satisfying
    /// the predicate, evaluating column leaves over column slices and
    /// `Scalar` leaves row-at-a-time through `ctx`. On error `sel` is
    /// garbage and must be discarded.
    pub(crate) fn filter_batch<O: ModelOracle>(
        &self,
        sel: &mut Vec<RowId>,
        ctx: &mut BatchCtx<'_, O>,
    ) -> Result<(), EngineError> {
        filter(&self.root, sel, ctx)
    }
}

fn compile_node(expr: &Expr, schema: &Schema) -> CompiledNode {
    match expr {
        Expr::Const(b) => CompiledNode::Const(*b),
        Expr::Atom(a) => {
            let card = schema.attr(a.attr).domain.cardinality();
            CompiledNode::Col { col: a.attr.index(), mask: a.pred.member_set(card) }
        }
        Expr::And(ps) => {
            let mut kids: Vec<CompiledNode> =
                ps.iter().map(|p| compile_node(p, schema)).collect();
            order_children(&mut kids, true);
            CompiledNode::And(kids)
        }
        Expr::Or(ps) => {
            let mut kids: Vec<CompiledNode> =
                ps.iter().map(|p| compile_node(p, schema)).collect();
            order_children(&mut kids, false);
            CompiledNode::Or(kids)
        }
        // Mining predicates and NOT (normalize pushes NOT down to atoms
        // except over mining predicates) stay scalar.
        other => CompiledNode::Scalar(other.clone()),
    }
}

/// Estimated fraction of a uniform domain a node matches: mask density
/// for column leaves, independence products for the connectives.
/// `Scalar` leaves report 1.0 so they never look cheaper than a column
/// filter.
fn match_density(node: &CompiledNode) -> f64 {
    match node {
        CompiledNode::Const(b) => f64::from(u8::from(*b)),
        CompiledNode::Col { mask, .. } => {
            if mask.domain() == 0 {
                0.0
            } else {
                f64::from(mask.len()) / f64::from(mask.domain())
            }
        }
        CompiledNode::And(ps) => ps.iter().map(match_density).product(),
        CompiledNode::Or(ps) => {
            1.0 - ps.iter().map(|p| 1.0 - match_density(p)).product::<f64>()
        }
        CompiledNode::Scalar(_) => 1.0,
    }
}

fn has_scalar(node: &CompiledNode) -> bool {
    match node {
        CompiledNode::Scalar(_) => true,
        CompiledNode::And(ps) | CompiledNode::Or(ps) => ps.iter().any(has_scalar),
        _ => false,
    }
}

/// Reorders each maximal run of consecutive scalar-free children by
/// estimated match density: ascending for `And` (most selective filter
/// narrows the selection first), descending for `Or` (largest disjunct
/// shrinks the not-yet-matched set first). Scalar-bearing children never
/// move, and pure filters never cross one, so the row set reaching every
/// scalar leaf — and with it model-invocation accounting against the
/// row-at-a-time reference — is unchanged: permuting pure filters within
/// a run cannot change what survives (or matches out of) the run.
fn order_children(children: &mut [CompiledNode], ascending: bool) {
    let mut i = 0;
    while i < children.len() {
        if has_scalar(&children[i]) {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < children.len() && !has_scalar(&children[j]) {
            j += 1;
        }
        children[i..j].sort_by(|a, b| {
            let (da, db) = (match_density(a), match_density(b));
            if ascending {
                da.total_cmp(&db)
            } else {
                db.total_cmp(&da)
            }
        });
        i = j;
    }
}

fn count_nodes(node: &CompiledNode) -> usize {
    match node {
        CompiledNode::And(ps) | CompiledNode::Or(ps) => {
            1 + ps.iter().map(count_nodes).sum::<usize>()
        }
        _ => 1,
    }
}

fn may_match(node: &CompiledNode, zones: &[MemberSet]) -> bool {
    match node {
        CompiledNode::Const(b) => *b,
        CompiledNode::Col { col, mask } => !mask.is_disjoint(&zones[*col]),
        CompiledNode::And(ps) => ps.iter().all(|p| may_match(p, zones)),
        CompiledNode::Or(ps) => ps.iter().any(|p| may_match(p, zones)),
        CompiledNode::Scalar(_) => true,
    }
}

/// Per-execution state threaded through batch evaluation.
pub(crate) struct BatchCtx<'a, O: ModelOracle> {
    /// Table being scanned (column access for `Col` leaves, row
    /// materialization for `Scalar` leaves).
    pub table: &'a Table,
    /// Oracle resolving model predictions (normally a [`MemoScorer`]).
    pub oracle: &'a O,
    /// Reused row buffer — the scalar path's column-cursor view fills
    /// it only when a `Scalar` leaf actually runs, killing the per-row
    /// `Vec<Member>` allocation of the old interpreter.
    pub row_buf: Vec<Member>,
    /// Called after each row evaluated through a `Scalar` leaf; the
    /// executors hook invocation-budget and deadline checks here so
    /// breach classification matches the row-at-a-time reference.
    pub after_scalar_row: &'a mut dyn FnMut() -> Result<(), EngineError>,
}

fn filter<O: ModelOracle>(
    node: &CompiledNode,
    sel: &mut Vec<RowId>,
    ctx: &mut BatchCtx<'_, O>,
) -> Result<(), EngineError> {
    match node {
        CompiledNode::Const(true) => Ok(()),
        CompiledNode::Const(false) => {
            sel.clear();
            Ok(())
        }
        CompiledNode::Col { col, mask } => {
            let column = ctx.table.column(*col);
            sel.retain(|&r| mask.contains(column[r as usize]));
            Ok(())
        }
        CompiledNode::And(ps) => {
            for p in ps {
                if sel.is_empty() {
                    break;
                }
                filter(p, sel, ctx)?;
            }
            Ok(())
        }
        CompiledNode::Or(ps) => {
            // Each child sees only rows no earlier child matched —
            // exactly the rows short-circuit `||` would evaluate it on.
            let mut remaining = std::mem::take(sel);
            let mut matched: Vec<RowId> = Vec::new();
            for p in ps {
                if remaining.is_empty() {
                    break;
                }
                let mut pass = remaining.clone();
                filter(p, &mut pass, ctx)?;
                if pass.is_empty() {
                    continue;
                }
                subtract_sorted(&mut remaining, &pass);
                matched.extend_from_slice(&pass);
            }
            matched.sort_unstable();
            *sel = matched;
            Ok(())
        }
        CompiledNode::Scalar(expr) => {
            let n_cols = ctx.table.schema().len();
            let mut kept = 0;
            for i in 0..sel.len() {
                let row = sel[i];
                for d in 0..n_cols {
                    ctx.row_buf[d] = ctx.table.cell(row, d);
                }
                // Invocations are counted by the memo oracle (misses),
                // not by the tree walk — the counter here is discarded.
                let mut tree_inv = 0u64;
                let hit = expr.eval(&ctx.row_buf, ctx.oracle, &mut tree_inv);
                (ctx.after_scalar_row)()?;
                if hit {
                    sel[kept] = row;
                    kept += 1;
                }
            }
            sel.truncate(kept);
            Ok(())
        }
    }
}

/// Removes the (sorted, subset) `pass` rows from the sorted `remaining`
/// vector in one merge pass.
fn subtract_sorted(remaining: &mut Vec<RowId>, pass: &[RowId]) {
    let mut pi = 0;
    let mut kept = 0;
    for i in 0..remaining.len() {
        let r = remaining[i];
        if pi < pass.len() && pass[pi] == r {
            pi += 1;
        } else {
            remaining[kept] = r;
            kept += 1;
        }
    }
    remaining.truncate(kept);
}

// ---------------------------------------------------------------------
// Scorer memo cache
// ---------------------------------------------------------------------

/// Per-model memo table. `Box<[Member]>` keys let `&[Member]` rows
/// probe without allocating (via `Borrow`).
type ModelMemo = HashMap<Box<[Member]>, ClassId>;

/// A bounded per-query memo over the catalog's [`ModelOracle`].
///
/// `predict` answers repeated `(model, tuple)` questions from the memo;
/// a miss computes under the write lock (double-checked), so each
/// distinct key is scored exactly once no matter how many workers race
/// on it — miss counts are deterministic across degrees of parallelism.
/// The capacity bound stops *inserting* when full (no eviction): the
/// memo can only shrink `model_invocations`, and counts stay identical
/// across executors as long as the distinct-tuple count fits. Injected
/// scorer faults still fire: the miss path calls straight into the
/// catalog, and the memo never outlives one execution.
pub(crate) struct MemoScorer<'a> {
    catalog: &'a Catalog,
    capacity: usize,
    memo: RwLock<MemoState>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Verified proxy cascades, indexed by model id (`None` = the plan
    /// enabled no cascade for this model, or verification rejected it).
    /// Living on the shared oracle means the scalar reference, the
    /// vectorized executor, and every parallel worker make identical
    /// cascade decisions — the differential oracles hold for free.
    cascades: Vec<Option<Arc<ProxyScore>>>,
    cascade_accepts: AtomicU64,
    cascade_rejects: AtomicU64,
    band_rows: AtomicU64,
    scorer_ns: AtomicU64,
}

struct MemoState {
    per_model: Vec<ModelMemo>,
    len: usize,
}

impl<'a> MemoScorer<'a> {
    /// A memo scorer with proxy cascades enabled for the models carrying
    /// `Some` entries (index = model id). Callers build the vector via
    /// [`crate::compile::build_cascades`], which verifies each table.
    pub(crate) fn with_cascades(
        catalog: &'a Catalog,
        capacity: usize,
        cascades: Vec<Option<Arc<ProxyScore>>>,
    ) -> MemoScorer<'a> {
        MemoScorer {
            catalog,
            capacity,
            memo: RwLock::new(MemoState { per_model: Vec::new(), len: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cascades,
            cascade_accepts: AtomicU64::new(0),
            cascade_rejects: AtomicU64::new(0),
            band_rows: AtomicU64::new(0),
            scorer_ns: AtomicU64::new(0),
        }
    }

    /// Memo hits so far (predictions answered without the model).
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Memo misses so far = actual black-box model applications.
    pub(crate) fn invocations(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Rows whose mining predicate the cascade answered positively.
    pub(crate) fn cascade_accepts(&self) -> u64 {
        self.cascade_accepts.load(Ordering::Relaxed)
    }

    /// Rows whose mining predicate the cascade answered negatively.
    pub(crate) fn cascade_rejects(&self) -> u64 {
        self.cascade_rejects.load(Ordering::Relaxed)
    }

    /// Rows inside the proxy's uncertainty band (fell through to the
    /// memo/scorer path).
    pub(crate) fn band_rows(&self) -> u64 {
        self.band_rows.load(Ordering::Relaxed)
    }

    /// Wall nanoseconds spent inside the real scorer (memo misses only).
    pub(crate) fn scorer_ns(&self) -> u64 {
        self.scorer_ns.load(Ordering::Relaxed)
    }

    /// The timed catalog scorer call shared by every miss path.
    fn scored_predict(&self, model: ModelId, row: &Row) -> ClassId {
        let t0 = Instant::now();
        let c = self.catalog.predict(model, row);
        self.scorer_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        c
    }
}

impl MemoScorer<'_> {
    /// The memo/scorer path without the cascade front end: called for
    /// band rows (already counted by the caller) and for models with no
    /// verified proxy.
    fn predict_via_memo(&self, model: ModelId, row: &Row) -> ClassId {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return self.scored_predict(model, row);
        }
        {
            let state = self.memo.read().unwrap_or_else(|e| e.into_inner());
            if let Some(&c) = state.per_model.get(model).and_then(|m| m.get(row)) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return c;
            }
        }
        let mut state = self.memo.write().unwrap_or_else(|e| e.into_inner());
        if let Some(&c) = state.per_model.get(model).and_then(|m| m.get(row)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return c;
        }
        // Counted before the (possibly panicking) model runs, matching
        // the reference interpreter's increment-then-predict order.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let c = self.scored_predict(model, row);
        if state.len < self.capacity {
            if state.per_model.len() <= model {
                state.per_model.resize_with(model + 1, ModelMemo::new);
            }
            state.per_model[model].insert(Box::from(row), c);
            state.len += 1;
        }
        c
    }
}

impl ModelOracle for MemoScorer<'_> {
    fn predict(&self, model: ModelId, row: &Row) -> ClassId {
        // A unique proxy argmax IS the model's prediction (bit-identical
        // score tables), so `ModelsAgree`-style direct predictions ride
        // the cascade too. Only tied rows — the band — reach the
        // memo/scorer path, and they are counted here so `band_rows`
        // equals the fallback-scorer set on every query shape.
        if let Some(Some(proxy)) = self.cascades.get(model) {
            match proxy.decide(row) {
                ProxyDecision::Unique(c) => return c,
                ProxyDecision::Band => {
                    self.band_rows.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.predict_via_memo(model, row)
    }

    fn class_for_member(&self, model: ModelId, column: AttrId, m: Member) -> Option<ClassId> {
        // Pure metadata lookup — not an invocation; no memo needed.
        self.catalog.class_for_member(model, column, m)
    }

    fn predict_in(&self, model: ModelId, row: &Row, accept: &[ClassId]) -> bool {
        if let Some(Some(proxy)) = self.cascades.get(model) {
            match proxy.decide(row) {
                // A unique proxy argmax IS the model's prediction
                // (bit-identical score tables): answer membership
                // without scoring, memoizing, or counting an invocation.
                ProxyDecision::Unique(c) => {
                    let hit = accept.contains(&c);
                    if hit {
                        self.cascade_accepts.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.cascade_rejects.fetch_add(1, Ordering::Relaxed);
                    }
                    return hit;
                }
                // Tied scores: only the model's tie-break can decide.
                // Counted here, so the fallback must skip the cascade
                // front end (`predict` would count the band row twice).
                ProxyDecision::Band => {
                    self.band_rows.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        accept.contains(&self.predict_via_memo(model, row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Atom, AtomPred, MiningPred};
    use crate::table::Table;
    use mpq_types::{AttrDomain, Attribute, Dataset};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("a", AttrDomain::categorical(["p", "q", "r", "s"])),
            Attribute::new("b", AttrDomain::categorical(["x", "y", "z"])),
        ])
        .unwrap()
    }

    fn table() -> Table {
        let rows = (0..64u16).map(|i| vec![i % 4, (i / 4) % 3]);
        Table::with_page_bytes("t", &Dataset::from_rows(schema(), rows).unwrap(), 256)
    }

    struct NoModels;
    impl ModelOracle for NoModels {
        fn predict(&self, _: ModelId, _: &Row) -> ClassId {
            unreachable!("no mining predicates here")
        }
        fn class_for_member(&self, _: ModelId, _: AttrId, _: Member) -> Option<ClassId> {
            None
        }
    }

    fn run(pred: &CompiledPredicate, t: &Table) -> Vec<RowId> {
        let mut after = || Ok(());
        let mut ctx = BatchCtx {
            table: t,
            oracle: &NoModels,
            row_buf: vec![0; t.schema().len()],
            after_scalar_row: &mut after,
        };
        let mut sel: Vec<RowId> = (0..t.n_rows() as RowId).collect();
        pred.filter_batch(&mut sel, &mut ctx).unwrap();
        sel
    }

    fn reference(e: &Expr, t: &Table) -> Vec<RowId> {
        let mut inv = 0;
        (0..t.n_rows() as RowId)
            .filter(|&r| e.eval(&t.row(r), &NoModels, &mut inv))
            .collect()
    }

    #[test]
    fn compiled_filter_matches_tree_walk() {
        let s = schema();
        let t = table();
        let a = |attr, pred| Expr::Atom(Atom { attr: AttrId(attr), pred });
        let exprs = [
            Expr::Const(true),
            Expr::Const(false),
            a(0, AtomPred::Eq(2)),
            a(1, AtomPred::Range { lo: 1, hi: 2 }),
            Expr::and(vec![a(0, AtomPred::Eq(1)), a(1, AtomPred::Eq(0))]),
            Expr::or(vec![a(0, AtomPred::Eq(0)), a(1, AtomPred::Eq(2))]),
            Expr::and(vec![
                Expr::or(vec![a(0, AtomPred::Eq(0)), a(0, AtomPred::Eq(3))]),
                a(1, AtomPred::In(mpq_types::MemberSet::of(3, [0, 2]))),
            ]),
        ];
        for e in &exprs {
            let c = CompiledPredicate::compile(e, &s);
            assert_eq!(run(&c, &t), reference(e, &t), "{e:?}");
        }
    }

    #[test]
    fn zone_pruning_is_sound_and_effective() {
        let s = schema();
        let t = table(); // 4 rows/page: column a cycles fully per page
        let eq0 = CompiledPredicate::compile(
            &Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }),
            &s,
        );
        // Every page holds member 0 of column a → nothing prunable.
        for page in 0..t.n_pages() {
            assert!(eq0.page_may_match(t.page_zones(page)));
        }
        // Column b is clustered in runs of 4 rows = 1 page.
        let b1 = CompiledPredicate::compile(
            &Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(1) }),
            &s,
        );
        let prunable: Vec<bool> =
            (0..t.n_pages()).map(|p| !b1.page_may_match(t.page_zones(p))).collect();
        assert!(prunable.iter().any(|&x| x), "clustered member must prune pages");
        // Soundness: no pruned page may contain a matching row.
        for (page, pruned) in prunable.iter().enumerate() {
            if *pruned {
                let start = page * t.rows_per_page();
                let end = (start + t.rows_per_page()).min(t.n_rows());
                assert!((start..end).all(|r| t.cell(r as RowId, 1) != 1));
            }
        }
        // Scalar leaves never prune.
        let mining = CompiledPredicate::compile(
            &Expr::Mining(MiningPred::ClassEq { model: 0, class: ClassId(0) }),
            &s,
        );
        assert!((0..t.n_pages()).all(|p| mining.page_may_match(t.page_zones(p))));
    }

    #[test]
    fn subtract_sorted_removes_subset() {
        let mut rem: Vec<RowId> = vec![1, 3, 5, 7, 9];
        subtract_sorted(&mut rem, &[3, 9]);
        assert_eq!(rem, vec![1, 5, 7]);
        subtract_sorted(&mut rem, &[]);
        assert_eq!(rem, vec![1, 5, 7]);
        subtract_sorted(&mut rem, &[1, 5, 7]);
        assert!(rem.is_empty());
    }
}
