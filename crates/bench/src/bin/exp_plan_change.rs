//! Reproduces the second inline table of **§5.2.1** (fraction of queries
//! whose physical plan changed; paper: DT 72.7%, NB 75.3%, clustering
//! 76.6%) and **Figures 3–5** (the per-dataset drill-down).
//!
//! `--model tree|nb|cluster` restricts the per-dataset breakdown.

use mpq_bench::report::{kind_name, plan_change_by_dataset, plan_change_by_kind};
use mpq_bench::{run_full_sweep, ModelKind, Scale};

fn main() {
    let scale = Scale::from_args(0.02);
    let args: Vec<String> = std::env::args().collect();
    let filter = args.iter().position(|a| a == "--model").and_then(|i| args.get(i + 1)).map(|m| {
        match m.as_str() {
            "tree" => ModelKind::Tree,
            "nb" => ModelKind::NaiveBayes,
            "cluster" => ModelKind::Clustering,
            other => panic!("unknown --model {other:?} (use tree|nb|cluster)"),
        }
    });

    eprintln!("running full sweep at scale {} ...", scale.0);
    let (rows, _) = run_full_sweep(scale, 7);

    println!("== §5.2.1: % of queries whose plan changed ==\n");
    println!("{:<16} {:>12} {:>12}", "Model", "measured", "paper");
    let paper = [72.7, 75.3, 76.6];
    for ((kind, measured), paper) in plan_change_by_kind(&rows).into_iter().zip(paper) {
        println!("{:<16} {:>11.1}% {:>11.1}%", kind_name(kind), measured, paper);
    }

    let kinds = match filter {
        Some(k) => vec![k],
        None => vec![ModelKind::Tree, ModelKind::NaiveBayes, ModelKind::Clustering],
    };
    for kind in kinds {
        let figure = match kind {
            ModelKind::Tree => "Figure 3",
            ModelKind::NaiveBayes => "Figure 4",
            ModelKind::Clustering => "Figure 5",
        };
        println!("\n== {figure}: % plan changed per dataset — {} ==\n", kind_name(kind));
        for (dataset, pct) in plan_change_by_dataset(&rows, kind) {
            let bars = "#".repeat((pct / 5.0).round() as usize);
            println!("{dataset:<14} {pct:>6.1}%  {bars}");
        }
    }
    println!(
        "\nPlan changed = the optimizer chose an index (seek or union) or a\n\
         constant scan instead of the full scan — the paper's criterion."
    );
}
