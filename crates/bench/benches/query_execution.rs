//! Query-execution benchmarks: the paper's headline comparison as a
//! micro-benchmark — executing a mining-predicate query with upper
//! envelopes (index plan) vs the black-box full scan, on one skewed
//! dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use mpq_bench::setup::{build_setup, ModelKindTag, Scale};
use mpq_core::DeriveOptions;
use mpq_datagen::table2;
use mpq_engine::{envelope_to_expr, execute, tune_indexes, Expr};
use mpq_types::ClassId;
use std::hint::black_box;

fn bench_envelope_vs_scan(c: &mut Criterion) {
    let spec = table2().into_iter().find(|s| s.name == "Shuttle").expect("known dataset");
    let setup =
        build_setup(&spec, ModelKindTag::Tree, Scale(0.01), 7, &DeriveOptions::default());
    let schema = setup.engine.catalog().table(0).table.schema().clone();
    let workload: Vec<Expr> = (0..setup.n_classes)
        .map(|k| envelope_to_expr(&schema, &setup.envelope(ClassId(k as u16))).normalize(&schema))
        .collect();
    let opts = setup.engine.options();
    tune_indexes(&mut setup.engine.catalog_mut(), 0, &workload, 24, &opts);

    // The rarest class: where envelopes pay off most.
    let rare = (0..setup.n_classes)
        .min_by(|&a, &b| {
            setup.class_selectivity[a]
                .partial_cmp(&setup.class_selectivity[b])
                .expect("finite")
        })
        .expect("has classes");

    let mut g = c.benchmark_group("exec/shuttle_tree_rare_class");
    g.sample_size(20);
    let env_plan = setup.engine.plan_predicate(0, workload[rare].clone());
    g.bench_function("envelope_plan", |b| {
        b.iter(|| black_box(execute(&env_plan, &setup.engine.catalog())))
    });
    let scan_plan = setup.engine.plan_predicate(0, Expr::Const(true));
    g.bench_function("full_scan", |b| {
        b.iter(|| black_box(execute(&scan_plan, &setup.engine.catalog())))
    });
    g.finish();
}

fn bench_rewrite_overhead(c: &mut Criterion) {
    // §4.2's claim: envelope lookup at optimization time is insignificant.
    let spec = table2().into_iter().find(|s| s.name == "Diabetes").expect("known dataset");
    let setup =
        build_setup(&spec, ModelKindTag::NaiveBayes, Scale(0.005), 7, &DeriveOptions::default());
    let mut g = c.benchmark_group("optimize/mining_query");
    g.bench_function("plan_with_envelopes", |b| {
        b.iter(|| {
            black_box(setup.engine.plan_predicate(
                0,
                Expr::Mining(mpq_engine::MiningPred::ClassEq { model: 0, class: ClassId(1) }),
            ))
        })
    });
    setup.engine.set_use_envelopes(false);
    g.bench_function("plan_without_envelopes", |b| {
        b.iter(|| {
            black_box(setup.engine.plan_predicate(
                0,
                Expr::Mining(mpq_engine::MiningPred::ClassEq { model: 0, class: ClassId(1) }),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_envelope_vs_scan, bench_rewrite_overhead);
criterion_main!(benches);
