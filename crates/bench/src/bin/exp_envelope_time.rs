//! Reproduces the paper's **experiment (iii)** (§5, intro): the time to
//! precompute per-class upper envelopes is a negligible fraction of model
//! training time, and looking atomic envelopes up at optimization time is
//! insignificant next to optimization itself.

use mpq_bench::report::kind_name;
use mpq_bench::{run_full_sweep, Scale};
use std::time::Instant;

fn main() {
    let scale = Scale::from_args(0.01);
    eprintln!("running full sweep at scale {} ...", scale.0);
    let (_, timings) = run_full_sweep(scale, 7);

    println!("== §5 experiment (iii): envelope precomputation overhead ==\n");
    println!(
        "{:<14} {:<14} {:>12} {:>12} {:>10}",
        "dataset", "model", "train", "derive", "ratio"
    );
    let mut ratios = Vec::new();
    for t in &timings {
        let ratio = t.derive_time.as_secs_f64() / t.train_time.as_secs_f64().max(1e-9);
        ratios.push(ratio);
        println!(
            "{:<14} {:<14} {:>10.2?} {:>10.2?} {:>9.3}",
            t.dataset,
            kind_name(t.kind),
            t.train_time,
            t.derive_time,
            ratio
        );
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = ratios[ratios.len() / 2];
    println!("\nmedian derive/train ratio: {median:.3}");

    // Optimization-time lookup cost: envelopes are precomputed, so the
    // per-query lookup is a vector index — measure it directly.
    let nb = mpq_core::paper_table1_model();
    let envs = mpq_core::EnvelopeProvider::envelopes(&nb, &mpq_core::DeriveOptions::default());
    let t0 = Instant::now();
    let mut total = 0usize;
    for _ in 0..100_000 {
        total += envs[1].n_disjuncts();
    }
    let per_lookup = t0.elapsed() / 100_000;
    println!(
        "atomic-envelope lookup: ~{per_lookup:?} each ({total} disjunct reads) — negligible\n\
         next to query optimization, as the paper reports."
    );
}
