//! Standing mining-predicate subscriptions (predicate pub/sub).
//!
//! The paper's envelope rewrite turns an opaque `PREDICT(m) = c` into a
//! sound attribute-space predicate. That move inverts cleanly: instead
//! of one query scanning many rows, many *standing* queries can be
//! matched against one arriving row by indexing the registered
//! envelopes themselves. A client runs `SUBSCRIBE SELECT * FROM t WHERE
//! ...`, the engine registers the query durably (the WAL logs the
//! verbatim SQL and re-parses it at replay), and every subsequently
//! inserted row that satisfies the predicate is pushed back as a
//! [`MatchEvent`].
//!
//! The matcher ([`index::SubIndex`]) groups the subscriptions' envelope
//! DNF clauses by (column, member-mask) so one inserted row walks
//! shared clause prefixes instead of evaluating every predicate
//! independently; candidate subscriptions then evaluate their full
//! rewritten predicate through a shared [`crate::vectorized` memo
//! scorer](crate::vectorized), so subscriptions sharing a model pay for
//! at most one scorer call per row — and exactly-compiled subscriptions
//! pay zero by construction.

mod index;

pub use index::MatchMetrics;
pub(crate) use index::{IndexKey, SubIndex};

use crate::expr::Expr;
use crate::table::RowId;
use mpq_types::Member;

/// A registered standing subscription.
#[derive(Debug, Clone)]
pub struct Subscription {
    /// Stable id assigned at registration (monotone per catalog).
    pub id: u64,
    /// The table the standing query watches.
    pub table: usize,
    /// The inner query's verbatim SQL text. Durable registration logs
    /// this text and re-parses it at recovery, so a replayed catalog
    /// sees exactly the predicate the subscriber registered.
    pub sql: String,
    /// The parsed predicate (as registered, before envelope rewriting —
    /// the matcher rewrites against the live catalog so retrained
    /// models take effect).
    pub(crate) predicate: Expr,
}

/// One pushed match: an inserted row satisfied a standing subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchEvent {
    /// The subscription that matched.
    pub subscription: u64,
    /// Name of the table the row landed in.
    pub table: String,
    /// Row id of the inserted row.
    pub row_id: RowId,
    /// The matched row (encoded members, schema order).
    pub row: Vec<Member>,
    /// How the match was found (index-pruned vs residual-evaluated vs
    /// scorer-banded counts for the row that produced it).
    pub metrics: MatchMetrics,
}
