//! Fault injection for robustness testing.
//!
//! A [`FaultInjector`] lets tests force the failure modes the engine is
//! supposed to absorb: index probes erroring out, scorers returning NaN
//! or panicking, and envelope derivation timing out or blowing the grid
//! limit. Every flag is off by default, so production paths pay one
//! relaxed atomic load per site and behave identically with the injector
//! left untouched.
//!
//! The injector is shared via `Arc` between the [`crate::Engine`], its
//! catalog, and the test harness, so tests can arm faults mid-session.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Sentinel for "no morsel targeted" in [`FaultInjector::scorer_panic_morsel`].
const NO_MORSEL: usize = usize::MAX;

/// Sentinel for "no page targeted" in [`FaultInjector::scorer_panic_page`].
const NO_PAGE: usize = usize::MAX;

/// Switchboard of injectable faults. All flags default to off.
///
/// Intended for tests; arming faults in production turns healthy queries
/// into fallbacks and typed errors.
#[derive(Debug)]
pub struct FaultInjector {
    index_probe_failure: AtomicBool,
    scorer_nan: AtomicBool,
    scorer_panic: AtomicBool,
    /// Morsel index whose worker should panic mid-scan; `NO_MORSEL`
    /// when disarmed.
    scorer_panic_morsel: AtomicUsize,
    /// Heap page whose scan should panic (both executors, any degree of
    /// parallelism); `NO_PAGE` when disarmed.
    scorer_panic_page: AtomicUsize,
    cascade_band_perturb: AtomicBool,
    derive_timeout: AtomicBool,
    derive_grid_too_large: AtomicBool,
    wal_torn_write: AtomicBool,
    wal_bit_flip: AtomicBool,
    wal_short_read: AtomicBool,
    wal_enospc: AtomicBool,
    wal_fsync_fail: AtomicBool,
    conn_drop_mid_response: AtomicBool,
    conn_torn_frame: AtomicBool,
    conn_slow_loris: AtomicBool,
    repl_drop_stream: AtomicBool,
    repl_stall: AtomicBool,
    repl_duplicate: AtomicBool,
    notify_overflow_pulse: AtomicBool,
    sub_index_corrupt: AtomicBool,
}

impl Default for FaultInjector {
    fn default() -> FaultInjector {
        FaultInjector {
            index_probe_failure: AtomicBool::new(false),
            scorer_nan: AtomicBool::new(false),
            scorer_panic: AtomicBool::new(false),
            scorer_panic_morsel: AtomicUsize::new(NO_MORSEL),
            scorer_panic_page: AtomicUsize::new(NO_PAGE),
            cascade_band_perturb: AtomicBool::new(false),
            derive_timeout: AtomicBool::new(false),
            derive_grid_too_large: AtomicBool::new(false),
            wal_torn_write: AtomicBool::new(false),
            wal_bit_flip: AtomicBool::new(false),
            wal_short_read: AtomicBool::new(false),
            wal_enospc: AtomicBool::new(false),
            wal_fsync_fail: AtomicBool::new(false),
            conn_drop_mid_response: AtomicBool::new(false),
            conn_torn_frame: AtomicBool::new(false),
            conn_slow_loris: AtomicBool::new(false),
            repl_drop_stream: AtomicBool::new(false),
            repl_stall: AtomicBool::new(false),
            repl_duplicate: AtomicBool::new(false),
            notify_overflow_pulse: AtomicBool::new(false),
            sub_index_corrupt: AtomicBool::new(false),
        }
    }
}

impl FaultInjector {
    /// A new injector with every fault disarmed.
    pub fn new() -> FaultInjector {
        FaultInjector::default()
    }

    /// Arm/disarm failing index probes. Armed, every index lookup
    /// reports failure and the executor falls back to a full scan with
    /// the full residual predicate (sound: identical row set).
    pub fn set_index_probe_failure(&self, on: bool) {
        self.index_probe_failure.store(on, Ordering::Relaxed);
    }

    /// True when index probes should fail.
    pub fn index_probe_failure_armed(&self) -> bool {
        self.index_probe_failure.load(Ordering::Relaxed)
    }

    /// Arm/disarm scorers producing NaN. Armed, model application
    /// panics with a recognizable message, which the engine's
    /// `catch_unwind` entry point converts to
    /// [`crate::EngineError::Internal`].
    pub fn set_scorer_nan(&self, on: bool) {
        self.scorer_nan.store(on, Ordering::Relaxed);
    }

    /// True when scorers should produce NaN.
    pub fn scorer_nan_armed(&self) -> bool {
        self.scorer_nan.load(Ordering::Relaxed)
    }

    /// Arm/disarm scorer panics (distinct from NaN so tests can tell
    /// the two payloads apart).
    pub fn set_scorer_panic(&self, on: bool) {
        self.scorer_panic.store(on, Ordering::Relaxed);
    }

    /// True when scorers should panic.
    pub fn scorer_panic_armed(&self) -> bool {
        self.scorer_panic.load(Ordering::Relaxed)
    }

    /// Arm a scorer panic inside the worker that picks up morsel
    /// `morsel` of the next parallel execution (`None` disarms). Unlike
    /// [`FaultInjector::set_scorer_panic`], which fails the first model
    /// invocation anywhere, this targets one specific partition so tests
    /// can prove a panic on a worker thread — not the coordinating
    /// thread — surfaces as a typed error. Serial executions ignore it.
    pub fn set_scorer_panic_on_morsel(&self, morsel: Option<usize>) {
        self.scorer_panic_morsel.store(morsel.unwrap_or(NO_MORSEL), Ordering::Relaxed);
    }

    /// The morsel index armed to panic, if any.
    pub fn scorer_panic_morsel(&self) -> Option<usize> {
        let m = self.scorer_panic_morsel.load(Ordering::Relaxed);
        (m != NO_MORSEL).then_some(m)
    }

    /// Arm a scorer panic while scanning heap page `page` of the next
    /// execution (`None` disarms). Unlike the morsel-targeted fault —
    /// whose unit only exists in the parallel executor — pages are the
    /// shared scan unit, so this fault fires identically under the
    /// serial, vectorized, and parallel paths; fault-parity tests use
    /// it to prove all of them surface the same typed error.
    pub fn set_scorer_panic_on_page(&self, page: Option<usize>) {
        self.scorer_panic_page.store(page.unwrap_or(NO_PAGE), Ordering::Relaxed);
    }

    /// The heap page armed to panic, if any.
    pub fn scorer_panic_page(&self) -> Option<usize> {
        let p = self.scorer_panic_page.load(Ordering::Relaxed);
        (p != NO_PAGE).then_some(p)
    }

    /// Arm/disarm cascade-band perturbation: when a query's cascade is
    /// set up, the stored proxy table is corrupted first (simulating a
    /// stale or bit-rotted table whose thresholds no longer match the
    /// model). The executor's pre-trust verification must detect the
    /// drift, skip the cascade for that model (sound scorer path), and
    /// record a typed health note — never return a wrong row set.
    /// Level-triggered: stays armed until disarmed.
    pub fn set_cascade_band_perturb(&self, on: bool) {
        self.cascade_band_perturb.store(on, Ordering::Relaxed);
    }

    /// True when cascade setup should perturb the stored proxy.
    pub fn cascade_band_perturb_armed(&self) -> bool {
        self.cascade_band_perturb.load(Ordering::Relaxed)
    }

    /// True when any fault that fires inside the model scorer is armed.
    /// Executors keep the real scorer path live in that case (no
    /// cascade short-circuit) so the armed fault has a target — the
    /// same reasoning that makes index faults fall back to full scans.
    pub fn any_scorer_fault_armed(&self) -> bool {
        self.scorer_nan_armed()
            || self.scorer_panic_armed()
            || self.scorer_panic_morsel().is_some()
            || self.scorer_panic_page().is_some()
    }

    /// Arm/disarm forced derivation timeouts. Armed, envelope
    /// derivation fails as if [`mpq_core::DeriveOptions::time_budget`]
    /// had elapsed; the catalog installs degraded `TRUE` envelopes.
    pub fn set_derive_timeout(&self, on: bool) {
        self.derive_timeout.store(on, Ordering::Relaxed);
    }

    /// True when derivation should time out.
    pub fn derive_timeout_armed(&self) -> bool {
        self.derive_timeout.load(Ordering::Relaxed)
    }

    /// Arm/disarm the grid-too-large derivation failure (the
    /// discretized attribute grid exceeding what top-down derivation
    /// will enumerate).
    pub fn set_derive_grid_too_large(&self, on: bool) {
        self.derive_grid_too_large.store(on, Ordering::Relaxed);
    }

    /// True when derivation should report a grid-too-large failure.
    pub fn derive_grid_too_large_armed(&self) -> bool {
        self.derive_grid_too_large.load(Ordering::Relaxed)
    }

    /// Arm a torn WAL write: the *next* WAL append persists only a
    /// prefix of the record's frame (simulating power loss mid-write),
    /// reports [`crate::EngineError::Io`], and poisons the writer —
    /// later appends fail too, as they would on a dead disk. One-shot:
    /// consumed by the append that honours it.
    pub fn set_wal_torn_write(&self, on: bool) {
        self.wal_torn_write.store(on, Ordering::Relaxed);
    }

    /// Consumes the torn-write arm (one-shot), returning whether it was
    /// set.
    pub fn take_wal_torn_write(&self) -> bool {
        self.wal_torn_write.swap(false, Ordering::Relaxed)
    }

    /// True when a torn write is armed (not yet consumed).
    pub fn wal_torn_write_armed(&self) -> bool {
        self.wal_torn_write.load(Ordering::Relaxed)
    }

    /// Arm a silent WAL bit flip: the *next* WAL append flips one bit of
    /// the record payload after the checksum is computed, writes the
    /// full frame, and reports success — the damage is only detectable
    /// by CRC at the next recovery. One-shot.
    pub fn set_wal_bit_flip(&self, on: bool) {
        self.wal_bit_flip.store(on, Ordering::Relaxed);
    }

    /// Consumes the bit-flip arm (one-shot), returning whether it was
    /// set.
    pub fn take_wal_bit_flip(&self) -> bool {
        self.wal_bit_flip.swap(false, Ordering::Relaxed)
    }

    /// True when a bit flip is armed (not yet consumed).
    pub fn wal_bit_flip_armed(&self) -> bool {
        self.wal_bit_flip.load(Ordering::Relaxed)
    }

    /// Arm/disarm short reads during recovery: every WAL segment reads
    /// back a few bytes shorter than its true length, as if the final
    /// write never fully reached the platter. Stays armed until
    /// disarmed (it models a property of the file, not of one access).
    pub fn set_wal_short_read(&self, on: bool) {
        self.wal_short_read.store(on, Ordering::Relaxed);
    }

    /// True when recovery reads should come up short.
    pub fn wal_short_read_armed(&self) -> bool {
        self.wal_short_read.load(Ordering::Relaxed)
    }

    /// Arm/disarm disk-full WAL appends: appends fail with a typed
    /// ENOSPC-style [`crate::EngineError::Io`] *before* any byte
    /// reaches the file, so the writer stays trustworthy — once the
    /// fault clears (space freed), appends succeed again. Level-
    /// triggered: it models a property of the disk, not of one write.
    pub fn set_wal_enospc(&self, on: bool) {
        self.wal_enospc.store(on, Ordering::Relaxed);
    }

    /// True when appends should fail as if the disk were full.
    pub fn wal_enospc_armed(&self) -> bool {
        self.wal_enospc.load(Ordering::Relaxed)
    }

    /// Arm an fsync failure: the *next* WAL append writes its frame but
    /// the following `fsync` reports an error. Per fsync-gate
    /// semantics, the kernel may have dropped the dirty pages — the
    /// tail is untrusted, so the writer goes dead (read-only-degraded)
    /// and every later append fails typed. One-shot: consumed by the
    /// append that honours it.
    pub fn set_wal_fsync_fail(&self, on: bool) {
        self.wal_fsync_fail.store(on, Ordering::Relaxed);
    }

    /// Consumes the fsync-failure arm (one-shot), returning whether it
    /// was set.
    pub fn take_wal_fsync_fail(&self) -> bool {
        self.wal_fsync_fail.swap(false, Ordering::Relaxed)
    }

    /// True when an fsync failure is armed (not yet consumed).
    pub fn wal_fsync_fail_armed(&self) -> bool {
        self.wal_fsync_fail.load(Ordering::Relaxed)
    }

    // -- connection-level faults (honoured by the wire-protocol server
    //    and client in the `mpq-server`/`mpq-client` crates) ----------

    /// Arm a mid-response connection drop: the server writes only a
    /// prefix of the *next* response frame, then severs the connection
    /// — as a crashed server or cut cable would. The client must see a
    /// typed transport error, never a panic or a half-parsed reply.
    /// One-shot: consumed by the response that honours it.
    pub fn set_conn_drop_mid_response(&self, on: bool) {
        self.conn_drop_mid_response.store(on, Ordering::Relaxed);
    }

    /// Consumes the mid-response-drop arm (one-shot), returning whether
    /// it was set.
    pub fn take_conn_drop_mid_response(&self) -> bool {
        self.conn_drop_mid_response.swap(false, Ordering::Relaxed)
    }

    /// True when a mid-response drop is armed (not yet consumed).
    pub fn conn_drop_mid_response_armed(&self) -> bool {
        self.conn_drop_mid_response.load(Ordering::Relaxed)
    }

    /// Arm a torn response frame: the server flips one payload byte of
    /// the *next* response after its CRC was computed and sends the
    /// full frame — the client's CRC check must reject it with a typed
    /// frame error. One-shot.
    pub fn set_conn_torn_frame(&self, on: bool) {
        self.conn_torn_frame.store(on, Ordering::Relaxed);
    }

    /// Consumes the torn-frame arm (one-shot), returning whether it was
    /// set.
    pub fn take_conn_torn_frame(&self) -> bool {
        self.conn_torn_frame.swap(false, Ordering::Relaxed)
    }

    /// True when a torn response frame is armed (not yet consumed).
    pub fn conn_torn_frame_armed(&self) -> bool {
        self.conn_torn_frame.load(Ordering::Relaxed)
    }

    /// Arm/disarm slow-loris request writes: an armed client trickles
    /// its request bytes one at a time with pauses, exercising the
    /// server's request read deadline (which must cut the connection
    /// with a typed protocol error instead of pinning a thread
    /// forever). Level-triggered: stays armed until disarmed.
    pub fn set_conn_slow_loris(&self, on: bool) {
        self.conn_slow_loris.store(on, Ordering::Relaxed);
    }

    /// True when clients should trickle their request bytes.
    pub fn conn_slow_loris_armed(&self) -> bool {
        self.conn_slow_loris.load(Ordering::Relaxed)
    }

    // -- replication faults (honoured by the WAL shipper in
    //    `mpq-server` and by replication tests) ----------------------

    /// Arm a replication-stream drop: the shipper severs its standby
    /// connection mid-segment, *after* sending a batch but *before*
    /// reading the ack — so on reconnect the same records are shipped
    /// again and the standby must deduplicate by LSN. One-shot:
    /// consumed by the send that honours it.
    pub fn set_repl_drop_stream(&self, on: bool) {
        self.repl_drop_stream.store(on, Ordering::Relaxed);
    }

    /// Consumes the stream-drop arm (one-shot), returning whether it
    /// was set.
    pub fn take_repl_drop_stream(&self) -> bool {
        self.repl_drop_stream.swap(false, Ordering::Relaxed)
    }

    /// True when a stream drop is armed (not yet consumed).
    pub fn repl_drop_stream_armed(&self) -> bool {
        self.repl_drop_stream.load(Ordering::Relaxed)
    }

    /// Arm/disarm a stalled standby: the shipper pauses each cycle
    /// instead of shipping, so replication lag grows while the primary
    /// keeps appending. Level-triggered: it models a slow or wedged
    /// peer, not one lost message.
    pub fn set_repl_stall(&self, on: bool) {
        self.repl_stall.store(on, Ordering::Relaxed);
    }

    /// True when the shipper should stall.
    pub fn repl_stall_armed(&self) -> bool {
        self.repl_stall.load(Ordering::Relaxed)
    }

    /// Arm a duplicate segment delivery: the shipper sends the *next*
    /// batch twice back-to-back; the standby must apply it exactly once
    /// (LSN-based replay idempotence). One-shot.
    pub fn set_repl_duplicate(&self, on: bool) {
        self.repl_duplicate.store(on, Ordering::Relaxed);
    }

    /// Consumes the duplicate-delivery arm (one-shot), returning
    /// whether it was set.
    pub fn take_repl_duplicate(&self) -> bool {
        self.repl_duplicate.swap(false, Ordering::Relaxed)
    }

    /// True when a duplicate delivery is armed (not yet consumed).
    pub fn repl_duplicate_armed(&self) -> bool {
        self.repl_duplicate.load(Ordering::Relaxed)
    }

    // -- subscription (pub/sub) faults --------------------------------

    /// Arm a notification-queue overflow pulse: the *next* time a
    /// session enqueues a push notification, the server treats its
    /// queue as full — the notification is dropped and a gap marker is
    /// recorded, exactly as a genuinely lagging subscriber would see.
    /// The write path is never blocked. One-shot: consumed by the
    /// enqueue that honours it.
    pub fn set_notify_overflow_pulse(&self, on: bool) {
        self.notify_overflow_pulse.store(on, Ordering::Relaxed);
    }

    /// Consumes the overflow-pulse arm (one-shot), returning whether it
    /// was set.
    pub fn take_notify_overflow_pulse(&self) -> bool {
        self.notify_overflow_pulse.swap(false, Ordering::Relaxed)
    }

    /// True when an overflow pulse is armed (not yet consumed).
    pub fn notify_overflow_pulse_armed(&self) -> bool {
        self.notify_overflow_pulse.load(Ordering::Relaxed)
    }

    /// Arm/disarm subscription-index corruption: the matcher distrusts
    /// its inverted envelope index and falls back to evaluating every
    /// registered subscription in full against each inserted row,
    /// recording a typed health note. Sound by construction — the index
    /// is only ever a necessary-condition filter, so the fallback
    /// delivers the identical notification set (just slower).
    /// Level-triggered: it models a corrupted structure, not one probe.
    pub fn set_sub_index_corrupt(&self, on: bool) {
        self.sub_index_corrupt.store(on, Ordering::Relaxed);
    }

    /// True when the subscription matcher should distrust its index.
    pub fn sub_index_corrupt_armed(&self) -> bool {
        self.sub_index_corrupt.load(Ordering::Relaxed)
    }

    /// Disarms every fault.
    pub fn reset(&self) {
        self.set_index_probe_failure(false);
        self.set_scorer_nan(false);
        self.set_scorer_panic(false);
        self.set_scorer_panic_on_morsel(None);
        self.set_scorer_panic_on_page(None);
        self.set_cascade_band_perturb(false);
        self.set_derive_timeout(false);
        self.set_derive_grid_too_large(false);
        self.set_wal_torn_write(false);
        self.set_wal_bit_flip(false);
        self.set_wal_short_read(false);
        self.set_wal_enospc(false);
        self.set_wal_fsync_fail(false);
        self.set_conn_drop_mid_response(false);
        self.set_conn_torn_frame(false);
        self.set_conn_slow_loris(false);
        self.set_repl_drop_stream(false);
        self.set_repl_stall(false);
        self.set_repl_duplicate(false);
        self.set_notify_overflow_pulse(false);
        self.set_sub_index_corrupt(false);
    }

    /// True when any fault is armed.
    pub fn any_armed(&self) -> bool {
        self.index_probe_failure_armed()
            || self.scorer_nan_armed()
            || self.scorer_panic_armed()
            || self.scorer_panic_morsel().is_some()
            || self.scorer_panic_page().is_some()
            || self.cascade_band_perturb_armed()
            || self.derive_timeout_armed()
            || self.derive_grid_too_large_armed()
            || self.wal_torn_write_armed()
            || self.wal_bit_flip_armed()
            || self.wal_short_read_armed()
            || self.wal_enospc_armed()
            || self.wal_fsync_fail_armed()
            || self.conn_drop_mid_response_armed()
            || self.conn_torn_frame_armed()
            || self.conn_slow_loris_armed()
            || self.repl_drop_stream_armed()
            || self.repl_stall_armed()
            || self.repl_duplicate_armed()
            || self.notify_overflow_pulse_armed()
            || self.sub_index_corrupt_armed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_off_and_reset_clears() {
        let f = FaultInjector::new();
        assert!(!f.any_armed());
        f.set_scorer_panic(true);
        f.set_derive_timeout(true);
        assert!(f.any_armed());
        assert!(f.scorer_panic_armed());
        assert!(f.derive_timeout_armed());
        assert!(!f.scorer_nan_armed());
        f.reset();
        assert!(!f.any_armed());
    }

    #[test]
    fn connection_faults_round_trip_and_one_shots_consume() {
        let f = FaultInjector::new();
        f.set_conn_drop_mid_response(true);
        f.set_conn_torn_frame(true);
        f.set_conn_slow_loris(true);
        assert!(f.any_armed());
        // One-shots consume; the level-triggered loris stays armed.
        assert!(f.take_conn_drop_mid_response());
        assert!(!f.take_conn_drop_mid_response());
        assert!(f.take_conn_torn_frame());
        assert!(!f.conn_torn_frame_armed());
        assert!(f.conn_slow_loris_armed());
        f.reset();
        assert!(!f.any_armed());
    }

    #[test]
    fn wal_disk_faults_round_trip() {
        let f = FaultInjector::new();
        f.set_wal_enospc(true);
        f.set_wal_fsync_fail(true);
        assert!(f.any_armed());
        // ENOSPC is level-triggered; fsync failure is one-shot.
        assert!(f.wal_enospc_armed());
        assert!(f.wal_enospc_armed());
        assert!(f.take_wal_fsync_fail());
        assert!(!f.take_wal_fsync_fail());
        f.reset();
        assert!(!f.any_armed());
    }

    #[test]
    fn replication_faults_round_trip_and_one_shots_consume() {
        let f = FaultInjector::new();
        f.set_repl_drop_stream(true);
        f.set_repl_stall(true);
        f.set_repl_duplicate(true);
        assert!(f.any_armed());
        // Drop and duplicate are one-shot; the stall is level-triggered.
        assert!(f.take_repl_drop_stream());
        assert!(!f.take_repl_drop_stream());
        assert!(f.take_repl_duplicate());
        assert!(!f.repl_duplicate_armed());
        assert!(f.repl_stall_armed());
        f.reset();
        assert!(!f.any_armed());
    }

    #[test]
    fn subscription_faults_round_trip_and_pulse_consumes() {
        let f = FaultInjector::new();
        f.set_notify_overflow_pulse(true);
        f.set_sub_index_corrupt(true);
        assert!(f.any_armed());
        // The overflow pulse is one-shot; index corruption is
        // level-triggered.
        assert!(f.take_notify_overflow_pulse());
        assert!(!f.take_notify_overflow_pulse());
        assert!(f.sub_index_corrupt_armed());
        assert!(f.sub_index_corrupt_armed());
        f.reset();
        assert!(!f.any_armed());
    }

    #[test]
    fn morsel_targeted_panic_round_trips() {
        let f = FaultInjector::new();
        assert_eq!(f.scorer_panic_morsel(), None);
        f.set_scorer_panic_on_morsel(Some(3));
        assert_eq!(f.scorer_panic_morsel(), Some(3));
        assert!(f.any_armed());
        f.set_scorer_panic_on_morsel(None);
        assert_eq!(f.scorer_panic_morsel(), None);
        f.set_scorer_panic_on_morsel(Some(0));
        f.reset();
        assert_eq!(f.scorer_panic_morsel(), None);
        assert!(!f.any_armed());
    }

    #[test]
    fn page_targeted_panic_round_trips() {
        let f = FaultInjector::new();
        assert_eq!(f.scorer_panic_page(), None);
        f.set_scorer_panic_on_page(Some(2));
        assert_eq!(f.scorer_panic_page(), Some(2));
        assert!(f.any_armed());
        f.set_scorer_panic_on_page(Some(0));
        assert_eq!(f.scorer_panic_page(), Some(0));
        f.reset();
        assert_eq!(f.scorer_panic_page(), None);
        assert!(!f.any_armed());
    }
}
