//! # mpq-types
//!
//! Shared substrate for the *mining predicates* workspace: attribute
//! domains, schemas, encoded datasets and discretizers.
//!
//! The ICDE 2002 paper ("Efficient Evaluation of Queries with Mining
//! Predicates") derives upper-envelope predicates over a **discretized
//! attribute space**: every attribute is either categorical (an unordered,
//! named member set) or a continuous attribute discretized into ordered
//! bins. This crate owns that vocabulary so that the model crate, the
//! envelope-derivation crate and the relational engine all agree on what a
//! "member" of a "dimension" is.
//!
//! Values flowing through the system are encoded as `u16` member indexes
//! (the paper's `m_{ld}` notation: member `l` of dimension `d`). Raw values
//! ([`Value`]) only appear at the edges: loading data, generating SQL text.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribute;
mod csv;
mod dataset;
mod discretize;
mod error;
mod memberset;
mod value;
pub mod wire;

pub use attribute::{AttrDomain, Attribute, Schema};
pub use csv::{load_csv, CsvData, CsvOptions};
pub use dataset::{Dataset, LabeledDataset};
pub use discretize::{discretize_column, DiscretizeMethod};
pub use error::TypesError;
pub use memberset::MemberSet;
pub use value::Value;

/// Index of an attribute (a *dimension* in the paper's terminology) within
/// a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The attribute index as a usize, for indexing into schema/row slices.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for AttrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "attr#{}", self.0)
    }
}

/// Index of a class label (or cluster id) among a model's `K` output
/// classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u16);

impl ClassId {
    /// The class index as a usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// A member index within one attribute's domain (the paper's `m_{ld}`).
pub type Member = u16;

/// An encoded row: one member index per attribute, in schema order.
pub type Row = [Member];
