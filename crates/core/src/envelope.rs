//! The upper-envelope type and derivation options.

use crate::region::Region;
use crate::score_model::BoundMode;
use mpq_types::{ClassId, Row, Schema};

/// Which split-point heuristic the top-down algorithm uses on
/// ambiguous regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitHeuristic {
    /// The paper's entropy criterion on the target class's probability
    /// mass (§3.2.2, "exactly as in the case of binary splits during
    /// decision tree construction"). The default — it also measures
    /// tighter than the rival-targeted variant on the evaluation
    /// datasets.
    #[default]
    Entropy,
    /// Rival-targeted: split to push one child toward MUST-LOSE against
    /// the rival closest to dominating; falls back to entropy when no
    /// rival has a finite bound. Kept as an ablation.
    RivalGap,
}

/// Options controlling envelope derivation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeriveOptions {
    /// Bounding scheme for the top-down algorithm.
    pub bound_mode: BoundMode,
    /// The paper's *threshold*: maximum number of region expansions
    /// (shrink+split steps) before remaining ambiguous regions are kept
    /// as-is. Bounds both derivation time and envelope complexity.
    pub max_expansions: usize,
    /// Cap on the number of disjuncts in the final envelope; beyond it,
    /// regions are greedily merged into coarser (still sound) regions —
    /// §4.2's "thresholding of the number of disjuncts".
    pub max_disjuncts: usize,
    /// Split-point heuristic.
    pub split_heuristic: SplitHeuristic,
    /// Record a step-by-step trace (Figure 2-style) in the result.
    pub trace: bool,
    /// Clustering envelopes: when false (default, the paper's §3.3
    /// reduction), clusters are scored *at the discretized inputs* (bin
    /// representatives) — exactly what applying the model to table rows
    /// does — giving a decidable point model. When true, per-bin score
    /// intervals make the envelope sound for every raw continuous point,
    /// at the price of much looser envelopes (unbounded end bins can
    /// never be excluded by per-class bounds).
    pub cluster_raw_sound: bool,
    /// Wall-clock budget for one envelope derivation. `None` (the
    /// default) means unbounded. When set, the fallible derivation
    /// entry points ([`crate::try_derive_topdown`],
    /// [`crate::EnvelopeProvider::try_envelope`]) return
    /// [`crate::CoreError::DeriveTimeout`] on breach; infallible entry
    /// points degrade to the trivial `TRUE` envelope, which is sound.
    pub time_budget: Option<std::time::Duration>,
}

impl Default for DeriveOptions {
    fn default() -> Self {
        DeriveOptions {
            bound_mode: BoundMode::PairwiseRatio,
            max_expansions: 2048,
            max_disjuncts: 512,
            split_heuristic: SplitHeuristic::default(),
            trace: false,
            cluster_raw_sound: false,
            time_budget: None,
        }
    }
}

/// Statistics recorded while deriving one envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeriveStats {
    /// Region expansions consumed.
    pub expansions: usize,
    /// Members removed by shrink steps.
    pub shrunk_members: usize,
    /// Region pairs merged in the final sweep.
    pub merges: usize,
    /// Ambiguous regions kept because the expansion budget ran out.
    pub thresholded_regions: usize,
}

/// One step of the derivation trace (mirrors the paper's Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceStep {
    /// A region was evaluated: its per-class score bounds (log domain)
    /// and resulting status.
    Evaluated {
        /// Textual region description.
        region: String,
        /// `(min, max)` score bound per class.
        bounds: Vec<(f64, f64)>,
        /// Status with respect to the target class.
        status: crate::score_model::RegionStatus,
    },
    /// Shrink removed `member` of dimension `dim`.
    Shrunk {
        /// Dimension shrunk.
        dim: usize,
        /// Member removed.
        member: u16,
    },
    /// A region was split along `dim`.
    Split {
        /// Dimension split.
        dim: usize,
        /// Textual descriptions of the two children.
        children: (String, String),
    },
}

/// An upper envelope for one class of one model: a disjunction of
/// regions such that `predict(x) = class ⇒ x ∈ some region`.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The class this envelope covers.
    pub class: ClassId,
    /// Disjuncts. Empty means the predicate is unsatisfiable: the model
    /// never predicts this class, and a query filtering on it needs no
    /// data access at all (the paper's "Constant Scan" case).
    pub regions: Vec<Region>,
    /// True when the envelope is known to contain *exactly* the class's
    /// cells (decision trees always; naive Bayes when the top-down
    /// algorithm terminated with only MUST-WIN leaves).
    pub exact: bool,
    /// Derivation statistics.
    pub stats: DeriveStats,
    /// Optional Figure 2-style trace.
    pub trace: Vec<TraceStep>,
}

impl Envelope {
    /// An envelope that matches nothing (class never predicted).
    pub fn never(class: ClassId) -> Envelope {
        Envelope { class, regions: Vec::new(), exact: true, stats: DeriveStats::default(), trace: Vec::new() }
    }

    /// The trivial `TRUE` envelope: one full-grid region. Sound for any
    /// model by definition (every row the class predicts is in the
    /// grid), with zero pruning power — the graceful-degradation
    /// fallback when derivation fails or exceeds its budget. The mining
    /// predicate itself stays as the residual filter, so query results
    /// remain exact.
    pub fn trivial(class: ClassId, schema: &Schema) -> Envelope {
        Envelope {
            class,
            regions: vec![Region::full(schema)],
            exact: false,
            stats: DeriveStats::default(),
            trace: Vec::new(),
        }
    }

    /// Whether the envelope admits the encoded row.
    #[inline]
    pub fn matches(&self, row: &Row) -> bool {
        self.regions.iter().any(|r| r.contains(row))
    }

    /// True if the envelope covers the entire grid (no pruning power).
    pub fn is_tautology(&self, schema: &Schema) -> bool {
        self.regions.iter().any(|r| r.is_full(schema))
    }

    /// Number of disjuncts.
    pub fn n_disjuncts(&self) -> usize {
        self.regions.len()
    }

    /// Number of grid cells covered, counting overlaps once is not
    /// attempted — derivation produces disjoint regions, so a plain sum
    /// is exact for those.
    pub fn covered_cells(&self) -> u64 {
        self.regions.iter().map(|r| r.cardinality()).sum()
    }

    /// Fraction of `rows` admitted — the envelope's *selectivity* over a
    /// dataset (Figure 7's y-axis).
    pub fn selectivity(&self, rows: impl Iterator<Item = impl AsRef<Row>>) -> f64 {
        let mut total = 0usize;
        let mut hit = 0usize;
        for row in rows {
            total += 1;
            if self.matches(row.as_ref()) {
                hit += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    }

    /// Greedily merges regions until at most `max` disjuncts remain.
    /// Merging unions two regions into their bounding box, which can only
    /// grow the envelope — sound, possibly looser. Each step merges the
    /// smallest region into the partner whose bounding box adds the
    /// fewest cells (O(R) per step, O(R²) total — derivation can keep
    /// thousands of regions).
    pub fn cap_disjuncts(&mut self, max: usize, schema: &Schema) {
        while self.regions.len() > max.max(1) {
            // Victim: the smallest region (cheapest to absorb).
            let vi = self
                .regions
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.cardinality())
                .map(|(i, _)| i)
                .expect("nonempty");
            let victim = self.regions.swap_remove(vi);
            // Partner: minimizes the bounding box's added volume.
            let mut best: Option<(usize, u64, Region)> = None;
            for (j, r) in self.regions.iter().enumerate() {
                let bb = bounding_box(schema, &victim, r);
                let added = bb
                    .cardinality()
                    .saturating_sub(victim.cardinality())
                    .saturating_sub(r.cardinality());
                if best.as_ref().is_none_or(|(_, a, _)| added < *a) {
                    best = Some((j, added, bb));
                }
                if added == 0 {
                    break; // cannot do better
                }
            }
            let Some((j, added, bb)) = best else {
                self.regions.push(victim);
                break;
            };
            if added > 0 {
                self.exact = false;
            }
            self.regions[j] = bb;
            // Drop regions swallowed by the new box.
            let keep = self.regions[j].clone();
            self.regions.retain(|r| r == &keep || !r.is_subset(&keep));
        }
    }
}

/// The smallest region containing both `a` and `b`.
fn bounding_box(schema: &Schema, a: &Region, b: &Region) -> Region {
    use crate::region::DimSet;
    let dims = (0..a.n_dims())
        .map(|d| match (a.dim(d), b.dim(d)) {
            (DimSet::Range { lo: al, hi: ah }, DimSet::Range { lo: bl, hi: bh }) => {
                DimSet::Range { lo: *al.min(bl), hi: *ah.max(bh) }
            }
            (DimSet::Set(x), DimSet::Set(y)) => {
                let mut s = x.clone();
                s.union_with(y);
                DimSet::Set(s)
            }
            // Mixed kinds cannot arise from schema-derived regions (the
            // kind follows the dimension's orderedness), but if a caller
            // hands us inconsistent regions, widening to the whole
            // dimension keeps the box sound instead of panicking.
            _ => {
                let attr = &schema.attrs()[d];
                DimSet::full(attr.domain.cardinality(), attr.domain.is_ordered())
            }
        })
        .collect();
    Region::from_dims(dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{range_region, DimSet};
    use mpq_types::{AttrDomain, Attribute, AttrId, MemberSet, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("o", AttrDomain::binned(vec![1.0, 2.0, 3.0]).unwrap()),
            Attribute::new("c", AttrDomain::categorical(["a", "b", "c"])),
        ])
        .unwrap()
    }

    #[test]
    fn never_matches_nothing() {
        let e = Envelope::never(ClassId(0));
        assert!(!e.matches(&[0, 0]));
        assert!(e.exact);
        assert_eq!(e.covered_cells(), 0);
        assert!(!e.is_tautology(&schema()));
    }

    #[test]
    fn matches_any_region() {
        let s = schema();
        let e = Envelope {
            class: ClassId(1),
            regions: vec![range_region(&s, AttrId(0), 0, 0), range_region(&s, AttrId(0), 3, 3)],
            exact: false,
            stats: DeriveStats::default(),
            trace: Vec::new(),
        };
        assert!(e.matches(&[0, 2]) && e.matches(&[3, 0]));
        assert!(!e.matches(&[1, 0]) && !e.matches(&[2, 2]));
        assert_eq!(e.n_disjuncts(), 2);
    }

    #[test]
    fn selectivity_counts_matching_rows() {
        let s = schema();
        let e = Envelope {
            class: ClassId(0),
            regions: vec![range_region(&s, AttrId(0), 0, 1)],
            exact: true,
            stats: DeriveStats::default(),
            trace: Vec::new(),
        };
        let rows: Vec<Vec<u16>> = vec![vec![0, 0], vec![1, 1], vec![2, 2], vec![3, 0]];
        assert_eq!(e.selectivity(rows.iter().map(|r| r.as_slice())), 0.5);
    }

    #[test]
    fn tautology_detection() {
        let s = schema();
        let e = Envelope {
            class: ClassId(0),
            regions: vec![Region::full(&s)],
            exact: false,
            stats: DeriveStats::default(),
            trace: Vec::new(),
        };
        assert!(e.is_tautology(&s));
    }

    #[test]
    fn cap_disjuncts_merges_to_bounding_boxes() {
        let s = schema();
        let mk = |m: u16| {
            Region::full(&s)
                .with_dim(0, DimSet::Range { lo: m, hi: m })
                .with_dim(1, DimSet::Set(MemberSet::of(3, [0])))
        };
        let mut e = Envelope {
            class: ClassId(0),
            regions: vec![mk(0), mk(1), mk(3)],
            exact: true,
            stats: DeriveStats::default(),
            trace: Vec::new(),
        };
        e.cap_disjuncts(2, &s);
        assert_eq!(e.n_disjuncts(), 2);
        // 0 and 1 are adjacent: merging them adds no cells, stays exact.
        assert!(e.exact);
        assert!(e.matches(&[0, 0]) && e.matches(&[1, 0]) && e.matches(&[3, 0]));
        e.cap_disjuncts(1, &s);
        assert_eq!(e.n_disjuncts(), 1);
        assert!(!e.exact, "the 0..3 box now includes member 2");
        assert!(e.matches(&[2, 0]));
    }
}
