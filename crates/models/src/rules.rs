//! Rule-based classifiers (paper §3.1).
//!
//! A rule set is a list of if-then rules: the body is a conjunction of
//! simple conditions on attributes, the head a class label. Rules of
//! different classes may overlap; conflicts are resolved by rule weight
//! (confidence), matching the "resolution procedure based on the weights"
//! the paper describes. Rows no rule covers fall to a default class.
//!
//! Training is a small sequential-covering (RIPPER-flavoured) learner:
//! per class, greedily grow conjunctions that maximize precision on the
//! not-yet-covered positives.

use crate::Classifier;
use mpq_types::{AttrId, ClassId, LabeledDataset, Member, MemberSet, Row, Schema, TypesError};

/// One condition of a rule body.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleCond {
    /// Ordered attribute lies in the member range `lo..=hi`.
    Range {
        /// Tested attribute.
        attr: AttrId,
        /// Lowest member matched.
        lo: Member,
        /// Highest member matched.
        hi: Member,
    },
    /// Categorical attribute is one of `members`.
    In {
        /// Tested attribute.
        attr: AttrId,
        /// Matching members.
        members: MemberSet,
    },
}

impl RuleCond {
    /// The attribute this condition tests.
    pub fn attr(&self) -> AttrId {
        match self {
            RuleCond::Range { attr, .. } | RuleCond::In { attr, .. } => *attr,
        }
    }

    /// Whether `row` satisfies the condition.
    #[inline]
    pub fn matches(&self, row: &Row) -> bool {
        match self {
            RuleCond::Range { attr, lo, hi } => {
                let v = row[attr.index()];
                *lo <= v && v <= *hi
            }
            RuleCond::In { attr, members } => members.contains(row[attr.index()]),
        }
    }
}

/// An if-then rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Conjunctive body; empty means "always fires".
    pub body: Vec<RuleCond>,
    /// Predicted class when the body holds.
    pub head: ClassId,
    /// Resolution weight (precision on training data).
    pub weight: f64,
}

impl Rule {
    /// Whether the rule fires on `row`.
    pub fn fires(&self, row: &Row) -> bool {
        self.body.iter().all(|c| c.matches(row))
    }
}

/// Training hyperparameters for [`RuleSet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleSetParams {
    /// Maximum number of conditions per rule body.
    pub max_conds: usize,
    /// Maximum rules learned per class.
    pub max_rules_per_class: usize,
    /// Minimum fraction of a class's remaining positives a rule must
    /// cover to be kept.
    pub min_coverage: f64,
}

impl Default for RuleSetParams {
    fn default() -> Self {
        RuleSetParams { max_conds: 3, max_rules_per_class: 8, min_coverage: 0.05 }
    }
}

/// A weighted, possibly-overlapping rule set with a default class.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSet {
    schema: Schema,
    class_names: Vec<String>,
    rules: Vec<Rule>,
    default_class: ClassId,
}

impl RuleSet {
    /// Learns a rule set by per-class sequential covering.
    pub fn train(data: &LabeledDataset, params: RuleSetParams) -> Result<Self, TypesError> {
        if data.is_empty() || data.n_classes() == 0 {
            return Err(TypesError::ArityMismatch { expected: 1, got: 0 });
        }
        let schema = data.data.schema().clone();
        let counts = data.class_counts();
        let default_class = ClassId(
            counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(i, _)| i as u16).unwrap_or(0),
        );
        let mut rules = Vec::new();
        for k in 0..data.n_classes() {
            let class = ClassId(k as u16);
            let mut uncovered: Vec<u32> = (0..data.len() as u32)
                .filter(|&i| data.labels[i as usize] == class)
                .collect();
            let class_total = uncovered.len();
            for _ in 0..params.max_rules_per_class {
                if uncovered.is_empty() {
                    break;
                }
                let Some(rule) = grow_rule(data, &schema, class, &uncovered, params) else {
                    break;
                };
                let covered_now =
                    uncovered.iter().filter(|&&i| rule.fires(data.data.row(i as usize))).count();
                if (covered_now as f64) < params.min_coverage * class_total as f64 {
                    break;
                }
                uncovered.retain(|&i| !rule.fires(data.data.row(i as usize)));
                rules.push(rule);
            }
        }
        // Stable order: strongest rules first makes the printed model and
        // envelope derivation deterministic.
        rules.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite").then(a.head.0.cmp(&b.head.0)));
        Ok(RuleSet { schema, class_names: data.class_names.clone(), rules, default_class })
    }

    /// Builds a rule set from explicit rules (PMML import, tests).
    pub fn from_parts(
        schema: Schema,
        class_names: Vec<String>,
        rules: Vec<Rule>,
        default_class: ClassId,
    ) -> Result<Self, TypesError> {
        if default_class.index() >= class_names.len() {
            return Err(TypesError::UnknownMember { member: format!("{default_class}") });
        }
        for r in &rules {
            if r.head.index() >= class_names.len() {
                return Err(TypesError::UnknownMember { member: format!("{}", r.head) });
            }
            for c in &r.body {
                if c.attr().index() >= schema.len() {
                    return Err(TypesError::UnknownMember { member: format!("{}", c.attr()) });
                }
            }
        }
        Ok(RuleSet { schema, class_names, rules, default_class })
    }

    /// The learned rules, strongest first.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The class predicted when no rule fires.
    pub fn default_class(&self) -> ClassId {
        self.default_class
    }
}

/// Greedily grows one rule for `class` against current uncovered
/// positives; the search scores candidate conditions by Laplace-corrected
/// precision over the whole dataset restricted to the current body.
fn grow_rule(
    data: &LabeledDataset,
    schema: &Schema,
    class: ClassId,
    uncovered: &[u32],
    params: RuleSetParams,
) -> Option<Rule> {
    // Live = rows matching the body so far. Positives already covered by
    // earlier rules are excluded (classic sequential covering), so each
    // new rule is pulled toward still-uncovered space instead of
    // re-deriving its predecessor.
    let uncovered_set: std::collections::HashSet<u32> = uncovered.iter().copied().collect();
    let mut live: Vec<u32> = (0..data.len() as u32)
        .filter(|i| data.labels[*i as usize] != class || uncovered_set.contains(i))
        .collect();
    let mut body: Vec<RuleCond> = Vec::new();

    for _ in 0..params.max_conds {
        let mut best: Option<(RuleCond, f64, usize)> = None; // (cond, precision, positives)
        for (attr, a) in schema.iter() {
            if body.iter().any(|c| c.attr() == attr) {
                continue;
            }
            let card = a.domain.cardinality() as usize;
            // Per-member (positive, total) counts among live rows.
            let mut pos = vec![0usize; card];
            let mut tot = vec![0usize; card];
            for &i in &live {
                let m = data.data.row(i as usize)[attr.index()] as usize;
                tot[m] += 1;
                if data.labels[i as usize] == class {
                    pos[m] += 1;
                }
            }
            let candidates: Vec<RuleCond> = if a.domain.is_ordered() {
                // Every contiguous sub-range (domains are small, so the
                // O(card²) candidate set is cheap and lets a single
                // condition express interior bands).
                let mut cands = Vec::new();
                for lo in 0..card {
                    for hi in lo..card {
                        if lo == 0 && hi == card - 1 {
                            continue; // tautology
                        }
                        cands.push(RuleCond::Range { attr, lo: lo as Member, hi: hi as Member });
                    }
                }
                cands
            } else {
                // Single members, and the best-k member subsets by purity.
                let mut order: Vec<usize> = (0..card).collect();
                let purity = |m: usize| if tot[m] == 0 { 0.0 } else { pos[m] as f64 / tot[m] as f64 };
                order.sort_by(|&x, &y| purity(y).partial_cmp(&purity(x)).expect("finite"));
                let mut cands = Vec::new();
                let mut acc = MemberSet::empty(card as u16);
                for &m in order.iter().take(card.saturating_sub(1)) {
                    acc.insert(m as Member);
                    cands.push(RuleCond::In { attr, members: acc.clone() });
                }
                cands
            };
            for cond in candidates {
                let (mut p, mut t) = (0usize, 0usize);
                for &i in &live {
                    if cond.matches(data.data.row(i as usize)) {
                        t += 1;
                        if data.labels[i as usize] == class {
                            p += 1;
                        }
                    }
                }
                if p == 0 {
                    continue;
                }
                let k = data.n_classes() as f64;
                let precision = (p as f64 + 1.0) / (t as f64 + k);
                // Ties break toward coverage: a condition matching twice
                // the positives at equal precision makes the better rule.
                if best
                    .as_ref()
                    .is_none_or(|(_, bp, bn)| precision > *bp || (precision == *bp && p > *bn))
                {
                    best = Some((cond, precision, p));
                }
            }
        }
        let Some((cond, _, _)) = best else { break };
        live.retain(|&i| cond.matches(data.data.row(i as usize)));
        body.push(cond);
        // Stop early once the body is pure on live rows.
        if live.iter().all(|&i| data.labels[i as usize] == class) {
            break;
        }
    }
    if body.is_empty() {
        return None;
    }
    let covered_pos = live.iter().filter(|&&i| uncovered_set.contains(&i)).count();
    if covered_pos == 0 {
        return None;
    }
    let pos = live.iter().filter(|&&i| data.labels[i as usize] == class).count();
    let weight = pos as f64 / live.len().max(1) as f64;
    Some(Rule { body, head: class, weight })
}

impl Classifier for RuleSet {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    fn class_name(&self, c: ClassId) -> &str {
        &self.class_names[c.index()]
    }

    fn predict(&self, row: &Row) -> ClassId {
        // Rules are sorted by weight descending; the first firing rule is
        // the heaviest, implementing weight-based conflict resolution.
        self.rules
            .iter()
            .find(|r| r.fires(row))
            .map(|r| r.head)
            .unwrap_or(self.default_class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_types::{AttrDomain, Attribute, Dataset};

    fn band_data() -> LabeledDataset {
        // Class 1 iff x in middle band and flag set; else class 0.
        let schema = Schema::new(vec![
            Attribute::new("x", AttrDomain::binned(vec![10.0, 20.0, 30.0]).unwrap()),
            Attribute::new("flag", AttrDomain::categorical(["n", "y"])),
        ])
        .unwrap();
        let mut ds = Dataset::new(schema);
        let mut labels = Vec::new();
        for m in 0..4u16 {
            for f in 0..2u16 {
                for _ in 0..10 {
                    ds.push_encoded(&[m, f]).unwrap();
                    labels.push(ClassId(u16::from((1..=2).contains(&m) && f == 1)));
                }
            }
        }
        LabeledDataset::new(ds, labels, vec!["out".into(), "in".into()]).unwrap()
    }

    #[test]
    fn learns_band_concept() {
        let data = band_data();
        let rs = RuleSet::train(&data, RuleSetParams::default()).unwrap();
        let acc = crate::accuracy(&rs, &data);
        assert!(acc >= 0.95, "accuracy {acc}");
        assert!(!rs.rules().is_empty());
    }

    #[test]
    fn rule_conditions_match_semantics() {
        let range = RuleCond::Range { attr: AttrId(0), lo: 1, hi: 2 };
        assert!(!range.matches(&[0, 0]));
        assert!(range.matches(&[1, 0]) && range.matches(&[2, 0]));
        assert!(!range.matches(&[3, 0]));
        let inset = RuleCond::In { attr: AttrId(1), members: MemberSet::of(2, [1]) };
        assert!(inset.matches(&[0, 1]));
        assert!(!inset.matches(&[0, 0]));
    }

    #[test]
    fn default_class_catches_uncovered_rows() {
        let schema = Schema::new(vec![Attribute::new("x", AttrDomain::categorical(["a", "b", "c"]))]).unwrap();
        let rules = vec![Rule {
            body: vec![RuleCond::In { attr: AttrId(0), members: MemberSet::of(3, [0]) }],
            head: ClassId(1),
            weight: 1.0,
        }];
        let rs = RuleSet::from_parts(schema, vec!["d".into(), "p".into()], rules, ClassId(0)).unwrap();
        assert_eq!(rs.predict(&[0]), ClassId(1));
        assert_eq!(rs.predict(&[1]), ClassId(0));
        assert_eq!(rs.predict(&[2]), ClassId(0));
    }

    #[test]
    fn weight_resolution_prefers_heavier_rule() {
        let schema = Schema::new(vec![Attribute::new("x", AttrDomain::categorical(["a", "b"]))]).unwrap();
        let mk = |head, weight| Rule {
            body: vec![RuleCond::In { attr: AttrId(0), members: MemberSet::of(2, [0]) }],
            head: ClassId(head),
            weight,
        };
        // Intentionally inserted weaker-first; from_parts keeps order, so
        // sort happens only in train — emulate by listing heavier first.
        let rs = RuleSet::from_parts(
            Schema::new(vec![Attribute::new("x", AttrDomain::categorical(["a", "b"]))]).unwrap(),
            vec!["c0".into(), "c1".into()],
            vec![mk(1, 0.9), mk(0, 0.4)],
            ClassId(0),
        )
        .unwrap();
        let _ = schema;
        assert_eq!(rs.predict(&[0]), ClassId(1), "heavier rule should win the overlap");
    }

    #[test]
    fn from_parts_validates() {
        let schema = Schema::new(vec![Attribute::new("x", AttrDomain::categorical(["a"]))]).unwrap();
        assert!(RuleSet::from_parts(schema.clone(), vec!["c".into()], vec![], ClassId(3)).is_err());
        let bad_rule = Rule {
            body: vec![RuleCond::Range { attr: AttrId(9), lo: 0, hi: 0 }],
            head: ClassId(0),
            weight: 1.0,
        };
        assert!(RuleSet::from_parts(schema, vec!["c".into()], vec![bad_rule], ClassId(0)).is_err());
    }
}
