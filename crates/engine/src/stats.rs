//! Column statistics for selectivity estimation.
//!
//! Domains are discretized and small, so the engine keeps an *exact*
//! per-member frequency histogram per column — the best case of the
//! equi-depth histograms a commercial optimizer would maintain. AND/OR
//! selectivities combine under the usual independence assumption.

use crate::table::Table;
use crate::vectorized::FeedbackObservation;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// Exact per-member histogram of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// `counts[m]` = rows with member `m`.
    counts: Vec<u64>,
    /// `page_counts[m]` = heap pages holding at least one row with
    /// member `m` — the optimizer's view of the table's zone maps, used
    /// to estimate how many pages a zone-pruned scan must read.
    page_counts: Vec<u64>,
    total: u64,
}

impl ColumnStats {
    /// Builds the histogram of column `d` of `table`.
    pub fn build(table: &Table, d: usize) -> ColumnStats {
        Self::build_range(table, d, 0..table.n_rows())
    }

    /// Builds the histogram of column `d` over the row range `rows` —
    /// the per-morsel unit of the parallel statistics build. `rows` must
    /// start on a page boundary (morsels do), so every page is counted
    /// by exactly one range and page counts merge exactly.
    fn build_range(table: &Table, d: usize, rows: std::ops::Range<usize>) -> ColumnStats {
        let card = table.schema().attrs()[d].domain.cardinality() as usize;
        let mut counts = vec![0u64; card];
        let mut page_counts = vec![0u64; card];
        let total = rows.len() as u64;
        for &m in &table.column(d)[rows.clone()] {
            counts[m as usize] += 1;
        }
        let rpp = table.rows_per_page();
        debug_assert!(rows.start.is_multiple_of(rpp), "stats ranges must be page-aligned");
        if !rows.is_empty() {
            for page in (rows.start / rpp)..=((rows.end - 1) / rpp) {
                for m in table.page_zones(page)[d].iter() {
                    page_counts[m as usize] += 1;
                }
            }
        }
        ColumnStats { counts, page_counts, total }
    }

    /// Folds another partial histogram of the same column into this
    /// one. Exact counts merge exactly, so any partition of the heap
    /// rebuilds the serial histogram bit for bit.
    fn merge(&mut self, other: &ColumnStats) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (a, b) in self.page_counts.iter_mut().zip(&other.page_counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Total rows sampled.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Rows holding member `m`.
    pub fn count(&self, m: u16) -> u64 {
        self.counts.get(m as usize).copied().unwrap_or(0)
    }

    /// Selectivity of `member = m`.
    pub fn eq_selectivity(&self, m: u16) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(m) as f64 / self.total as f64
        }
    }

    /// Selectivity of `lo <= member <= hi`.
    pub fn range_selectivity(&self, lo: u16, hi: u16) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = (lo..=hi.min(self.counts.len().saturating_sub(1) as u16))
            .map(|m| self.count(m))
            .sum();
        sum as f64 / self.total as f64
    }

    /// Selectivity of `member ∈ set`.
    pub fn set_selectivity(&self, members: impl Iterator<Item = u16>) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = members.map(|m| self.count(m)).sum();
        sum as f64 / self.total as f64
    }

    /// Heap pages holding at least one row with member `m`.
    pub fn pages_with(&self, m: u16) -> u64 {
        self.page_counts.get(m as usize).copied().unwrap_or(0)
    }

    /// Number of distinct members actually present.
    pub fn distinct(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }
}

/// Most recent clause fingerprints the feedback store retains. Each
/// entry is three u64s, so the bound is about memory hygiene on
/// long-lived servers with churning ad-hoc queries, not size: FIFO
/// eviction by first-recorded order, newest observation wins per key.
const FEEDBACK_CAPACITY: usize = 256;

#[derive(Debug, Clone, Default, PartialEq)]
struct FeedbackInner {
    /// fingerprint → (rows_in, rows_out) from the latest calibration.
    map: HashMap<u64, (u64, u64)>,
    /// Insertion order, for FIFO eviction at capacity.
    order: VecDeque<u64>,
}

/// Bounded per-table store of measured clause selectivities, fed by
/// the adaptive executor's calibration counters and consulted by the
/// optimizer when re-costing repeated queries. Interior-mutable so
/// executions can record under the catalog *read* lock; rebuilt empty
/// whenever the table's statistics are rebuilt (a data change
/// invalidates old measurements along with the histograms).
pub struct FeedbackStore {
    inner: Mutex<FeedbackInner>,
}

impl FeedbackStore {
    fn lock(&self) -> std::sync::MutexGuard<'_, FeedbackInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one observation (latest wins). Returns whether the
    /// stored value for this fingerprint actually changed — the signal
    /// the engine uses to re-cost and maybe invalidate cached plans.
    pub fn record(&self, obs: &FeedbackObservation) -> bool {
        if obs.rows_in == 0 {
            return false;
        }
        let value = (obs.rows_in, obs.rows_out);
        let mut inner = self.lock();
        match inner.map.get_mut(&obs.fingerprint) {
            Some(slot) => {
                let changed = *slot != value;
                *slot = value;
                changed
            }
            None => {
                if inner.order.len() >= FEEDBACK_CAPACITY {
                    if let Some(evicted) = inner.order.pop_front() {
                        inner.map.remove(&evicted);
                    }
                }
                inner.order.push_back(obs.fingerprint);
                inner.map.insert(obs.fingerprint, value);
                true
            }
        }
    }

    /// Records a batch; true if any stored value changed. Every
    /// observation is recorded — no short-circuit on the first change.
    pub fn record_all(&self, obs: &[FeedbackObservation]) -> bool {
        let mut changed = false;
        for o in obs {
            changed |= self.record(o);
        }
        changed
    }

    /// The measured selectivity for a clause fingerprint, if observed.
    pub fn selectivity(&self, fingerprint: u64) -> Option<f64> {
        let inner = self.lock();
        inner.map.get(&fingerprint).map(|&(rows_in, rows_out)| {
            debug_assert!(rows_in > 0, "zero-input observations are never recorded");
            rows_out as f64 / rows_in as f64
        })
    }

    /// Number of clause fingerprints currently retained.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for FeedbackStore {
    fn default() -> Self {
        FeedbackStore { inner: Mutex::new(FeedbackInner::default()) }
    }
}

impl std::fmt::Debug for FeedbackStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.lock().fmt(f)
    }
}

impl Clone for FeedbackStore {
    fn clone(&self) -> Self {
        FeedbackStore { inner: Mutex::new(self.lock().clone()) }
    }
}

impl PartialEq for FeedbackStore {
    fn eq(&self, other: &Self) -> bool {
        if std::ptr::eq(self, other) {
            return true;
        }
        // Sequential snapshots (never two locks held at once), so
        // concurrent comparisons cannot deadlock on lock order.
        let a = self.lock().clone();
        let b = other.lock().clone();
        a == b
    }
}

/// Statistics for every column of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    columns: Vec<ColumnStats>,
    feedback: FeedbackStore,
}

/// Below this row count a parallel build costs more in thread setup
/// than it saves in counting.
const PARALLEL_BUILD_MIN_ROWS: usize = 1 << 16;

/// Worker count the catalog uses when (re)building statistics: one per
/// available core, like the executor's default degree of parallelism.
pub(crate) fn default_stats_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).clamp(1, 256)
}

impl TableStats {
    /// Builds statistics for all columns.
    pub fn build(table: &Table) -> TableStats {
        Self::build_parallel(table, 1)
    }

    /// Builds statistics with up to `workers` threads, partitioning
    /// the heap on the same page-aligned morsels the parallel executor
    /// scans. Per-morsel histograms merge exactly, so the result is
    /// identical to the serial build for every worker count — the same
    /// differential guarantee the executor gives (and small tables
    /// skip the pool entirely).
    pub fn build_parallel(table: &Table, workers: usize) -> TableStats {
        let workers = workers.clamp(1, 256);
        if workers == 1 || table.n_rows() < PARALLEL_BUILD_MIN_ROWS {
            let columns =
                (0..table.schema().len()).map(|d| ColumnStats::build(table, d)).collect();
            return TableStats { columns, feedback: FeedbackStore::default() };
        }
        let morsels = table.morsels(workers);
        let partials: Vec<Vec<ColumnStats>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let morsels = &morsels;
                    // Static stride assignment: counting work is
                    // uniform per row, so no dispatcher is needed.
                    s.spawn(move || {
                        let mut cols: Vec<Option<ColumnStats>> =
                            vec![None; table.schema().len()];
                        for r in morsels.iter().skip(w).step_by(workers) {
                            let rows = r.start as usize..r.end as usize;
                            for (d, slot) in cols.iter_mut().enumerate() {
                                let part = ColumnStats::build_range(table, d, rows.clone());
                                match slot {
                                    Some(acc) => acc.merge(&part),
                                    None => *slot = Some(part),
                                }
                            }
                        }
                        cols.into_iter().flatten().collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("stats worker panicked")).collect()
        });
        let mut columns: Vec<ColumnStats> = (0..table.schema().len())
            .map(|d| {
                let card = table.schema().attrs()[d].domain.cardinality() as usize;
                ColumnStats { counts: vec![0; card], page_counts: vec![0; card], total: 0 }
            })
            .collect();
        for worker_cols in &partials {
            if worker_cols.is_empty() {
                continue; // worker drew no morsels
            }
            for (acc, part) in columns.iter_mut().zip(worker_cols) {
                acc.merge(part);
            }
        }
        TableStats { columns, feedback: FeedbackStore::default() }
    }

    /// Stats of column `d`.
    pub fn column(&self, d: usize) -> &ColumnStats {
        &self.columns[d]
    }

    /// The table's measured-selectivity feedback store.
    pub fn feedback(&self) -> &FeedbackStore {
        &self.feedback
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_types::{AttrDomain, Attribute, Dataset, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![Attribute::new(
            "c",
            AttrDomain::categorical(["a", "b", "c", "d"]),
        )])
        .unwrap();
        // 40 a, 30 b, 20 c, 10 d.
        let rows = std::iter::repeat_n(vec![0u16], 40)
            .chain(std::iter::repeat_n(vec![1u16], 30))
            .chain(std::iter::repeat_n(vec![2u16], 20))
            .chain(std::iter::repeat_n(vec![3u16], 10));
        Table::from_dataset("t", &Dataset::from_rows(schema, rows).unwrap())
    }

    #[test]
    fn histogram_is_exact() {
        let s = TableStats::build(&table());
        let c = s.column(0);
        assert_eq!(c.total(), 100);
        assert_eq!(c.count(0), 40);
        assert_eq!(c.eq_selectivity(3), 0.1);
        assert_eq!(c.distinct(), 4);
    }

    #[test]
    fn range_and_set_selectivity() {
        let s = TableStats::build(&table());
        let c = s.column(0);
        assert_eq!(c.range_selectivity(1, 2), 0.5);
        assert_eq!(c.range_selectivity(0, 3), 1.0);
        assert_eq!(c.range_selectivity(2, 9), 0.3, "clamped to domain");
        assert_eq!(c.set_selectivity([0u16, 3].into_iter()), 0.5);
    }

    #[test]
    fn parallel_build_matches_serial_exactly() {
        // Differential oracle for the statistics build: the merged
        // per-morsel histograms must equal the serial ones bit for bit,
        // above and below the parallel threshold.
        let small = table();
        let schema = Schema::new(vec![
            Attribute::new("c", AttrDomain::categorical(["a", "b", "c", "d"])),
            Attribute::new("e", AttrDomain::categorical(["u", "v"])),
        ])
        .unwrap();
        let rows = (0..super::PARALLEL_BUILD_MIN_ROWS + 999)
            .map(|i| vec![(i % 4) as u16, (i % 7 == 0) as u16]);
        let big = Table::from_dataset("big", &Dataset::from_rows(schema, rows).unwrap());
        for t in [&small, &big] {
            let serial = TableStats::build_parallel(t, 1);
            for workers in [2, 4, 8] {
                assert_eq!(
                    TableStats::build_parallel(t, workers),
                    serial,
                    "stats diverged at {workers} workers on {} rows",
                    t.n_rows()
                );
            }
        }
    }

    #[test]
    fn page_counts_track_clustering() {
        let schema = Schema::new(vec![Attribute::new(
            "c",
            AttrDomain::categorical(["a", "b", "c", "d"]),
        )])
        .unwrap();
        let rows = std::iter::repeat_n(vec![0u16], 40)
            .chain(std::iter::repeat_n(vec![1u16], 30))
            .chain(std::iter::repeat_n(vec![2u16], 20))
            .chain(std::iter::repeat_n(vec![3u16], 10));
        // 256-byte pages → 8 rows per page → 13 pages over 100 rows.
        let t = Table::with_page_bytes("t", &Dataset::from_rows(schema, rows).unwrap(), 256);
        assert_eq!(t.rows_per_page(), 8);
        let s = TableStats::build(&t);
        let c = s.column(0);
        assert_eq!(c.pages_with(0), 5, "rows 0..40 fill pages 0..5");
        assert_eq!(c.pages_with(1), 4, "rows 40..70 touch pages 5..9");
        assert_eq!(c.pages_with(2), 4, "rows 70..90 touch pages 8..12");
        assert_eq!(c.pages_with(3), 2, "rows 90..100 touch pages 11..13");
        assert_eq!(c.pages_with(9), 0, "out-of-domain member is nowhere");
    }

    #[test]
    fn feedback_store_is_bounded_latest_wins() {
        let store = FeedbackStore::default();
        let obs = |fp, rows_in, rows_out| FeedbackObservation { fingerprint: fp, rows_in, rows_out };
        assert!(store.record(&obs(7, 100, 25)));
        assert_eq!(store.selectivity(7), Some(0.25));
        // Re-recording the same numbers is not a change.
        assert!(!store.record(&obs(7, 100, 25)));
        // Latest observation wins and reports a change.
        assert!(store.record(&obs(7, 100, 50)));
        assert_eq!(store.selectivity(7), Some(0.5));
        // Zero-input observations are ignored.
        assert!(!store.record(&obs(8, 0, 0)));
        assert_eq!(store.selectivity(8), None);
        // FIFO eviction at capacity: the first key goes first.
        for fp in 100..100 + super::FEEDBACK_CAPACITY as u64 {
            store.record(&obs(fp, 10, 1));
        }
        assert_eq!(store.len(), super::FEEDBACK_CAPACITY);
        assert_eq!(store.selectivity(7), None, "oldest entry evicted");
        assert_eq!(store.selectivity(100), Some(0.1));
        // Clones snapshot; PartialEq compares contents.
        let snap = store.clone();
        assert_eq!(snap, store);
        store.record(&obs(9999, 4, 4));
        assert_ne!(snap, store);
    }

    #[test]
    fn empty_table_yields_zero_selectivity() {
        let schema = Schema::new(vec![Attribute::new("c", AttrDomain::categorical(["a"]))]).unwrap();
        let t = Table::from_dataset("t", &Dataset::new(schema));
        let s = TableStats::build(&t);
        assert_eq!(s.column(0).eq_selectivity(0), 0.0);
        assert_eq!(s.column(0).range_selectivity(0, 0), 0.0);
    }
}
