//! Reproduces **Figure 7**: tightness of approximation — a scatter of
//! each class's original selectivity against its upper envelope's
//! selectivity (log-log), for naive Bayes and clustering (decision-tree
//! envelopes are exact, §3.1, so they are excluded as in the paper).

use mpq_bench::report::{kind_name, tightness_points};
use mpq_bench::{run_full_sweep, Scale};

fn main() {
    let scale = Scale::from_args(0.02);
    eprintln!("running full sweep at scale {} ...", scale.0);
    let (rows, _) = run_full_sweep(scale, 7);
    let points = tightness_points(&rows);

    println!("== Figure 7: tightness of approximation (NB + clustering) ==\n");
    println!(
        "{:<14} {:<13} {:>6} {:>12} {:>12} {:>8} {:>7}",
        "dataset", "model", "class", "orig sel", "envelope sel", "ratio", "exact"
    );
    let mut exact_or_tight = 0usize;
    let mut attractive = 0usize;
    for p in &points {
        let ratio = if p.orig_selectivity > 0.0 {
            p.env_selectivity / p.orig_selectivity
        } else if p.env_selectivity == 0.0 {
            1.0
        } else {
            f64::INFINITY
        };
        if ratio <= 2.0 {
            exact_or_tight += 1;
        }
        // "selectivity small enough that use of indexes is attractive".
        if p.env_selectivity <= 0.1 {
            attractive += 1;
        }
        println!(
            "{:<14} {:<13} {:>6} {:>12.6} {:>12.6} {:>8.2} {:>7}",
            p.dataset,
            kind_name(p.kind),
            p.class,
            p.orig_selectivity,
            p.env_selectivity,
            ratio,
            p.exact
        );
    }
    println!(
        "\n{} / {} points are tight (envelope <= 2x original);\n\
         {} / {} have envelope selectivity <= 10% (index-attractive).",
        exact_or_tight,
        points.len(),
        attractive,
        points.len()
    );
    println!(
        "Paper's reading: most envelopes are either close to the original\n\
         selectivity or small enough for indexes; the loose ones are classes\n\
         whose original selectivity was already too large to index."
    );
}
