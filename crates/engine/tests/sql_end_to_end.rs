//! SQL-surface integration: a corpus of queries is parsed, planned and
//! executed, and each result is verified against brute-force filtering.

use mpq_core::DeriveOptions;
use mpq_engine::{Catalog, Engine, Table};
use mpq_models::NaiveBayes;
use mpq_types::{AttrDomain, Attribute, ClassId, Dataset, LabeledDataset, Schema};
use std::sync::Arc;

fn build_engine() -> Engine {
    let schema = Schema::new(vec![
        Attribute::new("age", AttrDomain::binned(vec![30.0, 50.0, 70.0]).unwrap()),
        Attribute::new("city", AttrDomain::categorical(["oslo", "lima", "pune"])),
        Attribute::new("spend", AttrDomain::binned(vec![100.0, 500.0]).unwrap()),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema.clone());
    let mut labels = Vec::new();
    for i in 0..5000u32 {
        let age = (i % 4) as u16;
        let city = (i % 3) as u16;
        let spend = ((i / 3) % 3) as u16;
        ds.push_encoded(&[age, city, spend]).unwrap();
        // "premium" iff high spend and not the youngest bracket.
        labels.push(ClassId(u16::from(spend == 2 && age >= 1)));
    }
    let train =
        LabeledDataset::new(ds.clone(), labels, vec!["basic".into(), "premium".into()]).unwrap();
    let nb = NaiveBayes::train(&train).unwrap();
    let mut cat = Catalog::new();
    cat.add_table(Table::from_dataset("customers", &ds)).unwrap();
    cat.add_model("tier", Arc::new(nb), DeriveOptions::default()).unwrap();
    Engine::new(cat)
}

/// Brute-force evaluation of the same SQL semantics.
fn brute_force(engine: &Engine, pred: impl Fn(&[u16], &dyn Fn(&[u16]) -> ClassId) -> bool) -> Vec<u32> {
    let catalog = engine.catalog();
    let table = &catalog.table(0).table;
    let model = &catalog.model(0).model;
    let predict = |row: &[u16]| model.predict(row);
    (0..table.n_rows() as u32)
        .filter(|&r| pred(&table.row(r), &predict))
        .collect()
}

#[test]
fn column_only_queries_match_brute_force() {
    let e = build_engine();
    #[allow(clippy::type_complexity)]
    let cases: Vec<(&str, Box<dyn Fn(&[u16], &dyn Fn(&[u16]) -> ClassId) -> bool>)> = vec![
        ("SELECT * FROM customers WHERE age <= 30", Box::new(|r, _| r[0] == 0)),
        ("SELECT * FROM customers WHERE age > 50", Box::new(|r, _| r[0] >= 2)),
        ("SELECT * FROM customers WHERE city = 'lima'", Box::new(|r, _| r[1] == 1)),
        (
            "SELECT * FROM customers WHERE city IN ('oslo', 'pune') AND spend > 500",
            Box::new(|r, _| (r[1] == 0 || r[1] == 2) && r[2] == 2),
        ),
        (
            "SELECT * FROM customers WHERE NOT (age BETWEEN 30 AND 50) OR spend <= 100",
            Box::new(|r, _| r[0] != 1 && r[0] != 0 || r[2] == 0),
        ),
        (
            "SELECT * FROM customers WHERE age <> 30 AND city <> 'pune'",
            Box::new(|r, _| r[0] != 0 && r[1] != 2),
        ),
    ];
    for (sql, pred) in cases {
        let out = e.query(sql).expect(sql);
        assert_eq!(out.rows, brute_force(&e, pred), "mismatch for {sql}");
    }
}

#[test]
fn mining_queries_match_brute_force() {
    let e = build_engine();
    let out = e.query("SELECT * FROM customers WHERE PREDICT(tier) = 'premium'").unwrap();
    let expected = brute_force(&e, |r, predict| predict(r) == ClassId(1));
    assert_eq!(out.rows, expected);

    let out = e
        .query("SELECT * FROM customers WHERE PREDICT(tier) = 'premium' AND city = 'oslo'")
        .unwrap();
    let expected = brute_force(&e, |r, predict| predict(r) == ClassId(1) && r[1] == 0);
    assert_eq!(out.rows, expected);

    let out = e
        .query("SELECT COUNT(*) FROM customers WHERE PREDICT(tier) IN ('basic') OR spend > 500")
        .unwrap();
    let expected = brute_force(&e, |r, predict| predict(r) == ClassId(0) || r[2] == 2);
    assert_eq!(out.metrics.output_rows as usize, expected.len());
}

#[test]
fn between_boundary_semantics() {
    // BETWEEN's low end snaps inclusively into the bin containing the
    // constant; exact cut points keep envelope round-trips lossless.
    let e = build_engine();
    let a = e.query("SELECT COUNT(*) FROM customers WHERE age BETWEEN 30 AND 70").unwrap();
    let b = e.query("SELECT COUNT(*) FROM customers WHERE age <= 70").unwrap();
    // (member 0 contains values <= 30, so the inclusive-low snap makes
    // these identical in member space.)
    assert_eq!(a.metrics.output_rows, b.metrics.output_rows);
}

#[test]
fn residual_orders_model_invocations_last() {
    // Predicate migration: the mining predicate must be evaluated only
    // on rows surviving the cheap predicates, regardless of the order
    // the query wrote them in.
    let e = build_engine();
    let a = e
        .query("SELECT * FROM customers WHERE PREDICT(tier) = 'premium' AND city = 'oslo'")
        .unwrap();
    let b = e
        .query("SELECT * FROM customers WHERE city = 'oslo' AND PREDICT(tier) = 'premium'")
        .unwrap();
    assert_eq!(a.rows, b.rows);
    // city = 'oslo' holds on 1/3 of rows (plus envelope pruning): the
    // model must be invoked on at most that many.
    let third = e.catalog().table(0).table.n_rows() as u64 / 3;
    assert!(
        a.metrics.model_invocations <= third && b.metrics.model_invocations <= third,
        "invocations {} / {} exceed the cheap-predicate bound {third}",
        a.metrics.model_invocations,
        b.metrics.model_invocations
    );
}

#[test]
fn create_mining_model_via_sql() {
    // §2.2's flow, end to end in SQL: the label column lives in the
    // table; CREATE MINING MODEL trains on it; the model is immediately
    // queryable with PREDICT (the label column is ignored at prediction).
    let schema = Schema::new(vec![
        Attribute::new("x", AttrDomain::binned(vec![5.0]).unwrap()),
        Attribute::new("f", AttrDomain::categorical(["a", "b"])),
        Attribute::new("outcome", AttrDomain::categorical(["lo", "hi"])),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    for i in 0..400u16 {
        let x = i % 2;
        let f = (i / 2) % 2;
        let y = u16::from(x == 1 && f == 1);
        ds.push_encoded(&[x, f, y]).unwrap();
    }
    let mut cat = Catalog::new();
    cat.add_table(Table::from_dataset("t", &ds)).unwrap();
    let e = Engine::new(cat);

    let out = e
        .execute_sql("CREATE MINING MODEL risk ON t PREDICT outcome USING decision_tree")
        .unwrap();
    let mpq_engine::StatementOutcome::ModelCreated { name, n_classes, .. } = out else {
        panic!("expected ModelCreated")
    };
    assert_eq!(name, "risk");
    assert_eq!(n_classes, 2);

    // The model predicts; the envelope prunes; results are exact (the
    // concept is deterministic, so PREDICT agrees with the stored label).
    let q = e.query("SELECT * FROM t WHERE PREDICT(risk) = 'hi'").unwrap();
    let stored = e.query("SELECT * FROM t WHERE outcome = 'hi'").unwrap();
    assert_eq!(q.rows, stored.rows);

    // Clustering DDL: k-prototypes handles the mixed schema.
    let out = e.execute_sql("CREATE MINING MODEL seg ON t WITH 3 CLUSTERS USING kmeans").unwrap();
    let mpq_engine::StatementOutcome::ModelCreated { n_classes, .. } = out else {
        panic!("expected ModelCreated")
    };
    assert_eq!(n_classes, 3);
    let q = e.query("SELECT COUNT(*) FROM t WHERE PREDICT(seg) = 'cluster_0'").unwrap();
    assert!(q.metrics.output_rows > 0);
}

#[test]
fn ddl_parse_errors_are_specific() {
    let e = build_engine();
    assert!(e.execute_sql("CREATE MINING MODEL m ON ghost PREDICT x USING tree").is_err());
    assert!(e
        .execute_sql("CREATE MINING MODEL m ON customers PREDICT ghost USING tree")
        .is_err());
    assert!(e
        .execute_sql("CREATE MINING MODEL m ON customers PREDICT city USING kmeans")
        .is_err(), "clustering must not take PREDICT");
    assert!(e
        .execute_sql("CREATE MINING MODEL m ON customers WITH 3 CLUSTERS USING tree")
        .is_err(), "classification must not take CLUSTERS");
    // Numeric label columns are rejected.
    assert!(e
        .execute_sql("CREATE MINING MODEL m ON customers PREDICT age USING bayes")
        .is_err());
}

#[test]
fn explain_never_executes() {
    let e = build_engine();
    let out = e.query("EXPLAIN SELECT * FROM customers WHERE PREDICT(tier) = 'premium'").unwrap();
    assert_eq!(out.metrics.rows_examined, 0);
    assert!(out.plan.contains("customers"));
}
