//! # mpq-core
//!
//! The primary contribution of *"Efficient Evaluation of Queries with
//! Mining Predicates"* (Chaudhuri, Narasayya, Sarawagi; ICDE 2002):
//! deriving **upper envelopes** — propositional predicates over data
//! columns — from the internal structure of mining models, so that
//! queries with mining predicates can use ordinary access-path selection.
//!
//! For every class `c` a model `M` can predict, the upper envelope
//! `M_c(x)` satisfies `predict(M, x) = c ⇒ M_c(x)`: adding it to a query
//! with the mining predicate `M.class = c` is a semantics-preserving
//! rewrite that exposes indexable predicates.
//!
//! ## What lives here
//!
//! * [`Region`]/[`DimSet`] — hyper-rectangle algebra over the discretized
//!   attribute grid (intersect, subtract, merge, enumerate);
//! * [`ScoreModel`] — the unified additive interval-score view of naive
//!   Bayes, k-means and diagonal GMMs (§3.3's reduction);
//! * [`derive_topdown`] — Algorithm 1: bound / shrink / split / merge,
//!   with [`BoundMode::Basic`] (Lemma 3.1) and
//!   [`BoundMode::PairwiseRatio`] (generalized Lemma 3.2) bounds;
//! * [`derive_enumerate`] — the exponential enumeration baseline and
//!   correctness oracle;
//! * [`tree_envelope`] / [`ruleset_envelope`] — exact extraction for
//!   decision trees, disjunction-of-bodies for rule sets (§3.1);
//! * [`cover_cells`] — greedy rectangle covering for boundary-based
//!   clusters;
//! * [`EnvelopeProvider`] — the uniform per-model entry point the query
//!   engine's rewriter consumes;
//! * [`envelope_to_sql`] — rendering envelopes as SQL `WHERE` fragments.
//!
//! ## Quick example
//!
//! ```
//! use mpq_core::{DeriveOptions, EnvelopeProvider, envelope_to_sql, paper_table1_model};
//! use mpq_types::ClassId;
//!
//! let nb = paper_table1_model();
//! let env = nb.envelope(ClassId(0), &DeriveOptions::default());
//! // c1's region is exactly d0 ∈ {m0,m1} ∧ d1 ∈ {m1,m2}:
//! assert!(env.exact);
//! let sql = envelope_to_sql(mpq_models::Classifier::schema(&nb), &env);
//! assert_eq!(sql, "d0 IN ('m0', 'm1') AND d1 IN ('m1', 'm2')");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster_envelope;
mod covering;
mod enumerate;
mod envelope;
mod error;
mod nb_example;
mod proxy;
mod region;
mod score_model;
mod sql;
mod topdown;
mod tree_envelope;

pub use cluster_envelope::EnvelopeProvider;
pub use covering::cover_cells;
pub use enumerate::{derive_enumerate, DEFAULT_CELL_LIMIT};
pub use envelope::{DeriveOptions, DeriveStats, Envelope, SplitHeuristic, TraceStep};
pub use error::CoreError;
pub use nb_example::{paper_table1_model, paper_table1_winners};
pub use proxy::{ProxyDecision, ProxyScore};
pub use region::{range_region, DimSet, Region};
pub use score_model::{BoundMode, DimTable, QuadDim, QuadTerm, RegionStatus, ScoreModel};
pub use sql::{envelope_to_sql, region_to_sql};
pub use topdown::{derive_topdown, format_region, merge_regions, try_derive_topdown};
pub use tree_envelope::{ruleset_envelope, tree_envelope};
