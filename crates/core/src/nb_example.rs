//! The paper's worked example: Table 1's naive Bayes classifier and the
//! Figure 2 derivation trace, exposed as a reusable constructor so tests,
//! examples and the `exp_table1_nb_example` experiment binary all speak
//! about the same model.

use mpq_models::NaiveBayes;
use mpq_types::{AttrDomain, Attribute, Schema};

/// Builds the exact classifier of the paper's Table 1: K = 3 classes
/// (`c1`, `c2`, `c3`), two categorical dimensions `d0` (4 members) and
/// `d1` (3 members), priors (.33, .5, .17).
///
/// One transcription note: Table 1 as printed shows `Pr(m21|c2) = .1`,
/// but the paper's own internal cells (`Pr(x|c2)·Pr(c2) = .002` at
/// `(m20, m21)`) and every bound in Figure 2 require `.01`; we use the
/// value that makes the paper self-consistent.
pub fn paper_table1_model() -> NaiveBayes {
    let schema = Schema::new(vec![
        Attribute::new("d0", AttrDomain::categorical(["m0", "m1", "m2", "m3"])),
        Attribute::new("d1", AttrDomain::categorical(["m0", "m1", "m2"])),
    ])
    .expect("static schema is valid");
    let d0 = vec![
        vec![0.4, 0.1, 0.05],
        vec![0.4, 0.1, 0.05],
        vec![0.05, 0.4, 0.4],
        vec![0.05, 0.4, 0.4],
    ];
    let d1 = vec![
        vec![0.01, 0.7, 0.05],
        vec![0.5, 0.29, 0.05],
        vec![0.49, 0.01, 0.9],
    ];
    NaiveBayes::from_probabilities(
        schema,
        vec!["c1".into(), "c2".into(), "c3".into()],
        &[0.33, 0.5, 0.17],
        &[d0, d1],
    )
    .expect("static parameters are valid")
}

/// The winning class per cell of Table 1, row-major in `(d0, d1)` order,
/// as printed in the paper (0-based class ids: 0 = c1, 1 = c2, 2 = c3).
pub fn paper_table1_winners() -> [[u16; 3]; 4] {
    // d1:   m0  m1  m2      d0:
    [
        [1, 0, 0], // m0
        [1, 0, 0], // m1
        [1, 1, 2], // m2
        [1, 1, 2], // m3
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_models::Classifier as _;
    use mpq_types::ClassId;

    #[test]
    fn winners_table_matches_model() {
        let nb = paper_table1_model();
        let winners = paper_table1_winners();
        for (m0, row) in winners.iter().enumerate() {
            for (m1, &want) in row.iter().enumerate() {
                assert_eq!(
                    nb.predict(&[m0 as u16, m1 as u16]),
                    ClassId(want),
                    "cell (m{m0}0, m{m1}1)"
                );
            }
        }
    }
}
