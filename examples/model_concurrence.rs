//! §4.1's join predicate between two predicted columns:
//! `PREDICT(M1) = PREDICT(M2)` — find rows where two independently
//! trained models concur ("visitors predicted to be web developers by
//! both the SAS and the SPSS customer model"). Shows the general case,
//! the identical-models tautology, and the disjoint-labels contradiction.
//!
//! ```sh
//! cargo run --example model_concurrence
//! ```

use mining_predicates::prelude::*;
use mpq_datagen::{generate_test, generate_train, table2};
use std::sync::Arc;

fn main() {
    let spec = table2().into_iter().find(|s| s.name == "Vehicle").expect("catalog has Vehicle");
    let train = generate_train(&spec, 7);
    let test = generate_test(&spec, 7, 0.02);

    // Two models of different families trained on the same concept.
    let tree = DecisionTree::train(&train, mpq_models::TreeParams::default()).expect("nonempty");
    let nb = NaiveBayes::train(&train).expect("nonempty");
    println!(
        "tree accuracy {:.1}%, naive Bayes accuracy {:.1}%",
        100.0 * accuracy(&tree, &train),
        100.0 * accuracy(&nb, &train)
    );

    let mut catalog = Catalog::new();
    catalog.add_table(Table::from_dataset("vehicles", &test)).expect("fresh");
    catalog.add_model("tree_model", Arc::new(tree), DeriveOptions::default()).expect("fresh");
    catalog.add_model("nb_model", Arc::new(nb), DeriveOptions::default()).expect("fresh");
    let engine = Engine::new(catalog);

    // 1. General concurrence: envelope = OR over common labels of
    //    (tree envelope AND nb envelope).
    let sql = "SELECT COUNT(*) FROM vehicles WHERE PREDICT(tree_model) = PREDICT(nb_model)";
    let out = engine.query(sql).expect("valid");
    println!("\nconcurrence query: {sql}");
    println!(
        "models concur on {} of {} rows ({:.1}%)",
        out.metrics.output_rows,
        test.len(),
        100.0 * out.metrics.output_rows as f64 / test.len() as f64
    );

    // Narrow to one label: both models say class k0 — the per-class
    // envelopes conjoin and the optimizer can index the intersection.
    let sql = "SELECT * FROM vehicles \
               WHERE PREDICT(tree_model) = 'k3' AND PREDICT(nb_model) = 'k3'";
    let out = engine.query(sql).expect("valid");
    println!("\nboth predict 'k3': {} rows\n{}", out.metrics.output_rows, out.plan);

    // 2. Identical models: the §4.1 tautology. No model invocations at
    //    all — the rewriter replaces the predicate with TRUE.
    let sql = "SELECT COUNT(*) FROM vehicles WHERE PREDICT(nb_model) = PREDICT(nb_model)";
    let out = engine.query(sql).expect("valid");
    println!(
        "identical models: {} rows with {} model invocations (tautology folded)",
        out.metrics.output_rows, out.metrics.model_invocations
    );
    assert_eq!(out.metrics.model_invocations, 0);
    assert_eq!(out.metrics.output_rows as usize, test.len());

    // 3. Contradiction: a model with disjoint class labels can never
    //    concur — constant scan, zero data access.
    let relabeled = {
        let train2 = LabeledDataset::new(
            train.data.clone(),
            train.labels.clone(),
            (0..spec.n_classes).map(|k| format!("other_{k}")).collect(),
        )
        .expect("aligned");
        NaiveBayes::train(&train2).expect("nonempty")
    };
    engine
        .register_model("foreign_model", Arc::new(relabeled), DeriveOptions::default())
        .expect("fresh name");
    let sql = "SELECT * FROM vehicles WHERE PREDICT(nb_model) = PREDICT(foreign_model)";
    let out = engine.query(sql).expect("valid");
    println!("\ndisjoint labels: {} rows\n{}", out.metrics.output_rows, out.plan);
    assert_eq!(out.metrics.output_rows, 0);
    assert_eq!(out.metrics.total_pages(), 0, "constant scan touches no data");
    println!("contradiction answered with zero page reads.");
}
