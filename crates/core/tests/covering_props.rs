//! Property tests for the greedy rectangle covering: every cover must be
//! exact — regions contain only input cells, and every input cell is
//! covered.

use mpq_core::cover_cells;
use mpq_types::{AttrDomain, Attribute, Schema};
use proptest::prelude::*;
use std::collections::HashSet;

fn schema() -> Schema {
    Schema::new(vec![
        Attribute::new("x", AttrDomain::binned(vec![1.0, 2.0, 3.0]).unwrap()), // 4 members
        Attribute::new("y", AttrDomain::binned(vec![1.0, 2.0]).unwrap()),      // 3 members
        Attribute::new("c", AttrDomain::categorical(["a", "b", "c"])),         // 3 members
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn covers_are_exact(mask in proptest::collection::vec(any::<bool>(), 36)) {
        let s = schema();
        let mut cells = Vec::new();
        let mut i = 0;
        for x in 0..4u16 {
            for y in 0..3u16 {
                for c in 0..3u16 {
                    if mask[i] {
                        cells.push(vec![x, y, c]);
                    }
                    i += 1;
                }
            }
        }
        let regions = cover_cells(&s, &cells);
        let set: HashSet<&[u16]> = cells.iter().map(|c| c.as_slice()).collect();
        // Exactness: regions contain only input cells.
        for r in &regions {
            for cell in r.cells() {
                prop_assert!(set.contains(cell.as_slice()), "foreign cell {:?}", cell);
            }
        }
        // Completeness: every input cell is covered.
        for c in &cells {
            prop_assert!(regions.iter().any(|r| r.contains(c)), "uncovered {:?}", c);
        }
        // Never more regions than cells.
        prop_assert!(regions.len() <= cells.len().max(1));
    }

    #[test]
    fn covering_is_deterministic(mask in proptest::collection::vec(any::<bool>(), 36)) {
        let s = schema();
        let mut cells = Vec::new();
        let mut i = 0;
        for x in 0..4u16 {
            for y in 0..3u16 {
                for c in 0..3u16 {
                    if mask[i] {
                        cells.push(vec![x, y, c]);
                    }
                    i += 1;
                }
            }
        }
        let a = cover_cells(&s, &cells);
        let b = cover_cells(&s, &cells);
        prop_assert_eq!(a, b);
    }
}
