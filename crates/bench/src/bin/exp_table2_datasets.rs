//! Reproduces **Table 2**: the evaluation datasets, with the synthetic
//! stand-ins' actual generated characteristics next to the paper's.

use mpq_bench::Scale;
use mpq_datagen::{generate_test, generate_train, table2};

fn main() {
    let scale = Scale::from_args(0.01);
    println!("== Table 2: data sets (scale = {} of the paper's test sizes) ==\n", scale.0);
    println!(
        "{:<14} {:>12} {:>10} {:>8} {:>9}   {:>12} {:>11}",
        "Data Set", "Test (paper)", "Training", "Classes", "Clusters", "Test (built)", "Attrs"
    );
    for spec in table2() {
        let train = generate_train(&spec, 7);
        let test = generate_test(&spec, 7, scale.0);
        println!(
            "{:<14} {:>11.2}M {:>10} {:>8} {:>9}   {:>12} {:>11}",
            spec.name,
            spec.test_rows_millions,
            train.len(),
            spec.n_classes,
            spec.n_clusters,
            test.len(),
            spec.attrs.len(),
        );
        assert_eq!(train.len(), spec.train_size);
    }
    println!(
        "\nTest tables are built the paper's way: repeated doubling of the pool\n\
         until the (scaled) target row count is exceeded, preserving all\n\
         per-column distributions and selectivities."
    );
}
