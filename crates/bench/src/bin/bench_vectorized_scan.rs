//! Vectorized-scan benchmark: selection queries over a 1M-row table
//! executed by the scalar row-at-a-time reference interpreter and the
//! vectorized column-at-a-time executor, writing
//! `BENCH_vectorized_scan.json`.
//!
//! Unlike `bench_parallel_scan`, no simulated I/O stall is charged:
//! vectorization is a CPU optimization, so the honest comparison is raw
//! in-memory wall time at parallelism 1. The buckets sweep selectivity
//! (a ~0.8% point lookup, a 12.5% and a 50% IN-set on an interleaved
//! 128-member column), a DNF envelope shape (OR of ANDs mixing both
//! columns), a clustered predicate where zone maps prove most pages
//! empty, and a mining predicate whose scorer calls the per-tuple memo
//! collapses.
//!
//! Usage: `bench_vectorized_scan [out.json] [n_rows]` (defaults:
//! `BENCH_vectorized_scan.json`, 1,000,000 — CI smoke passes a small
//! row count).

use mpq_engine::{
    execute_opts, Catalog, Engine, ExecOptions, Expr, MiningPred, QueryGuard, StatementOutcome,
    Table,
};
use mpq_engine::{Atom, AtomPred};
use mpq_types::{AttrDomain, AttrId, Attribute, ClassId, Dataset, MemberSet, Schema};
use std::time::Instant;

const RUNS: usize = 5;
const BAND_CARD: u16 = 128;

fn band_set(members: impl IntoIterator<Item = u16>) -> AtomPred {
    AtomPred::In(MemberSet::of(BAND_CARD, members))
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_vectorized_scan.json".into());
    let n_rows: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("n_rows must be a number"))
        .unwrap_or(1_000_000);

    eprintln!("building {n_rows}-row table ...");
    let region_labels: Vec<String> = (0..8).map(|r| format!("r{r}")).collect();
    let schema = Schema::new(vec![
        Attribute::new(
            "region",
            AttrDomain::categorical(region_labels.iter().map(String::as_str)),
        ),
        Attribute::new(
            "band",
            AttrDomain::binned((1..BAND_CARD as usize).map(|b| b as f64).collect()).unwrap(),
        ),
        Attribute::new("label", AttrDomain::categorical(["neg", "pos"])),
    ])
    .expect("schema");
    let mut ds = Dataset::new(schema);
    for i in 0..n_rows {
        // `region` is clustered (contiguous eighths of the heap) so zone
        // maps have something to prove; `band` is interleaved so
        // per-band selections touch every page and measure pure
        // predicate-evaluation speed; `label` follows a deterministic
        // concept the tree model learns exactly.
        let region = (i * 8 / n_rows) as u16;
        let band = ((i * 37 + i / 11) % BAND_CARD as usize) as u16;
        let label = u16::from(band < 32 && region != 3);
        ds.push_encoded(&[region, band, label]).expect("row");
    }
    let mut cat = Catalog::new();
    cat.add_table(Table::from_dataset("events", &ds)).expect("table");
    let engine = Engine::new(cat);
    let out = engine
        .execute_sql("CREATE MINING MODEL m ON events PREDICT label USING decision_tree")
        .expect("train model");
    assert!(matches!(out, StatementOutcome::ModelCreated { .. }));

    let buckets: Vec<(&str, Expr)> = vec![
        (
            "band_point",
            Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(7) }),
        ),
        (
            "band_in_16",
            Expr::Atom(Atom { attr: AttrId(1), pred: band_set(0..16) }),
        ),
        (
            "band_in_64",
            Expr::Atom(Atom { attr: AttrId(1), pred: band_set(0..64) }),
        ),
        (
            "dnf_envelope",
            Expr::Or(vec![
                Expr::And(vec![
                    Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(2) }),
                    Expr::Atom(Atom { attr: AttrId(1), pred: band_set(0..16) }),
                ]),
                Expr::And(vec![
                    Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(5) }),
                    Expr::Atom(Atom { attr: AttrId(1), pred: band_set(64..80) }),
                ]),
            ]),
        ),
        (
            "zone_clustered",
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(3) }),
        ),
        (
            "mining_memo",
            Expr::Mining(MiningPred::ClassEq { model: 0, class: ClassId(1) }),
        ),
    ];

    let catalog = engine.catalog();
    let scalar_opts = ExecOptions { vectorized: false, ..ExecOptions::default() };
    let vector_opts = ExecOptions::default();
    let mut results = Vec::new();
    for (name, expr) in buckets {
        let plan = engine.plan_predicate(0, expr);

        let median = |opts: &ExecOptions| {
            let mut times_ms = Vec::with_capacity(RUNS);
            let mut last = None;
            for _ in 0..RUNS {
                let t0 = Instant::now();
                let res = execute_opts(&plan, &catalog, QueryGuard::unlimited(), opts)
                    .expect("unlimited scan");
                times_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                last = Some(res);
            }
            times_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            (times_ms[times_ms.len() / 2], last.expect("ran"))
        };
        let (scalar_ms, scalar) = median(&scalar_opts);
        let (vector_ms, vector) = median(&vector_opts);

        // The benchmark doubles as an oracle: both strategies must
        // agree on rows and deterministic metrics.
        assert_eq!(scalar.rows, vector.rows, "{name}: row sets diverged");
        assert_eq!(
            scalar.metrics.pages_skipped, vector.metrics.pages_skipped,
            "{name}: zone accounting diverged"
        );
        assert_eq!(
            scalar.metrics.model_invocations, vector.metrics.model_invocations,
            "{name}: scorer accounting diverged"
        );

        let m = &vector.metrics;
        let selectivity = vector.rows.len() as f64 / n_rows as f64;
        let speedup = scalar_ms / vector_ms;
        eprintln!(
            "{name}: sel {:.4} scalar {scalar_ms:.1} ms, vectorized {vector_ms:.1} ms \
             ({speedup:.2}x), heap {} pages, {} skipped, {} scorer calls ({} memo hits)",
            selectivity, m.heap_pages_read, m.pages_skipped, m.model_invocations, m.memo_hits
        );
        results.push(format!(
            "    {{\"bucket\": \"{name}\", \"selectivity\": {selectivity:.4}, \
             \"scalar_ms\": {scalar_ms:.3}, \"vectorized_ms\": {vector_ms:.3}, \
             \"speedup\": {speedup:.3}, \"heap_pages_read\": {}, \"pages_skipped\": {}, \
             \"model_invocations\": {}, \"memo_hits\": {}}}",
            m.heap_pages_read, m.pages_skipped, m.model_invocations, m.memo_hits
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"vectorized_scan\",\n  \"table_rows\": {n_rows},\n  \
         \"heap_pages\": {},\n  \"parallelism\": 1,\n  \"runs_per_bucket\": {RUNS},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        catalog.table(0).table.n_pages(),
        results.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("wrote {out_path}");
}
