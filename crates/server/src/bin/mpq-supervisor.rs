//! `mpq-supervisor`: failure detection and supervised failover for a
//! primary/standby pair.
//!
//! ```text
//! mpq-supervisor --primary HOST:PORT --standby HOST:PORT
//!                --peer-file FILE [--primary-file FILE]
//!                [--check-interval-ms N] [--fail-threshold N]
//! ```
//!
//! The supervisor probes the primary once per interval (a protocol-v4
//! `ReplState` round trip). After `--fail-threshold` consecutive
//! failures it promotes the standby (epoch bump + fence, see DESIGN.md
//! §12), publishes the new primary's address to `--primary-file`
//! (write-then-rename, so watchers and writers never read a torn
//! line), and clears `--peer-file` — the promoted node ships to the
//! next standby that registers there.
//!
//! The in-process variant of this loop is
//! `mpq_server::supervisor::start_supervisor`; this binary is the
//! same loop for deployments where the supervisor outlives the server
//! processes it watches.

use mpq_server::supervisor::{start_supervisor, write_peer_file, SupervisorConfig};
use std::process::ExitCode;
use std::sync::{Arc, RwLock};
use std::time::Duration;

struct Args {
    primary: String,
    standby: String,
    peer_file: String,
    primary_file: Option<String>,
    check_interval_ms: u64,
    fail_threshold: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut primary = None;
    let mut standby = None;
    let mut peer_file = None;
    let mut primary_file = None;
    let mut check_interval_ms = 50u64;
    let mut fail_threshold = 3u32;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--primary" => primary = Some(value("--primary")?),
            "--standby" => standby = Some(value("--standby")?),
            "--peer-file" => peer_file = Some(value("--peer-file")?),
            "--primary-file" => primary_file = Some(value("--primary-file")?),
            "--check-interval-ms" => {
                check_interval_ms =
                    value("--check-interval-ms")?.parse().map_err(|e| format!("{e}"))?
            }
            "--fail-threshold" => {
                fail_threshold =
                    value("--fail-threshold")?.parse().map_err(|e| format!("{e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        primary: primary.ok_or("--primary is required")?,
        standby: standby.ok_or("--standby is required")?,
        peer_file: peer_file.ok_or("--peer-file is required")?,
        primary_file,
        check_interval_ms,
        fail_threshold,
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let primary = Arc::new(RwLock::new(args.primary.clone()));
    let standby = Arc::new(RwLock::new(args.standby.clone()));
    // Point the primary's shipper at the standby before supervision
    // starts, so replication is flowing by the time a failover could
    // be needed.
    write_peer_file(args.peer_file.as_ref(), &args.standby)
        .map_err(|e| format!("{}: {e}", args.peer_file))?;
    let cfg = SupervisorConfig {
        check_interval: Duration::from_millis(args.check_interval_ms),
        fail_threshold: args.fail_threshold.max(1),
        peer_file: args.peer_file.clone().into(),
        ..SupervisorConfig::default()
    };
    println!(
        "mpq-supervisor: watching primary {} (standby {}, threshold {})",
        args.primary, args.standby, args.fail_threshold
    );
    let handle = start_supervisor(Arc::clone(&primary), Arc::clone(&standby), cfg);
    // Surface promotions as they happen; the handle's thread does the
    // actual work.
    let mut seen = 0u64;
    loop {
        std::thread::sleep(Duration::from_millis(args.check_interval_ms));
        let n = handle.promotions();
        if n > seen {
            seen = n;
            let new_primary = primary.read().unwrap_or_else(|p| p.into_inner()).clone();
            eprintln!("mpq-supervisor: FAILOVER #{seen}: promoted {new_primary}");
            if let Some(path) = &args.primary_file {
                write_peer_file(path.as_ref(), &new_primary)
                    .map_err(|e| format!("{path}: {e}"))?;
            }
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mpq-supervisor: error: {e}");
            ExitCode::FAILURE
        }
    }
}
