//! Proxy-score cascades for additive-score models.
//!
//! Naive Bayes, k-means and diagonal GMMs all assign a row to the class
//! maximizing a score of the form `prior_k + Σ_d f_k(d, x_d)` — a sum of
//! per-dimension contributions over the *discretized* row. Because every
//! dimension is a finite member domain, each contribution can be
//! tabulated once per `(dimension, member, class)` at model-registration
//! time. Evaluating the table reproduces the real scorer **bit-for-bit**
//! (the tables hold the exact `f64` terms the scorer computes, summed in
//! the same dimension order), so the proxy's argmax is *provably* the
//! scorer's prediction whenever the argmax is unique. Only score ties
//! (and NaN poisoning) are undecidable without the scorer's tie-break —
//! those rows form the *uncertainty band* and fall through to the real
//! scorer. That is the cascade: accept/reject decided by the proxy,
//! band rows by the model.

use mpq_models::{embed_member, Classifier, Gmm, KMeans, NaiveBayes};
use mpq_types::{ClassId, Row};

/// Outcome of evaluating a [`ProxyScore`] on one row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyDecision {
    /// The proxy's argmax is unique: this *is* the model's prediction.
    Unique(ClassId),
    /// Tied (or NaN-poisoned) scores: the row is inside the uncertainty
    /// band and must be resolved by the real scorer.
    Band,
}

/// A tabulated argmax surrogate for one additive-score model: per-class
/// priors plus per-`(dimension, member, class)` score contributions.
#[derive(Debug, Clone, PartialEq)]
pub struct ProxyScore {
    /// Per-class constant term (`log Pr(k)`, `log τ_k`, or `0`).
    prior: Vec<f64>,
    /// Whether the scorer adds the prior before the dimension terms
    /// (naive Bayes) or after them (clusterers). Matching the scorer's
    /// accumulation order keeps the sums bit-identical.
    prior_first: bool,
    /// `contrib[d][m][k]`: dimension `d`, member `m`, class `k`.
    contrib: Vec<Vec<Vec<f64>>>,
}

impl ProxyScore {
    /// Tabulates the naive-Bayes log-posterior: `log_prior` first, then
    /// `log_cond[d][m][k]` in dimension order — exactly `log_score`.
    pub fn from_naive_bayes(nb: &NaiveBayes) -> Self {
        let schema = Classifier::schema(nb).clone();
        let k_n = nb.n_classes();
        let prior = (0..k_n).map(|k| nb.log_prior(ClassId(k as u16))).collect();
        let contrib = (0..schema.len())
            .map(|d| {
                (0..schema.attrs()[d].domain.cardinality())
                    .map(|m| {
                        (0..k_n).map(|k| nb.log_cond(d, m, ClassId(k as u16))).collect()
                    })
                    .collect()
            })
            .collect();
        ProxyScore { prior, prior_first: true, contrib }
    }

    /// Tabulates the k-means negated weighted distance through the same
    /// member embedding and per-dimension terms `predict` uses.
    pub fn from_kmeans(km: &KMeans) -> Self {
        let schema = Classifier::schema(km).clone();
        let k_n = km.n_classes();
        let contrib = (0..schema.len())
            .map(|d| {
                (0..schema.attrs()[d].domain.cardinality())
                    .map(|m| {
                        let x = embed_member(&schema, d, m);
                        (0..k_n).map(|k| km.dim_score(ClassId(k as u16), d, x)).collect()
                    })
                    .collect()
            })
            .collect();
        ProxyScore { prior: vec![0.0; k_n], prior_first: false, contrib }
    }

    /// Tabulates the GMM log-likelihood terms; `log τ_k` is added after
    /// the dimension sum, exactly as `score_raw` does.
    pub fn from_gmm(g: &Gmm) -> Self {
        let schema = Classifier::schema(g).clone();
        let k_n = g.n_classes();
        let prior = (0..k_n).map(|k| g.log_tau(ClassId(k as u16))).collect();
        let contrib = (0..schema.len())
            .map(|d| {
                (0..schema.attrs()[d].domain.cardinality())
                    .map(|m| {
                        let x = embed_member(&schema, d, m);
                        (0..k_n).map(|k| g.dim_score(ClassId(k as u16), d, x)).collect()
                    })
                    .collect()
            })
            .collect();
        ProxyScore { prior, prior_first: false, contrib }
    }

    /// Number of classes the proxy scores.
    pub fn n_classes(&self) -> usize {
        self.prior.len()
    }

    /// Number of dimensions the proxy expects in a row.
    pub fn n_dims(&self) -> usize {
        self.contrib.len()
    }

    /// Member cardinality of dimension `d`.
    pub fn dim_cardinality(&self, d: usize) -> usize {
        self.contrib[d].len()
    }

    /// The per-class score of `row`, accumulated in the scorer's order.
    fn score(&self, row: &Row, k: usize) -> f64 {
        let mut s = if self.prior_first { self.prior[k] } else { 0.0 };
        for (d, &m) in row.iter().enumerate() {
            s += self.contrib[d][m as usize][k];
        }
        if !self.prior_first {
            s += self.prior[k];
        }
        s
    }

    /// Evaluates the cascade on one encoded row: a unique argmax is the
    /// model's prediction; ties and NaNs go to the band. Sound by
    /// construction — the proxy never *guesses* on an ambiguous score.
    pub fn decide(&self, row: &Row) -> ProxyDecision {
        debug_assert_eq!(row.len(), self.contrib.len());
        let mut best = 0usize;
        let mut best_s = self.score(row, 0);
        if best_s.is_nan() {
            return ProxyDecision::Band;
        }
        let mut ties = 1u32;
        for k in 1..self.prior.len() {
            let s = self.score(row, k);
            if s.is_nan() {
                return ProxyDecision::Band;
            }
            if s > best_s {
                best = k;
                best_s = s;
                ties = 1;
            } else if s == best_s {
                ties += 1;
            }
        }
        if ties == 1 {
            ProxyDecision::Unique(ClassId(best as u16))
        } else {
            ProxyDecision::Band
        }
    }

    /// Lifts the table into a schema with one extra dimension inserted
    /// at `at`, whose contribution is literal `0.0` for every member
    /// and class — the shape projected-model wrappers need: the ignored
    /// (label) column never affects the score. `s + 0.0` preserves the
    /// score's *value* at every accumulation step, and [`decide`]
    /// compares values, never bit patterns, so decisions on lifted rows
    /// equal the inner model's decisions on projected rows.
    ///
    /// [`decide`]: ProxyScore::decide
    pub fn with_zero_dim(&self, at: usize, cardinality: usize) -> ProxyScore {
        let mut contrib = self.contrib.clone();
        contrib.insert(at, vec![vec![0.0; self.n_classes()]; cardinality]);
        ProxyScore { prior: self.prior.clone(), prior_first: self.prior_first, contrib }
    }

    /// Fault-injection hook: deterministically corrupt one table entry
    /// so the stored proxy no longer matches a fresh rebuild. Used to
    /// prove the engine's cascade verification detects drift and falls
    /// back to the sound scorer path.
    pub fn perturb_for_fault(&mut self) {
        for per_dim in &mut self.contrib {
            for per_member in per_dim {
                if let Some(v) = per_member.first_mut() {
                    *v = if *v == 0.25 { 0.5 } else { 0.25 };
                    return;
                }
            }
        }
        if let Some(v) = self.prior.first_mut() {
            *v = if *v == 0.25 { 0.5 } else { 0.25 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_types::{AttrDomain, Attribute, Schema};

    fn grid_schema(bins: usize) -> Schema {
        let cuts: Vec<f64> = (1..bins).map(|i| i as f64).collect();
        Schema::new(vec![
            Attribute::new("x", AttrDomain::binned(cuts.clone()).unwrap()),
            Attribute::new("y", AttrDomain::binned(cuts).unwrap()),
        ])
        .unwrap()
    }

    #[test]
    fn naive_bayes_proxy_matches_predict_on_every_cell() {
        let nb = crate::paper_table1_model();
        let proxy = ProxyScore::from_naive_bayes(&nb);
        for m0 in 0..4u16 {
            for m1 in 0..3u16 {
                let row = [m0, m1];
                match proxy.decide(&row) {
                    ProxyDecision::Unique(c) => {
                        assert_eq!(c, nb.predict(&row), "cell {row:?}")
                    }
                    ProxyDecision::Band => {} // ties defer; always sound
                }
            }
        }
    }

    #[test]
    fn kmeans_proxy_matches_predict_on_every_cell() {
        let schema = grid_schema(6);
        let km = KMeans::from_parts(
            schema.clone(),
            vec![vec![1.0, 1.0], vec![5.0, 1.0], vec![3.0, 5.0]],
            vec![vec![1.0, 1.0]; 3],
        )
        .unwrap();
        let proxy = ProxyScore::from_kmeans(&km);
        let mut decided = 0;
        for m0 in 0..6u16 {
            for m1 in 0..6u16 {
                let row = [m0, m1];
                if let ProxyDecision::Unique(c) = proxy.decide(&row) {
                    assert_eq!(c, km.predict(&row), "cell {row:?}");
                    decided += 1;
                }
            }
        }
        assert!(decided > 30, "well-separated centroids must mostly decide");
    }

    #[test]
    fn gmm_proxy_matches_predict_on_every_cell() {
        let schema = grid_schema(5);
        let g = Gmm::from_parts(
            schema.clone(),
            vec![0.5, 0.5],
            vec![vec![1.0, 1.0], vec![4.0, 4.0]],
            vec![vec![0.8, 0.8], vec![1.2, 1.2]],
        )
        .unwrap();
        let proxy = ProxyScore::from_gmm(&g);
        for m0 in 0..5u16 {
            for m1 in 0..5u16 {
                let row = [m0, m1];
                if let ProxyDecision::Unique(c) = proxy.decide(&row) {
                    assert_eq!(c, g.predict(&row), "cell {row:?}");
                }
            }
        }
    }

    #[test]
    fn exact_score_ties_go_to_the_band() {
        // Two identical centroids tie on every cell: the proxy must
        // refuse to decide (the model's tie-break is its own business).
        let schema = grid_schema(4);
        let km = KMeans::from_parts(
            schema,
            vec![vec![2.0, 2.0], vec![2.0, 2.0]],
            vec![vec![1.0, 1.0]; 2],
        )
        .unwrap();
        let proxy = ProxyScore::from_kmeans(&km);
        for m0 in 0..4u16 {
            for m1 in 0..4u16 {
                assert_eq!(proxy.decide(&[m0, m1]), ProxyDecision::Band);
            }
        }
    }

    #[test]
    fn perturbation_is_detectable_by_equality() {
        let nb = crate::paper_table1_model();
        let fresh = ProxyScore::from_naive_bayes(&nb);
        let mut stored = fresh.clone();
        assert_eq!(stored, fresh);
        stored.perturb_for_fault();
        assert_ne!(stored, fresh, "perturbation must be visible to verification");
    }
}
