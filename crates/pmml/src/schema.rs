//! DataDictionary ⇄ [`Schema`] conversion.

use crate::xml::XmlNode;
use crate::PmmlError;
use mpq_types::{AttrDomain, Attribute, Schema};

/// Serializes a schema as a PMML `DataDictionary`. Categorical domains
/// list their `<Value>`s; binned continuous domains carry their cut
/// points in an `<Extension name="cuts">` (PMML proper would model the
/// discretization as a transformation; the extension keeps the document
/// self-contained).
pub fn schema_to_xml(schema: &Schema) -> XmlNode {
    let mut dict = XmlNode::new("DataDictionary").attr("numberOfFields", schema.len());
    for (_, attr) in schema.iter() {
        let field = match &attr.domain {
            AttrDomain::Categorical { members } => {
                let mut f = XmlNode::new("DataField")
                    .attr("name", &attr.name)
                    .attr("optype", "categorical")
                    .attr("dataType", "string");
                for m in members {
                    f = f.child(XmlNode::new("Value").attr("value", m));
                }
                f
            }
            AttrDomain::Binned { cuts } => {
                let list =
                    cuts.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",");
                XmlNode::new("DataField")
                    .attr("name", &attr.name)
                    .attr("optype", "continuous")
                    .attr("dataType", "double")
                    .child(XmlNode::new("Extension").attr("name", "cuts").attr("value", list))
            }
        };
        dict = dict.child(field);
    }
    dict
}

/// Parses a `DataDictionary` back into a schema.
pub fn schema_from_xml(dict: &XmlNode) -> Result<Schema, PmmlError> {
    if dict.name != "DataDictionary" {
        return Err(PmmlError::Structure {
            detail: format!("expected <DataDictionary>, got <{}>", dict.name),
        });
    }
    let mut attrs = Vec::new();
    for field in dict.find_all("DataField") {
        let name = field.req_attr("name")?;
        match field.req_attr("optype")? {
            "categorical" => {
                let members: Vec<String> = field
                    .find_all("Value")
                    .map(|v| v.req_attr("value").map(str::to_owned))
                    .collect::<Result<_, _>>()?;
                if members.is_empty() {
                    return Err(PmmlError::Structure {
                        detail: format!("categorical field {name:?} has no <Value>s"),
                    });
                }
                attrs.push(Attribute::new(name, AttrDomain::categorical(members)));
            }
            "continuous" => {
                let ext = field
                    .find_all("Extension")
                    .find(|e| e.get_attr("name") == Some("cuts"))
                    .ok_or_else(|| PmmlError::Structure {
                        detail: format!("continuous field {name:?} missing cuts extension"),
                    })?;
                let value = ext.req_attr("value")?;
                let cuts: Vec<f64> = if value.is_empty() {
                    Vec::new()
                } else {
                    value
                        .split(',')
                        .map(|s| {
                            s.trim().parse::<f64>().map_err(|_| PmmlError::Value {
                                detail: format!("bad cut {s:?} in field {name:?}"),
                            })
                        })
                        .collect::<Result<_, _>>()?
                };
                attrs.push(Attribute::new(name, AttrDomain::binned(cuts)?));
            }
            other => {
                return Err(PmmlError::Structure {
                    detail: format!("unsupported optype {other:?} on field {name:?}"),
                })
            }
        }
    }
    Ok(Schema::new(attrs)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Schema {
        Schema::new(vec![
            Attribute::new("color", AttrDomain::categorical(["red", "green"])),
            Attribute::new("age", AttrDomain::binned(vec![30.5, 63.0]).unwrap()),
            Attribute::new("free", AttrDomain::binned(vec![]).unwrap()),
        ])
        .unwrap()
    }

    #[test]
    fn schema_roundtrips() {
        let s = demo();
        let xml = schema_to_xml(&s);
        let back = schema_from_xml(&xml).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn roundtrip_through_text() {
        let s = demo();
        let text = schema_to_xml(&s).to_string_pretty();
        let node = crate::xml::parse(&text).unwrap();
        assert_eq!(schema_from_xml(&node).unwrap(), s);
    }

    #[test]
    fn rejects_wrong_shapes() {
        assert!(schema_from_xml(&XmlNode::new("Nope")).is_err());
        let bad = XmlNode::new("DataDictionary").child(
            XmlNode::new("DataField").attr("name", "x").attr("optype", "ordinal"),
        );
        assert!(schema_from_xml(&bad).is_err());
        let no_values = XmlNode::new("DataDictionary").child(
            XmlNode::new("DataField").attr("name", "x").attr("optype", "categorical"),
        );
        assert!(schema_from_xml(&no_values).is_err());
    }
}
