//! Checksummed, atomically-installed catalog snapshots.
//!
//! A snapshot file (`snap-<lsn>.snap`) is the whole durable catalog at
//! one log position: magic, then a single CRC-framed record holding the
//! LSN it covers, every table (schema, page geometry, cells, index
//! column sets), and every durable model (its [`StoredModel`] plus
//! derivation options). Installation is crash-atomic: write to a `.tmp`
//! sibling, fsync, rename over the final name, fsync the directory —
//! a reader either sees the complete new file or none at all.

use super::{get_derive_opts, put_derive_opts, StoredModel};
use crate::catalog::Catalog;
use crate::dedup::StatementDedup;
use crate::EngineError;
use mpq_core::DeriveOptions;
use mpq_types::wire::{crc32, get_schema, put_schema, WireReader, WireWriter};
use mpq_types::{Member, Schema};
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot file.
pub(crate) const SNAPSHOT_MAGIC: &[u8; 8] = b"MPQSNAP1";

/// File name for the snapshot covering the log up to `lsn`.
pub(crate) fn snapshot_file_name(lsn: u64) -> String {
    format!("snap-{lsn:020}.snap")
}

/// Parses a snapshot file name back to its covered LSN.
pub(crate) fn parse_snapshot_file_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    if rest.len() != 20 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// One table as serialized in a snapshot.
#[derive(Debug)]
pub(crate) struct TableState {
    pub name: String,
    pub schema: Schema,
    pub rows_per_page: u64,
    /// Column-major cells.
    pub columns: Vec<Vec<Member>>,
    /// Column-id sets of the table's secondary indexes.
    pub indexes: Vec<Vec<u16>>,
}

/// One durable model as serialized in a snapshot.
#[derive(Debug)]
pub(crate) struct ModelState {
    pub name: String,
    pub stored: StoredModel,
    pub opts: DeriveOptions,
}

/// A decoded snapshot: the durable catalog at `last_lsn`.
#[derive(Debug)]
pub(crate) struct SnapshotState {
    /// Every record with LSN <= this is covered by the snapshot.
    pub last_lsn: u64,
    pub tables: Vec<TableState>,
    pub models: Vec<ModelState>,
    /// Statement-outcome dedup state as of `last_lsn` (empty when the
    /// snapshot predates the exactly-once format extension).
    pub dedup: StatementDedup,
    /// Replication epoch as of `last_lsn` (0 when the snapshot predates
    /// the replication format extension).
    pub epoch: u64,
    /// Standing subscriptions as of `last_lsn` — (id, verbatim query
    /// text) pairs, re-parsed against the rebuilt catalog (empty when
    /// the snapshot predates the pub/sub format extension).
    pub subscriptions: Vec<(u64, String)>,
    /// Next subscription id to assign (0 in pre-pub/sub snapshots; the
    /// catalog clamps upward so ids are never reused).
    pub next_sub_id: u64,
}

/// Serializes the durable parts of a catalog into snapshot file bytes.
/// Transient models (no [`StoredModel`]) are skipped by design.
pub(crate) fn serialize_catalog(catalog: &Catalog, last_lsn: u64) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u64(last_lsn);
    w.put_u32(catalog.n_tables() as u32);
    for t in 0..catalog.n_tables() {
        let entry = catalog.table(t);
        let table = &entry.table;
        w.put_str(table.name());
        put_schema(&mut w, table.schema());
        w.put_u64(table.rows_per_page() as u64);
        w.put_u32(table.schema().len() as u32);
        for d in 0..table.schema().len() {
            w.put_u16s(table.column(d));
        }
        w.put_u32(entry.indexes.len() as u32);
        for ix in &entry.indexes {
            let cols: Vec<u16> = ix.columns().iter().map(|a| a.0).collect();
            w.put_u16s(&cols);
        }
    }
    let durable: Vec<(usize, &crate::persist::StoredModel)> = (0..catalog.n_models())
        .filter_map(|m| catalog.model(m).stored.as_ref().map(|s| (m, s)))
        .collect();
    w.put_u32(durable.len() as u32);
    for (m, stored) in durable {
        w.put_str(&catalog.model(m).name);
        stored.encode(&mut w);
        put_derive_opts(&mut w, &catalog.model(m).derive_opts);
    }
    catalog.dedup().encode(&mut w);
    w.put_u64(catalog.epoch());
    w.put_u32(catalog.n_subscriptions() as u32);
    for sub in catalog.subscriptions() {
        w.put_u64(sub.id);
        w.put_str(&sub.sql);
    }
    w.put_u64(catalog.next_subscription_id());
    let payload = w.into_bytes();
    let mut bytes = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 8 + payload.len());
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes
}

/// Decodes snapshot file bytes, verifying magic, length, and CRC.
pub(crate) fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotState, EngineError> {
    let header = if bytes.get(..8).is_some_and(|m| m == SNAPSHOT_MAGIC) {
        crate::persist::wal::le_u32(bytes, 8).zip(crate::persist::wal::le_u32(bytes, 12))
    } else {
        None
    };
    let Some((len, crc)) = header else {
        return Err(EngineError::Corrupt { detail: "bad snapshot header".to_string() });
    };
    let len = len as usize;
    let payload = bytes
        .get(16..16 + len)
        .ok_or_else(|| EngineError::Corrupt { detail: "truncated snapshot".to_string() })?;
    if bytes.len() != 16 + len {
        return Err(EngineError::Corrupt {
            detail: "trailing bytes after snapshot record".to_string(),
        });
    }
    if crc32(payload) != crc {
        return Err(EngineError::Corrupt { detail: "snapshot crc mismatch".to_string() });
    }
    let mut r = WireReader::new(payload);
    let last_lsn = r.get_u64()?;
    let n_tables = r.get_u32()? as usize;
    if n_tables > r.remaining() {
        return Err(EngineError::Corrupt { detail: "table count exceeds snapshot".into() });
    }
    let mut tables = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let name = r.get_str()?;
        let schema = get_schema(&mut r)?;
        let rows_per_page = r.get_u64()?;
        let n_cols = r.get_u32()? as usize;
        if n_cols > r.remaining() {
            return Err(EngineError::Corrupt { detail: "column count exceeds snapshot".into() });
        }
        let columns: Vec<Vec<Member>> =
            (0..n_cols).map(|_| Ok(r.get_u16s()?)).collect::<Result<_, EngineError>>()?;
        let n_ix = r.get_u32()? as usize;
        if n_ix > r.remaining() {
            return Err(EngineError::Corrupt { detail: "index count exceeds snapshot".into() });
        }
        let indexes: Vec<Vec<u16>> =
            (0..n_ix).map(|_| Ok(r.get_u16s()?)).collect::<Result<_, EngineError>>()?;
        tables.push(TableState { name, schema, rows_per_page, columns, indexes });
    }
    let n_models = r.get_u32()? as usize;
    if n_models > r.remaining() {
        return Err(EngineError::Corrupt { detail: "model count exceeds snapshot".into() });
    }
    let mut models = Vec::with_capacity(n_models);
    for _ in 0..n_models {
        let name = r.get_str()?;
        let stored = StoredModel::decode(&mut r)?;
        let opts = get_derive_opts(&mut r)?;
        models.push(ModelState { name, stored, opts });
    }
    // The dedup section was appended to the format later; a payload
    // ending right after the models decodes as an empty store.
    let dedup =
        if r.is_exhausted() { StatementDedup::default() } else { StatementDedup::decode(&mut r)? };
    // The epoch tail was appended later still; absent means epoch 0.
    let epoch = if r.is_exhausted() { 0 } else { r.get_u64()? };
    // The subscriptions tail is the newest extension; absent means no
    // standing subscriptions.
    let (subscriptions, next_sub_id) = if r.is_exhausted() {
        (Vec::new(), 0)
    } else {
        let n = r.get_u32()? as usize;
        if n > r.remaining() {
            return Err(EngineError::Corrupt {
                detail: "subscription count exceeds snapshot".into(),
            });
        }
        let subs: Vec<(u64, String)> = (0..n)
            .map(|_| Ok((r.get_u64()?, r.get_str()?)))
            .collect::<Result<_, EngineError>>()?;
        (subs, r.get_u64()?)
    };
    if !r.is_exhausted() {
        return Err(EngineError::Corrupt {
            detail: "trailing bytes inside snapshot payload".to_string(),
        });
    }
    Ok(SnapshotState { last_lsn, tables, models, dedup, epoch, subscriptions, next_sub_id })
}

/// Writes a snapshot of `catalog` covering the log through `last_lsn`,
/// installing it atomically (`.tmp` + fsync + rename + directory fsync).
pub(crate) fn write_snapshot(
    dir: &Path,
    catalog: &Catalog,
    last_lsn: u64,
) -> Result<PathBuf, EngineError> {
    let bytes = serialize_catalog(catalog, last_lsn);
    let final_path = dir.join(snapshot_file_name(last_lsn));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(last_lsn)));
    let mut f = File::create(&tmp_path)?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp_path, &final_path)?;
    File::open(dir)?.sync_all()?;
    Ok(final_path)
}

/// Reads and decodes one snapshot file. I/O failures and content
/// corruption both surface as `Err` — the caller falls back to an older
/// generation either way.
pub(crate) fn load_snapshot(path: &Path) -> Result<SnapshotState, EngineError> {
    decode_snapshot(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use mpq_types::{AttrDomain, Attribute, Dataset};

    fn demo_catalog() -> Catalog {
        let schema = Schema::new(vec![
            Attribute::new("a", AttrDomain::categorical(["x", "y"])),
            Attribute::new("b", AttrDomain::binned(vec![1.0, 2.0]).unwrap()),
        ])
        .unwrap();
        let ds = Dataset::from_rows(
            schema,
            (0..10).map(|i| vec![(i % 2) as u16, (i % 3) as u16]),
        )
        .unwrap();
        let mut cat = Catalog::new();
        let t = cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        cat.create_index(t, &[mpq_types::AttrId(0)]);
        cat
    }

    #[test]
    fn file_name_roundtrip() {
        assert_eq!(parse_snapshot_file_name(&snapshot_file_name(7)), Some(7));
        assert_eq!(parse_snapshot_file_name("snap-7.snap"), None);
        assert_eq!(parse_snapshot_file_name("wal-00000000000000000007.wal"), None);
    }

    #[test]
    fn serialize_decode_roundtrip() {
        let cat = demo_catalog();
        let bytes = serialize_catalog(&cat, 42);
        let state = decode_snapshot(&bytes).unwrap();
        assert_eq!(state.last_lsn, 42);
        assert_eq!(state.tables.len(), 1);
        assert_eq!(state.tables[0].name, "t");
        assert_eq!(state.tables[0].columns.len(), 2);
        assert_eq!(state.tables[0].columns[0].len(), 10);
        assert_eq!(state.tables[0].indexes, vec![vec![0u16]]);
        assert!(state.models.is_empty());
    }

    #[test]
    fn subscriptions_ride_the_snapshot() {
        let mut cat = demo_catalog();
        let sql = "SELECT * FROM t WHERE a = 'x'";
        let q = crate::sql::parse(sql, &cat).unwrap();
        cat.add_subscription(3, sql.to_string(), q).unwrap();
        // A removed subscription still pins the next-id floor.
        let q = crate::sql::parse(sql, &cat).unwrap();
        cat.add_subscription(7, sql.to_string(), q).unwrap();
        cat.remove_subscription(7).unwrap();
        let bytes = serialize_catalog(&cat, 9);
        let state = decode_snapshot(&bytes).unwrap();
        assert_eq!(state.subscriptions, vec![(3, sql.to_string())]);
        assert_eq!(state.next_sub_id, 8);
        for cut in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn every_truncation_is_corrupt_not_panic() {
        let bytes = serialize_catalog(&demo_catalog(), 1);
        for cut in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn flipped_byte_fails_crc() {
        let mut bytes = serialize_catalog(&demo_catalog(), 1);
        let mid = 16 + (bytes.len() - 16) / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(decode_snapshot(&bytes), Err(EngineError::Corrupt { .. })));
    }

    #[test]
    fn atomic_install_leaves_no_tmp() {
        let dir = std::env::temp_dir()
            .join(format!("mpq-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cat = demo_catalog();
        let path = write_snapshot(&dir, &cat, 5).unwrap();
        assert!(path.ends_with(snapshot_file_name(5)));
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.iter().all(|n| !n.ends_with(".tmp")));
        let state = load_snapshot(&path).unwrap();
        assert_eq!(state.last_lsn, 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
