//! Small bitsets over attribute members.

use crate::Member;

/// A set of members of one attribute's domain, stored as a bitset.
///
/// Domains in this system are small (discretized bins, categorical member
/// lists), so a `Vec<u64>` of blocks sized to the domain is compact and
/// every set operation is branch-free word arithmetic. The set remembers
/// its domain size so complement is well-defined.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemberSet {
    blocks: Vec<u64>,
    domain: u16,
}

impl MemberSet {
    /// The empty set over a domain of `domain` members.
    pub fn empty(domain: u16) -> Self {
        MemberSet { blocks: vec![0; (domain as usize).div_ceil(64)], domain }
    }

    /// The full set over a domain of `domain` members.
    pub fn full(domain: u16) -> Self {
        let mut s = Self::empty(domain);
        for b in &mut s.blocks {
            *b = u64::MAX;
        }
        s.trim();
        s
    }

    /// A set holding exactly the given members.
    pub fn of(domain: u16, members: impl IntoIterator<Item = Member>) -> Self {
        let mut s = Self::empty(domain);
        for m in members {
            s.insert(m);
        }
        s
    }

    /// A set holding the contiguous range `lo..=hi`.
    pub fn range(domain: u16, lo: Member, hi: Member) -> Self {
        debug_assert!(lo <= hi && hi < domain);
        Self::of(domain, lo..=hi)
    }

    fn trim(&mut self) {
        let extra = (self.blocks.len() * 64) as u32 - self.domain as u32;
        if extra > 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// Domain size this set ranges over.
    pub fn domain(&self) -> u16 {
        self.domain
    }

    /// Inserts member `m`.
    pub fn insert(&mut self, m: Member) {
        debug_assert!(m < self.domain, "member {m} out of domain {}", self.domain);
        self.blocks[m as usize / 64] |= 1u64 << (m % 64);
    }

    /// Removes member `m`.
    pub fn remove(&mut self, m: Member) {
        debug_assert!(m < self.domain);
        self.blocks[m as usize / 64] &= !(1u64 << (m % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, m: Member) -> bool {
        m < self.domain && self.blocks[m as usize / 64] & (1u64 << (m % 64)) != 0
    }

    /// Number of members in the set.
    pub fn len(&self) -> u32 {
        self.blocks.iter().map(|b| b.count_ones()).sum()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// True if the set holds every member of the domain.
    pub fn is_full(&self) -> bool {
        self.len() == self.domain as u32
    }

    /// Smallest member, if any.
    pub fn min(&self) -> Option<Member> {
        self.iter().next()
    }

    /// Largest member, if any.
    pub fn max(&self) -> Option<Member> {
        for (i, b) in self.blocks.iter().enumerate().rev() {
            if *b != 0 {
                return Some((i * 64 + 63 - b.leading_zeros() as usize) as Member);
            }
        }
        None
    }

    /// Iterates members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Member> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &b)| {
            let mut bits = b;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let t = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some((i * 64) as Member + t as Member)
                }
            })
        })
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &MemberSet) {
        debug_assert_eq!(self.domain, other.domain);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &MemberSet) {
        debug_assert_eq!(self.domain, other.domain);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn subtract(&mut self, other: &MemberSet) {
        debug_assert_eq!(self.domain, other.domain);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// The complement within the domain.
    pub fn complement(&self) -> MemberSet {
        let mut out = self.clone();
        for b in &mut out.blocks {
            *b = !*b;
        }
        out.trim();
        out
    }

    /// True if `self` and `other` share no members.
    pub fn is_disjoint(&self, other: &MemberSet) -> bool {
        self.blocks.iter().zip(&other.blocks).all(|(a, b)| a & b == 0)
    }

    /// True if every member of `self` is in `other`.
    pub fn is_subset(&self, other: &MemberSet) -> bool {
        self.blocks.iter().zip(&other.blocks).all(|(a, b)| a & !b == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let s = MemberSet::of(10, [0, 3, 9]);
        assert!(s.contains(0) && s.contains(3) && s.contains(9));
        assert!(!s.contains(1) && !s.contains(10));
        assert_eq!(s.len(), 3);
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), Some(9));
    }

    #[test]
    fn full_and_empty() {
        let f = MemberSet::full(70); // spans two blocks
        assert_eq!(f.len(), 70);
        assert!(f.is_full() && !f.is_empty());
        assert!(f.contains(69) && !f.contains(70));
        let e = MemberSet::empty(70);
        assert!(e.is_empty());
        assert_eq!(e.min(), None);
        assert_eq!(e.max(), None);
    }

    #[test]
    fn range_constructor() {
        let r = MemberSet::range(8, 2, 5);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn set_algebra() {
        let a = MemberSet::of(6, [0, 1, 2]);
        let b = MemberSet::of(6, [2, 3]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2]);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![0, 1]);
        assert!(!a.is_disjoint(&b));
        assert!(i.is_subset(&a) && i.is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn complement_respects_domain() {
        let a = MemberSet::of(66, [0, 65]);
        let c = a.complement();
        assert_eq!(c.len(), 64);
        assert!(!c.contains(0) && !c.contains(65) && c.contains(64));
        // Complement twice is identity.
        assert_eq!(c.complement(), a);
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s = MemberSet::of(130, [129, 5, 64, 63]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 63, 64, 129]);
    }

    #[test]
    fn remove_and_reinsert() {
        let mut s = MemberSet::full(5);
        s.remove(2);
        assert_eq!(s.len(), 4);
        assert!(!s.is_full());
        s.insert(2);
        assert!(s.is_full());
    }
}
